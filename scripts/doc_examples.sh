#!/usr/bin/env bash
# Executes the examples in docs/PATTERN_LANGUAGE.md so the language
# reference can never drift from the implementation.
#
#   ```text  blocks — every nonempty line is fed through rtpcheck:
#            lines containing '->' are collected into an FD list and
#            parsed/compiled by `fds minimize`; all other lines go
#            through `pattern parse`.
#   ```rust  blocks — concatenated (each in its own fn) into one program
#            compiled against the workspace rlibs and run.
#
# Any example that fails to parse, compile, or run fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/PATTERN_LANGUAGE.md
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

cargo build -q -p regtree-cli -p regtree-core -p regtree-pattern
RTPCHECK=target/debug/rtpcheck

# ---- ```text blocks: pattern and FD lines through the CLI ------------
awk '/^```text$/{f=1;next} /^```/{f=0} f' "$DOC" >"$TMP/text_lines"

n=0
fds=0
patterns=0
: >"$TMP/fds.lst"
while IFS= read -r line; do
  [ -z "$line" ] && continue
  n=$((n + 1))
  if [[ "$line" == *"->"* ]]; then
    fds=$((fds + 1))
    printf 'doc%d = %s\n' "$n" "$line" >>"$TMP/fds.lst"
  else
    patterns=$((patterns + 1))
    "$RTPCHECK" pattern parse "$line" >/dev/null ||
      { echo "doc_examples: pattern line failed: $line" >&2; exit 1; }
  fi
done <"$TMP/text_lines"

if [ -s "$TMP/fds.lst" ]; then
  "$RTPCHECK" fds minimize --fds "$TMP/fds.lst" >/dev/null ||
    { echo "doc_examples: FD lines failed to parse/compile" >&2; exit 1; }
fi

# ---- ```rust blocks: compile and run against the workspace rlibs -----
awk '
  /^```rust$/ { f = 1; n += 1; printf "fn block_%d() {\n", n; next }
  /^```/      { if (f) print "}"; f = 0; next }
  f           { print }
  END {
    print "fn main() {"
    for (i = 1; i <= n; i++) printf "    block_%d();\n", i
    print "}"
  }
' "$DOC" >"$TMP/doc_blocks.rs"

rust_blocks=$(grep -c '^fn block_' "$TMP/doc_blocks.rs" || true)
if [ "$rust_blocks" -gt 0 ]; then
  externs=()
  for crate in regtree_alphabet regtree_automata regtree_xml regtree_hedge \
    regtree_pattern regtree_runtime regtree_core; do
    rlib=$(ls -t target/debug/deps/lib${crate}-*.rlib 2>/dev/null | head -1)
    [ -n "$rlib" ] && externs+=(--extern "${crate}=${rlib}")
  done
  rustc --edition 2021 -L target/debug/deps "${externs[@]}" \
    "$TMP/doc_blocks.rs" -o "$TMP/doc_blocks"
  "$TMP/doc_blocks"
fi

echo "doc_examples: ok ($patterns patterns, $fds FDs, $rust_blocks rust blocks)"
