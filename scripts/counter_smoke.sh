#!/usr/bin/env bash
# Work-counter regression smoke: re-runs the deterministic E9 sweep counters
# (`ic_state_counts --counters`) and compares them against the committed
# BENCH_ic.json. Counters are exact work counts (states interned, frontier
# pushes, guard intersections, …), not wall times, so they are stable across
# machines — an *increase* beyond the tolerance means the engine started
# doing more work per instance and fails the check. Decreases (improvements)
# and new counter keys only print.
#
# Usage: scripts/counter_smoke.sh [tolerance-percent] (default 10)
set -euo pipefail

cd "$(dirname "$0")/.."
tol="${1:-10}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

cargo run --release -p regtree-bench --example ic_state_counts -- --counters >"$raw"

python3 - "$raw" BENCH_ic.json "$tol" <<'EOF'
import json, re, sys

raw, committed, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(committed, encoding="utf-8") as fh:
    baseline = {k: v for k, v in json.load(fh).items() if k.startswith("counters/")}

current = {}
line_re = re.compile(r"^(counters/\S+) (\d+)$")
with open(raw, encoding="utf-8") as fh:
    for line in fh:
        m = line_re.match(line.strip())
        if m:
            current[m.group(1)] = int(m.group(2))

if not current:
    sys.exit("counter_smoke.sh: no counter lines parsed")

regressions, improved, new = [], 0, 0
for key, now in sorted(current.items()):
    was = baseline.get(key)
    if was is None:
        new += 1
        continue
    # Absolute slack of 2 keeps tiny counters from tripping on ±1 noise
    # in future reruns; counters today are fully deterministic.
    allowed = was + max(was * tol / 100.0, 2)
    if now > allowed:
        regressions.append((key, was, now))
    elif now < was:
        improved += 1

for key, was, now in regressions:
    print(f"REGRESSION {key}: {was} -> {now} (> {tol}% tolerance)")
print(
    f"counter_smoke: {len(current)} counters checked, {improved} improved, "
    f"{new} new, {len(regressions)} regressions (tolerance {tol}%)"
)
sys.exit(1 if regressions else 0)
EOF
