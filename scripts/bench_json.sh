#!/usr/bin/env bash
# Runs the independence-criterion benches (E9 ic_scaling, E10
# ic_vs_revalidation incl. the independence_matrix group) and emits
# BENCH_ic.json mapping each benchmark id to its median nanoseconds.
# Commit the refreshed BENCH_ic.json alongside perf-relevant changes so the
# trajectory stays in-tree.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_ic.json}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

cargo bench -p regtree-bench --bench ic_scaling | tee "$raw"
cargo bench -p regtree-bench --bench ic_vs_revalidation | tee -a "$raw"

python3 - "$raw" "$out" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
unit_ns = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}
line_re = re.compile(
    r"^(\S+)\s+time:\s+\[\s*"
    r"[\d.]+ (?:ns|µs|us|ms|s) "
    r"([\d.]+) (ns|µs|us|ms|s) "
    r"[\d.]+ (?:ns|µs|us|ms|s)\s*\]"
)

medians = {}
with open(raw, encoding="utf-8") as fh:
    for line in fh:
        m = line_re.match(line.strip())
        if m:
            name, median, unit = m.group(1), float(m.group(2)), m.group(3)
            medians[name] = round(median * unit_ns[unit])

if not medians:
    sys.exit("bench_json.sh: no benchmark lines parsed")

with open(out, "w", encoding="utf-8") as fh:
    json.dump(medians, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {out} ({len(medians)} benchmarks)")
EOF
