#!/usr/bin/env bash
# Runs the independence-criterion benches (E9 ic_scaling, E10
# ic_vs_revalidation incl. the independence_matrix group) and emits
# BENCH_ic.json mapping each benchmark id to its median nanoseconds, plus
# flat `counters/<axis>/<point>/<metric>` work counters (states interned,
# transitions fired, DFA steps, …) and `phases/<axis>/<point>/<phase>_*`
# per-phase wall-time breakdowns (from a SummarySink-traced run) for the E9
# sweep points, so the *work done* — and where the time went — is versioned
# next to the time it took.
# Also emits BENCH_fdset.json from the fdset_matrix example: matrix wall
# time and cells-actually-checked at 50/100/200 FDs, with and without
# FD-set pruning (plus implied-row / reused-verdict counts and the
# parity-mismatch count, which must be 0).
# Commit the refreshed BENCH_ic.json alongside perf-relevant changes so the
# trajectory stays in-tree.
# Also emits BENCH_serve.json from the serve_bench example: rtpserved
# request latency over loopback TCP, cold (session/open + document/load +
# check + close per request) vs warm (one pinned session), p50/p99 ns and
# requests/sec, plus the warm-vs-cold p50 speedup — which must be >= 2,
# or the session cache is not paying for itself.
# Finally emits BENCH_core.json, a before/after view of the automata-core
# hot paths: the committed (HEAD) ic_scaling lazy medians as baseline, the
# fresh medians, the speedup ratio per axis point, and the current
# guard-intersection / frontier-push counters and per-phase nanos — the
# numbers a cache-layout change is supposed to move.
# Also emits BENCH_stream.json from the stream_recheck example (E14):
# one-pass streaming ingest vs parse-then-index, and incremental
# impact-scoped rechecking vs the serialize/reparse/recheck client loop
# over a candidate-count ladder. The incremental/reparse verdicts must
# agree on every step (parity_mismatches == 0) and the per-update speedup
# at the largest ladder point must be >= 3x, or the impact scoping has
# regressed into global rechecks.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_ic.json}"
out_fdset="${2:-BENCH_fdset.json}"
out_core="${3:-BENCH_core.json}"
out_serve="${4:-BENCH_serve.json}"
out_stream="${5:-BENCH_stream.json}"

raw=$(mktemp)
raw_fdset=$(mktemp)
raw_serve=$(mktemp)
raw_stream=$(mktemp)
baseline=$(mktemp)
trap 'rm -f "$raw" "$raw_fdset" "$raw_serve" "$raw_stream" "$baseline"' EXIT

# Snapshot the committed medians before anything overwrites BENCH_ic.json.
git show HEAD:BENCH_ic.json >"$baseline" 2>/dev/null || cp BENCH_ic.json "$baseline"

cargo bench -p regtree-bench --bench ic_scaling | tee "$raw"
cargo bench -p regtree-bench --bench ic_vs_revalidation | tee -a "$raw"
cargo run --release -p regtree-bench --example ic_state_counts -- --counters | tee -a "$raw"
cargo run --release -p regtree-bench --example ic_state_counts -- --phases | tee -a "$raw"

python3 - "$raw" "$out" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
unit_ns = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}
line_re = re.compile(
    r"^(\S+)\s+time:\s+\[\s*"
    r"[\d.]+ (?:ns|µs|us|ms|s) "
    r"([\d.]+) (ns|µs|us|ms|s) "
    r"[\d.]+ (?:ns|µs|us|ms|s)\s*\]"
)

counter_re = re.compile(r"^((?:counters|phases)/\S+) (\d+)$")

medians = {}
with open(raw, encoding="utf-8") as fh:
    for line in fh:
        line = line.strip()
        m = line_re.match(line)
        if m:
            name, median, unit = m.group(1), float(m.group(2)), m.group(3)
            medians[name] = round(median * unit_ns[unit])
            continue
        c = counter_re.match(line)
        if c:
            medians[c.group(1)] = int(c.group(2))

if not medians:
    sys.exit("bench_json.sh: no benchmark lines parsed")

with open(out, "w", encoding="utf-8") as fh:
    json.dump(medians, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {out} ({len(medians)} benchmarks)")
EOF

python3 - "$baseline" "$out" "$out_core" <<'EOF'
import json, sys

baseline_path, fresh_path, out = sys.argv[1], sys.argv[2], sys.argv[3]
with open(baseline_path, encoding="utf-8") as fh:
    baseline = json.load(fh)
with open(fresh_path, encoding="utf-8") as fh:
    fresh = json.load(fh)

core = {}
for key, now in sorted(fresh.items()):
    if key.startswith("ic_scaling/") and "_lazy/" in key:
        point = key[len("ic_scaling/"):]
        core[f"current/{point}"] = now
        was = baseline.get(key)
        if was is not None:
            core[f"baseline/{point}"] = was
            core[f"speedup/{point}"] = round(was / now, 2) if now else None
    elif key.startswith("counters/") and (
        key.endswith("/guard_intersections") or key.endswith("/frontier_pushes")
    ):
        core[key] = now
    elif key.startswith("phases/"):
        core[key] = now

if not any(k.startswith("speedup/") for k in core):
    sys.exit("bench_json.sh: no baseline lazy medians to compare against")

with open(out, "w", encoding="utf-8") as fh:
    json.dump(core, fh, indent=2, sort_keys=True)
    fh.write("\n")
ups = {k[len("speedup/"):]: v for k, v in core.items() if k.startswith("speedup/")}
print(f"wrote {out} ({len(ups)} axis points); speedups: {ups}")
EOF

cargo run --release -p regtree-bench --example fdset_matrix -- --counters | tee "$raw_fdset"

python3 - "$raw_fdset" "$out_fdset" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
counter_re = re.compile(r"^(counters/fdset/\S+) (\d+)$")

rows = {}
with open(raw, encoding="utf-8") as fh:
    for line in fh:
        c = counter_re.match(line.strip())
        if c:
            rows[c.group(1)] = int(c.group(2))

if not rows:
    sys.exit("bench_json.sh: no fdset counter lines parsed")
bad = [k for k, v in rows.items() if k.endswith("/parity_mismatches") and v]
if bad:
    sys.exit(f"bench_json.sh: pruned/unpruned parity violated: {bad}")

with open(out, "w", encoding="utf-8") as fh:
    json.dump(rows, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {out} ({len(rows)} counters)")
EOF

cargo run --release -p regtree-serve --example serve_bench | tee "$raw_serve"

python3 - "$raw_serve" "$out_serve" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
line_re = re.compile(r"^(serve/\S+) (\d+)$")

rows = {}
with open(raw, encoding="utf-8") as fh:
    for line in fh:
        m = line_re.match(line.strip())
        if m:
            rows[m.group(1)] = int(m.group(2))

required = [
    f"serve/{mode}/{metric}"
    for mode in ("cold", "warm")
    for metric in ("requests", "p50_ns", "p99_ns", "requests_per_sec")
]
missing = [k for k in required if k not in rows]
if missing:
    sys.exit(f"bench_json.sh: serve_bench output missing {missing}")

speedup = rows["serve/cold/p50_ns"] / rows["serve/warm/p50_ns"]
rows["serve/warm_vs_cold_p50_speedup_x100"] = round(speedup * 100)
if speedup < 2.0:
    sys.exit(
        f"bench_json.sh: warm p50 only {speedup:.2f}x better than cold "
        "(need >= 2x) — the session cache is not paying for itself"
    )

with open(out, "w", encoding="utf-8") as fh:
    json.dump(rows, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {out} (warm/cold p50 speedup {speedup:.2f}x)")
EOF

cargo run --release -p regtree-bench --example stream_recheck | tee "$raw_stream"

python3 - "$raw_stream" "$out_stream" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
line_re = re.compile(r"^(stream/\S+) (\d+)$")

rows = {}
with open(raw, encoding="utf-8") as fh:
    for line in fh:
        m = line_re.match(line.strip())
        if m:
            rows[m.group(1)] = int(m.group(2))

if not rows:
    sys.exit("bench_json.sh: no stream_recheck lines parsed")
bad = [k for k, v in rows.items() if k.endswith("/parity_mismatches") and v]
if bad:
    sys.exit(f"bench_json.sh: incremental/reparse verdicts diverged: {bad}")

points = sorted(
    int(k.split("/")[2][1:])
    for k in rows
    if k.startswith("stream/recheck/") and k.endswith("/speedup_x100")
)
if not points:
    sys.exit("bench_json.sh: no recheck speedup points parsed")
largest = points[-1]
speedup = rows[f"stream/recheck/c{largest}/speedup_x100"] / 100
if speedup < 3.0:
    sys.exit(
        f"bench_json.sh: incremental recheck only {speedup:.2f}x faster than "
        f"reparse at c{largest} (need >= 3x) — impact scoping has regressed"
    )

with open(out, "w", encoding="utf-8") as fh:
    json.dump(rows, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {out} (c{largest} incremental speedup {speedup:.2f}x)")
EOF
