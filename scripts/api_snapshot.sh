#!/usr/bin/env bash
# Snapshots the workspace's public API surface into API.txt.
#
#   scripts/api_snapshot.sh           # regenerate API.txt (commit the result)
#   scripts/api_snapshot.sh --check   # fail if the surface drifted from API.txt
#
# The snapshot is a sorted list of `pub` item declarations (first line of
# each signature, whitespace-normalized) per source file. It is not a full
# semantic API model — it is a cheap, deterministic tripwire: any addition,
# removal, or signature change of a public item shows up as a diff, and CI
# refuses surface changes that were not snapshotted deliberately.
set -euo pipefail

cd "$(dirname "$0")/.."
out="API.txt"
mode="${1:-write}"

snapshot() {
    python3 - <<'EOF'
import re, sys
from pathlib import Path

ROOTS = sorted(Path("crates").glob("*/src")) + [Path("src")]
# `pub` items that form the external surface. `pub(crate)`/`pub(super)` are
# internal and excluded by the negative lookahead.
ITEM = re.compile(
    r"^\s*(?:#\[.*\]\s*)?pub(?!\s*\()\s+"
    r"(?:async\s+|unsafe\s+|const\s+|extern\s+\"[^\"]*\"\s+)*"
    r"(?:fn|struct|enum|union|trait|type|const|static|mod|use|macro)\b"
)
lines = []
for root in ROOTS:
    for path in sorted(root.rglob("*.rs")):
        in_test = False
        depth = 0
        for raw in path.read_text(encoding="utf-8").splitlines():
            stripped = raw.strip()
            # Skip #[cfg(test)] modules: their `pub` items are not surface.
            if stripped.startswith("#[cfg(test)]"):
                in_test = True
                depth = 0
                continue
            if in_test:
                depth += raw.count("{") - raw.count("}")
                if "{" in raw and depth <= 0:
                    in_test = False
                continue
            if ITEM.match(raw):
                sig = " ".join(stripped.split())
                # Truncate bodies: keep up to the opening brace.
                sig = sig.split("{", 1)[0].rstrip()
                lines.append(f"{path}: {sig}")
sys.stdout.write("\n".join(sorted(lines)) + "\n")
EOF
}

case "$mode" in
write)
    snapshot >"$out"
    echo "wrote $out ($(wc -l <"$out") public items)"
    ;;
--check)
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    snapshot >"$tmp"
    if ! diff -u "$out" "$tmp"; then
        echo >&2
        echo "api_snapshot: public API surface changed without updating $out." >&2
        echo "Run scripts/api_snapshot.sh and commit the refreshed snapshot." >&2
        exit 1
    fi
    echo "api_snapshot: surface matches $out"
    ;;
*)
    echo "usage: $0 [--check]" >&2
    exit 2
    ;;
esac
