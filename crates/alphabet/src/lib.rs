//! Interned label alphabets shared by every `regtree` crate.
//!
//! The paper models XML documents as unranked ordered trees labeled over a
//! finite alphabet `Σ` partitioned into element labels `EL`, attribute labels
//! `A` and a single text label. Patterns, automata and documents all speak the
//! same alphabet, so labels are interned once into compact [`Symbol`]s and the
//! [`Alphabet`] is shared (cheaply clonable, thread-safe).
//!
//! Conventions (documented in `DESIGN.md`):
//! * the reserved root label is `"/"` ([`Alphabet::ROOT`]), interned first;
//! * the reserved text label is `"#text"` ([`Alphabet::TEXT`]);
//! * labels beginning with `'@'` are attribute labels;
//! * every other label is an element label.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// A compact handle to an interned label.
///
/// Symbols are only meaningful relative to the [`Alphabet`] that produced
/// them; mixing symbols across alphabets is a logic error (never UB).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw interner index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// The kind of node a label may sit on (the partition `Σ = EL ∪ A ∪ {text}`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LabelKind {
    /// An element label from `EL` (internal nodes; includes the root label).
    Element,
    /// An attribute label from `A` (leaf nodes carrying a value).
    Attribute,
    /// The text pseudo-label (leaf nodes carrying character data).
    Text,
}

#[derive(Default)]
struct Inner {
    names: Vec<Arc<str>>,
    kinds: Vec<LabelKind>,
    index: HashMap<Arc<str>, Symbol>,
}

impl Inner {
    fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        let name: Arc<str> = Arc::from(name);
        self.names.push(name.clone());
        self.kinds.push(classify(&name));
        self.index.insert(name, sym);
        sym
    }
}

fn classify(name: &str) -> LabelKind {
    if name == Alphabet::TEXT_NAME {
        LabelKind::Text
    } else if name.starts_with('@') {
        LabelKind::Attribute
    } else {
        LabelKind::Element
    }
}

/// A shared, thread-safe label interner.
///
/// Cloning an `Alphabet` is cheap (an `Arc` bump); all clones observe the same
/// interned labels, so documents, patterns and automata built from the same
/// alphabet agree on [`Symbol`] identity.
#[derive(Clone, Default)]
pub struct Alphabet {
    inner: Arc<RwLock<Inner>>,
}

impl Alphabet {
    /// The reserved name of the document root label.
    pub const ROOT_NAME: &'static str = "/";
    /// The reserved name of the text pseudo-label.
    pub const TEXT_NAME: &'static str = "#text";
    /// The symbol of the document root label (always interned first).
    pub const ROOT: Symbol = Symbol(0);
    /// The symbol of the text pseudo-label (always interned second).
    pub const TEXT: Symbol = Symbol(1);

    /// Creates an alphabet with the two reserved labels pre-interned.
    pub fn new() -> Self {
        let a = Alphabet {
            inner: Arc::new(RwLock::new(Inner::default())),
        };
        let root = a.intern(Self::ROOT_NAME);
        let text = a.intern(Self::TEXT_NAME);
        debug_assert_eq!(root, Self::ROOT);
        debug_assert_eq!(text, Self::TEXT);
        a
    }

    /// Creates an alphabet pre-populated with `labels` (after the reserved
    /// ones). Convenient for tests and generators.
    pub fn with_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let a = Self::new();
        for l in labels {
            a.intern(l.as_ref());
        }
        a
    }

    /// Interns `name`, returning its symbol (idempotent).
    pub fn intern(&self, name: &str) -> Symbol {
        self.inner.write().intern(name)
    }

    /// Looks up an already-interned label without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.inner.read().index.get(name).copied()
    }

    /// Resolves a symbol back to its label text.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this alphabet.
    pub fn name(&self, sym: Symbol) -> Arc<str> {
        self.inner.read().names[sym.index()].clone()
    }

    /// The node-kind partition class of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this alphabet.
    pub fn kind(&self, sym: Symbol) -> LabelKind {
        self.inner.read().kinds[sym.index()]
    }

    /// Acquires the interner read lock once for a batch of [`KindReader::kind`]
    /// lookups; hot loops probing many symbols should prefer this over
    /// repeated [`Alphabet::kind`] calls, which re-lock per symbol.
    pub fn kind_reader(&self) -> KindReader<'_> {
        KindReader {
            inner: self.inner.read(),
        }
    }

    /// Number of interned labels (including the two reserved ones).
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True when only the reserved labels are interned.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// Snapshot of all interned symbols, in interning order.
    pub fn symbols(&self) -> Vec<Symbol> {
        (0..self.len() as u32).map(Symbol).collect()
    }

    /// Snapshot of all symbols of a given kind.
    pub fn symbols_of_kind(&self, kind: LabelKind) -> Vec<Symbol> {
        let inner = self.inner.read();
        inner
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == kind)
            .map(|(i, _)| Symbol(i as u32))
            .collect()
    }

    /// Snapshot of `(name, symbol)` pairs, in interning order.
    pub fn entries(&self) -> Vec<(Arc<str>, Symbol)> {
        let inner = self.inner.read();
        inner
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Symbol(i as u32)))
            .collect()
    }

    /// True if the two handles share the same underlying interner.
    pub fn same_as(&self, other: &Alphabet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A held read lock over the interner for batched kind lookups (see
/// [`Alphabet::kind_reader`]). Interning blocks while this is alive, so keep
/// the scope tight.
pub struct KindReader<'a> {
    inner: std::sync::RwLockReadGuard<'a, Inner>,
}

impl KindReader<'_> {
    /// Same as [`Alphabet::kind`], without re-locking per call.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this alphabet.
    pub fn kind(&self, sym: Symbol) -> LabelKind {
        self.inner.kinds[sym.index()]
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Alphabet")
            .field("len", &inner.names.len())
            .field("labels", &inner.names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_labels_are_fixed() {
        let a = Alphabet::new();
        assert_eq!(a.intern("/"), Alphabet::ROOT);
        assert_eq!(a.intern("#text"), Alphabet::TEXT);
        assert_eq!(a.name(Alphabet::ROOT).as_ref(), "/");
        assert_eq!(a.name(Alphabet::TEXT).as_ref(), "#text");
        assert_eq!(a.kind(Alphabet::ROOT), LabelKind::Element);
        assert_eq!(a.kind(Alphabet::TEXT), LabelKind::Text);
    }

    #[test]
    fn intern_is_idempotent() {
        let a = Alphabet::new();
        let s1 = a.intern("session");
        let s2 = a.intern("session");
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn attribute_labels_classified_by_at_sign() {
        let a = Alphabet::new();
        let idn = a.intern("@IDN");
        let exam = a.intern("exam");
        assert_eq!(a.kind(idn), LabelKind::Attribute);
        assert_eq!(a.kind(exam), LabelKind::Element);
    }

    #[test]
    fn clones_share_interner() {
        let a = Alphabet::new();
        let b = a.clone();
        let s = b.intern("mark");
        assert_eq!(a.lookup("mark"), Some(s));
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Alphabet::new()));
    }

    #[test]
    fn lookup_does_not_intern() {
        let a = Alphabet::new();
        assert_eq!(a.lookup("ghost"), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn symbols_of_kind_partitions() {
        let a = Alphabet::with_labels(["x", "@y", "z"]);
        let el = a.symbols_of_kind(LabelKind::Element);
        let at = a.symbols_of_kind(LabelKind::Attribute);
        let tx = a.symbols_of_kind(LabelKind::Text);
        assert_eq!(el.len() + at.len() + tx.len(), a.len());
        assert_eq!(tx, vec![Alphabet::TEXT]);
        assert!(el.contains(&Alphabet::ROOT));
        assert_eq!(at.len(), 1);
    }

    #[test]
    fn entries_in_interning_order() {
        let a = Alphabet::with_labels(["one", "two"]);
        let names: Vec<_> = a.entries().iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["/", "#text", "one", "two"]);
    }

    #[test]
    fn with_labels_convenience() {
        let a = Alphabet::with_labels(["a", "b", "a"]);
        assert_eq!(a.len(), 4);
        assert!(a.lookup("a").is_some());
        assert!(!a.is_empty());
        assert!(Alphabet::new().is_empty());
    }
}
