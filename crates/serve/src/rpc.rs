//! JSON-RPC 2.0 envelopes and LSP-style `Content-Length` framing.
//!
//! A message on the wire is
//!
//! ```text
//! Content-Length: 52\r\n
//! \r\n
//! {"jsonrpc":"2.0","id":1,"method":"initialize", ...}
//! ```
//!
//! Header names are case-insensitive; unknown headers (`Content-Type`, …)
//! are ignored. The body is one JSON-RPC 2.0 request, response, or batch
//! array, always in [`Json::to_compact`] form when written by this crate.
//!
//! This module is transport-agnostic: [`read_frame`] works on any
//! [`BufRead`], [`write_frame`] on any [`Write`] — stdio and TCP reuse the
//! same code, and the framing tests drive it over in-memory buffers.

use std::io::{self, BufRead, Read, Write};

use regtree_core::api::Json;

/// Standard JSON-RPC 2.0 error code: the body was not valid JSON (or not
/// valid UTF-8).
pub const PARSE_ERROR: i64 = -32700;
/// Standard: the body was JSON but not a well-formed request envelope.
pub const INVALID_REQUEST: i64 = -32600;
/// Standard: the method does not exist.
pub const METHOD_NOT_FOUND: i64 = -32601;
/// Standard: the params are missing or have the wrong shape.
pub const INVALID_PARAMS: i64 = -32602;
/// Standard: the server failed internally.
pub const INTERNAL_ERROR: i64 = -32603;

/// A run exhausted its resource budget before the verdict was decided.
/// `error.data` carries the sound partial response.
pub const BUDGET_EXHAUSTED: i64 = -32000;
/// The request was cancelled via `$/cancelRequest`. `error.data` carries
/// whatever partial response the run produced.
pub const CANCELLED: i64 = -32001;
/// The `sessionId` does not name an open session.
pub const SESSION_NOT_FOUND: i64 = -32002;
/// A schema-requiring method was called on a session opened without a
/// schema (the RPC face of `regtree_core::Error::NoSchema`).
pub const NO_SCHEMA: i64 = -32003;
/// The server is at its in-flight request cap; retry later.
pub const OVERLOADED: i64 = -32004;
/// The named document was never loaded into this session.
pub const DOC_NOT_FOUND: i64 = -32005;
/// The frame body exceeds the server's payload cap.
pub const PAYLOAD_TOO_LARGE: i64 = -32006;
/// The client's `protocolVersion` is incompatible with the server's.
pub const PROTOCOL_MISMATCH: i64 = -32007;

/// A typed JSON-RPC error: code, human message, optional structured data
/// (partial results ride in `data`).
#[derive(Debug, Clone)]
pub struct RpcError {
    /// JSON-RPC error code (standard or one of this crate's `-320xx`).
    pub code: i64,
    /// One-line human-readable description.
    pub message: String,
    /// Structured payload — e.g. the sound partial response of an
    /// exhausted run.
    pub data: Option<Json>,
}

impl RpcError {
    /// An error with no `data`.
    pub fn new(code: i64, message: impl Into<String>) -> RpcError {
        RpcError {
            code,
            message: message.into(),
            data: None,
        }
    }

    /// An error carrying a structured `data` payload.
    pub fn with_data(code: i64, message: impl Into<String>, data: Json) -> RpcError {
        RpcError {
            code,
            message: message.into(),
            data: Some(data),
        }
    }

    /// The `{code, message, data?}` error object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("code".to_string(), Json::Num(self.code.to_string())),
            ("message".to_string(), Json::str(self.message.clone())),
        ];
        if let Some(data) = &self.data {
            members.push(("data".to_string(), data.clone()));
        }
        Json::Obj(members)
    }
}

/// A success response envelope for request `id`.
pub fn response_ok(id: &Json, result: Json) -> Json {
    Json::Obj(vec![
        ("jsonrpc".to_string(), Json::str("2.0")),
        ("id".to_string(), id.clone()),
        ("result".to_string(), result),
    ])
}

/// An error response envelope. `id` is `Json::Null` when the request id
/// could not be determined (parse errors, malformed envelopes).
pub fn response_err(id: &Json, err: &RpcError) -> Json {
    Json::Obj(vec![
        ("jsonrpc".to_string(), Json::str("2.0")),
        ("id".to_string(), id.clone()),
        ("error".to_string(), err.to_json()),
    ])
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream between messages — the peer hung up.
    Closed,
    /// The stream ended mid-headers or mid-body.
    Truncated(String),
    /// Declared `Content-Length` exceeds the configured cap. The body has
    /// already been drained, so the connection stays usable.
    TooLarge {
        /// Declared body size.
        size: usize,
        /// The server's cap.
        max: usize,
    },
    /// The bytes before the body do not form valid framing headers.
    Protocol(String),
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated(d) => write!(f, "truncated frame: {d}"),
            FrameError::TooLarge { size, max } => {
                write!(f, "payload of {size} bytes exceeds cap of {max}")
            }
            FrameError::Protocol(d) => write!(f, "framing protocol error: {d}"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Reads one framed message body (at most `max_payload` bytes).
///
/// Oversized frames are *drained* before returning [`FrameError::TooLarge`]
/// so the caller can answer with a typed error and keep the connection.
pub fn read_frame<R: BufRead>(reader: &mut R, max_payload: usize) -> Result<Vec<u8>, FrameError> {
    let mut content_length: Option<usize> = None;
    let mut first = true;
    loop {
        let mut line = String::new();
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            // Header bytes that are not UTF-8 cannot be framing headers.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(FrameError::Protocol("headers are not valid UTF-8".into()));
            }
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            return if first {
                Err(FrameError::Closed)
            } else {
                Err(FrameError::Truncated("stream ended mid-headers".into()))
            };
        }
        first = false;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break; // blank line: headers done
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(FrameError::Protocol(format!(
                "header line without ':': {line:?}"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let v = value.trim();
            let len: usize = v.parse().map_err(|_| {
                FrameError::Protocol(format!("Content-Length is not an integer: {v:?}"))
            })?;
            content_length = Some(len);
        }
        // Other headers (Content-Type, …) are ignored.
    }
    let Some(len) = content_length else {
        return Err(FrameError::Protocol("missing Content-Length header".into()));
    };
    if len > max_payload {
        // Drain the declared body so the next frame starts clean.
        io::copy(&mut reader.take(len as u64), &mut io::sink())?;
        return Err(FrameError::TooLarge {
            size: len,
            max: max_payload,
        });
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated(format!("stream ended before {len} body bytes"))
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(body)
}

/// Writes one framed message and flushes.
pub fn write_frame<W: Write>(writer: &mut W, body: &[u8]) -> io::Result<()> {
    write!(writer, "Content-Length: {}\r\n\r\n", body.len())?;
    writer.write_all(body)?;
    writer.flush()
}

/// Frames and writes a JSON message in compact form.
pub fn write_message<W: Write>(writer: &mut W, message: &Json) -> io::Result<()> {
    write_frame(writer, message.to_compact().as_bytes())
}

/// A parsed request envelope.
///
/// `id: None` marks a notification (no response may be sent — not even an
/// error). Responses echo the `id` value verbatim, whatever JSON scalar the
/// client chose.
#[derive(Debug)]
pub struct Incoming {
    /// Request id; `None` for notifications.
    pub id: Option<Json>,
    /// Method name.
    pub method: String,
    /// Params value (`Json::Null` when absent).
    pub params: Json,
}

/// Validates one JSON-RPC 2.0 envelope.
///
/// On failure returns the best-effort request id (for the error response)
/// plus the error — per spec, a malformed envelope is answered with
/// `id: null` unless an id could still be extracted.
pub fn parse_envelope(value: Json) -> Result<Incoming, (Json, RpcError)> {
    let id = value.get("id").cloned();
    let err_id = id.clone().unwrap_or(Json::Null);
    if value.as_object().is_none() {
        return Err((
            Json::Null,
            RpcError::new(INVALID_REQUEST, "request is not an object"),
        ));
    }
    match value.get("jsonrpc").and_then(Json::as_str) {
        Some("2.0") => {}
        _ => {
            return Err((
                err_id,
                RpcError::new(
                    INVALID_REQUEST,
                    "missing or wrong 'jsonrpc' (expected \"2.0\")",
                ),
            ));
        }
    }
    if let Some(id) = &id {
        // Ids must be strings, numbers or null (objects/arrays are not
        // echoable keys).
        if !matches!(id, Json::Str(_) | Json::Num(_) | Json::Null) {
            return Err((
                Json::Null,
                RpcError::new(
                    INVALID_REQUEST,
                    "request id must be a string, number or null",
                ),
            ));
        }
    }
    let Some(method) = value.get("method").and_then(Json::as_str) else {
        return Err((
            err_id,
            RpcError::new(INVALID_REQUEST, "missing 'method' string"),
        ));
    };
    let params = value.get("params").cloned().unwrap_or(Json::Null);
    Ok(Incoming {
        id,
        method: method.to_string(),
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, br#"{"x":1}"#).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r, 1024).unwrap(), br#"{"x":1}"#);
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Closed)));
    }

    #[test]
    fn header_case_and_extra_headers_ignored() {
        let raw = b"content-length: 2\r\nContent-Type: application/json\r\n\r\n{}";
        let mut r = io::BufReader::new(&raw[..]);
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"{}");
    }

    #[test]
    fn truncated_body_is_detected() {
        let raw = b"Content-Length: 10\r\n\r\n{}";
        let mut r = io::BufReader::new(&raw[..]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated(_))
        ));
    }

    #[test]
    fn oversized_frame_is_drained() {
        let mut raw = b"Content-Length: 5\r\n\r\nAAAAA".to_vec();
        write_frame(&mut raw, b"{}").unwrap();
        let mut r = io::BufReader::new(&raw[..]);
        assert!(matches!(
            read_frame(&mut r, 3),
            Err(FrameError::TooLarge { size: 5, max: 3 })
        ));
        // The follow-up frame is still readable.
        assert_eq!(read_frame(&mut r, 3).unwrap(), b"{}");
    }

    #[test]
    fn missing_content_length_is_protocol_error() {
        let raw = b"Content-Type: application/json\r\n\r\n{}";
        let mut r = io::BufReader::new(&raw[..]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Protocol(_))
        ));
    }

    #[test]
    fn envelope_rules() {
        let ok = Json::parse(r#"{"jsonrpc":"2.0","id":7,"method":"x"}"#).unwrap();
        let inc = parse_envelope(ok).unwrap();
        assert_eq!(inc.method, "x");
        assert_eq!(inc.id.unwrap().as_u64(), Some(7));

        let notif = Json::parse(r#"{"jsonrpc":"2.0","method":"y"}"#).unwrap();
        assert!(parse_envelope(notif).unwrap().id.is_none());

        let bad = Json::parse(r#"{"id":1,"method":"x"}"#).unwrap();
        let (id, err) = parse_envelope(bad).unwrap_err();
        assert_eq!(id.as_u64(), Some(1));
        assert_eq!(err.code, INVALID_REQUEST);

        let bad_id = Json::parse(r#"{"jsonrpc":"2.0","id":[1],"method":"x"}"#).unwrap();
        let (id, err) = parse_envelope(bad_id).unwrap_err();
        assert!(id.is_null());
        assert_eq!(err.code, INVALID_REQUEST);
    }
}
