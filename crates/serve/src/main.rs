//! `rtpserved` — the long-lived analysis daemon.
//!
//! ```text
//! rtpserved [--stdio]                 serve one client over stdin/stdout
//! rtpserved --tcp ADDR               accept TCP clients (e.g. 127.0.0.1:4870)
//!           --max-inflight N          global concurrent-request cap (default 64)
//!           --max-payload BYTES       frame size cap (default 16 MiB)
//!           --deadline-ms N           server-wide budget ceiling; every
//!           --max-states N            request's effective limits are
//!           --max-memo N              clamped to these, whatever the
//!           --max-frontier N          session or request asked for
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use regtree_core::RunLimits;
use regtree_serve::{serve_stdio, ServerConfig, Service, TcpServer};

const USAGE: &str = "\
rtpserved — long-lived JSON-RPC analysis service (regular tree patterns)

USAGE:
  rtpserved [--stdio]            serve one client over stdin/stdout (default)
  rtpserved --tcp ADDR           accept TCP clients, e.g. --tcp 127.0.0.1:4870

  --max-inflight N               global concurrent-request cap (default 64)
  --max-payload BYTES            frame body size cap (default 16777216)
  --deadline-ms N  --max-states N  --max-memo N  --max-frontier N
                                 server-wide budget ceiling clamped onto
                                 every request's effective limits

Wire protocol: JSON-RPC 2.0, LSP-style Content-Length framing. Payload
shapes are the versioned `regtree_core::api` types that `rtpcheck
--format json` prints. See the crate docs for the method table.
";

struct Args {
    tcp: Option<String>,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tcp = None;
    let mut config = ServerConfig::default();
    let mut ceiling = RunLimits::UNLIMITED;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("flag {flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => {}
            "--tcp" => tcp = Some(value(&mut i, "--tcp")?),
            "--max-inflight" => {
                config.max_inflight = value(&mut i, "--max-inflight")?
                    .parse()
                    .map_err(|_| "--max-inflight expects an integer".to_string())?;
            }
            "--max-payload" => {
                config.max_payload = value(&mut i, "--max-payload")?
                    .parse()
                    .map_err(|_| "--max-payload expects an integer".to_string())?;
            }
            "--deadline-ms" => {
                ceiling = ceiling.with_deadline_ms(
                    value(&mut i, "--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms expects an integer".to_string())?,
                );
            }
            "--max-states" => {
                ceiling = ceiling.with_max_states(
                    value(&mut i, "--max-states")?
                        .parse()
                        .map_err(|_| "--max-states expects an integer".to_string())?,
                );
            }
            "--max-memo" => {
                ceiling = ceiling.with_max_memo(
                    value(&mut i, "--max-memo")?
                        .parse()
                        .map_err(|_| "--max-memo expects an integer".to_string())?,
                );
            }
            "--max-frontier" => {
                ceiling = ceiling.with_max_frontier(
                    value(&mut i, "--max-frontier")?
                        .parse()
                        .map_err(|_| "--max-frontier expects an integer".to_string())?,
                );
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    config.ceiling = ceiling;
    Ok(Args { tcp, config })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let service = Arc::new(Service::new(args.config));
    let result = match &args.tcp {
        Some(addr) => match TcpServer::bind(addr, Arc::clone(&service)) {
            Ok(server) => {
                match server.local_addr() {
                    Ok(bound) => eprintln!("rtpserved listening on {bound}"),
                    Err(_) => eprintln!("rtpserved listening on {addr}"),
                }
                server.run()
            }
            Err(e) => {
                eprintln!("error: binding {addr}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            eprintln!("rtpserved serving on stdio");
            serve_stdio(&service)
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: transport failed: {e}");
            ExitCode::FAILURE
        }
    }
}
