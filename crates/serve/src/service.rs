//! The transport-agnostic method dispatcher and its session store.
//!
//! A [`Service`] is shared by every connection of a server. Each open
//! session pins an [`Analyzer`] — with its compiled schema automaton and
//! pattern-automaton cache — plus the documents loaded into it, so a warm
//! session answers repeat analysis requests without recompiling anything.
//! Per-request [`regtree_core::RunOverrides`] carry the merged budget and
//! the connection's [`CancelToken`] into the engine while those caches stay
//! shared.
//!
//! ## Admission control
//!
//! Three layers, all of which fail *typed* — an admitted run can come back
//! `UNKNOWN`, never wrong:
//!
//! 1. a global in-flight cap ([`ServerConfig::max_inflight`]) answered with
//!    [`rpc::OVERLOADED`] before any work starts;
//! 2. per-session default [`RunLimits`] fixed at `session/open`;
//! 3. per-request limit overrides, merged field-wise over the session
//!    defaults and clamped by the server-wide ceiling
//!    ([`ServerConfig::ceiling`]).
//!
//! Budget exhaustion maps to [`rpc::BUDGET_EXHAUSTED`] and cancellation to
//! [`rpc::CANCELLED`]; both carry the sound partial response in
//! `error.data`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use regtree_alphabet::Alphabet;
use regtree_core::api::{
    parse_update_json, protocol_compatible, scope_name, DocumentChecks, FdCheckOutcome,
    FdCheckResponse, IndependenceResponse, Json, MatrixResponse, MinimizeResponse,
    PatternParseResponse, UpdateCheckEntry, UpdateResponse, PROTOCOL_VERSION,
};
use regtree_core::{
    parse_fd, Analyzer, CancelToken, Fd, FdOutcome, FdSet, IncrementalChecker, Resource, RunLimits,
    RunOverrides, TraceHandle, UpdateClass, Verdict,
};
use regtree_hedge::Schema;
use regtree_pattern::{parse_corexpath, CompiledPattern};
use regtree_xml::{parse_document, to_xml_with, SerializeOptions, VersionedDocument};

use crate::rpc::{self, RpcError};

/// Server-wide tuning knobs shared by every transport.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Largest accepted frame body in bytes (larger frames are drained and
    /// answered with [`rpc::PAYLOAD_TOO_LARGE`]).
    pub max_payload: usize,
    /// Global cap on concurrently executing requests across all
    /// connections; at the cap new requests get [`rpc::OVERLOADED`].
    pub max_inflight: usize,
    /// Server-wide budget ceiling: every effective per-request limit is
    /// clamped to this, whatever the session or request asked for.
    pub ceiling: RunLimits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_payload: 16 * 1024 * 1024,
            max_inflight: 64,
            ceiling: RunLimits::UNLIMITED,
        }
    }
}

/// One loaded document: the versioned form every method reads through,
/// plus the incremental checker `document/update` keeps warm between
/// requests.
struct DocEntry {
    vdoc: VersionedDocument,
    /// `(fds-json cache key, checker)` — the checker retains per-FD
    /// verdicts and bucket state across updates, so a warm entry rechecks
    /// only what a delta can have invalidated. A request naming a
    /// different FD set (compared on the compact `fds` JSON) rebuilds it
    /// from the current document; `document/load` on the same name drops
    /// it entirely.
    checker: Option<(String, IncrementalChecker)>,
}

/// One client analysis context: an [`Analyzer`] with its caches, the
/// documents loaded so far, and the session's default budget.
pub struct Session {
    /// Session id (unique per server lifetime).
    pub id: u64,
    alphabet: Alphabet,
    analyzer: Analyzer,
    has_schema: bool,
    limits: RunLimits,
    documents: Mutex<HashMap<String, Arc<Mutex<DocEntry>>>>,
    requests: AtomicU64,
}

/// The shared dispatcher: session store, counters, and config.
pub struct Service {
    config: ServerConfig,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    inflight: AtomicUsize,
    total_requests: AtomicU64,
}

/// RAII in-flight slot; dropping releases it. Owns an `Arc` so the guard
/// can ride into a worker thread.
pub struct InflightGuard {
    service: Arc<Service>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.service.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn invalid_params(msg: impl Into<String>) -> RpcError {
    RpcError::new(rpc::INVALID_PARAMS, msg)
}

/// `{deadlineMs?, maxStates?, maxMemo?, maxFrontier?}` → [`RunLimits`].
fn parse_limits(value: &Json) -> Result<RunLimits, RpcError> {
    if value.is_null() {
        return Ok(RunLimits::UNLIMITED);
    }
    if value.as_object().is_none() {
        return Err(invalid_params("'limits' must be an object"));
    }
    let field = |key: &str| -> Result<Option<u64>, RpcError> {
        match value.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| invalid_params(format!("limits.{key} must be an unsigned integer"))),
        }
    };
    Ok(RunLimits {
        deadline: field("deadlineMs")?.map(Duration::from_millis),
        max_states: field("maxStates")?,
        max_memo: field("maxMemo")?,
        max_frontier: field("maxFrontier")?,
    })
}

fn min_opt<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

/// Request limits override the session defaults field-wise; the ceiling
/// then clamps every field (a tighter of the two wins).
fn merge_limits(session: &RunLimits, request: &RunLimits, ceiling: &RunLimits) -> RunLimits {
    let pick = |r: Option<u64>, s: Option<u64>, c: Option<u64>| min_opt(r.or(s), c);
    RunLimits {
        deadline: min_opt(request.deadline.or(session.deadline), ceiling.deadline),
        max_states: pick(request.max_states, session.max_states, ceiling.max_states),
        max_memo: pick(request.max_memo, session.max_memo, ceiling.max_memo),
        max_frontier: pick(
            request.max_frontier,
            session.max_frontier,
            ceiling.max_frontier,
        ),
    }
}

/// `[[name, expr], ...]` → named FDs parsed in the session's alphabet.
fn parse_named_fds(alphabet: &Alphabet, value: &Json) -> Result<Vec<(String, Fd)>, RpcError> {
    let items = value
        .as_array()
        .ok_or_else(|| invalid_params("'fds' must be an array of [name, expr] pairs"))?;
    if items.is_empty() {
        return Err(invalid_params("'fds' must not be empty"));
    }
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| invalid_params("each fd must be a [name, expr] pair of strings"))?;
            let (name, expr) = match (pair[0].as_str(), pair[1].as_str()) {
                (Some(n), Some(e)) => (n, e),
                _ => {
                    return Err(invalid_params(
                        "each fd must be a [name, expr] pair of strings",
                    ))
                }
            };
            let fd = parse_fd(alphabet, expr)
                .map_err(|e| invalid_params(format!("fd '{name}': {e}")))?;
            Ok((name.to_string(), fd))
        })
        .collect()
}

/// `[[name, xpath], ...]` → named update classes.
fn parse_named_classes(
    alphabet: &Alphabet,
    value: &Json,
) -> Result<Vec<(String, UpdateClass)>, RpcError> {
    let items = value
        .as_array()
        .ok_or_else(|| invalid_params("'updates' must be an array of [name, xpath] pairs"))?;
    if items.is_empty() {
        return Err(invalid_params("'updates' must not be empty"));
    }
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                invalid_params("each update must be a [name, xpath] pair of strings")
            })?;
            let (name, expr) = match (pair[0].as_str(), pair[1].as_str()) {
                (Some(n), Some(e)) => (n, e),
                _ => {
                    return Err(invalid_params(
                        "each update must be a [name, xpath] pair of strings",
                    ))
                }
            };
            let pattern = parse_corexpath(alphabet, expr)
                .map_err(|e| invalid_params(format!("update '{name}': {e}")))?;
            let class = UpdateClass::new(pattern)
                .map_err(|e| invalid_params(format!("update '{name}': {e}")))?;
            Ok((name.to_string(), class))
        })
        .collect()
}

/// An exhausted run's typed error: cancellation beats budget attribution,
/// and the sound partial response rides in `data`.
fn exhausted_error(resource: Resource, partial: Json) -> RpcError {
    if matches!(resource, Resource::Cancelled) {
        RpcError::with_data(rpc::CANCELLED, "request cancelled", partial)
    } else {
        RpcError::with_data(
            rpc::BUDGET_EXHAUSTED,
            format!("budget exhausted: {}", resource.name()),
            partial,
        )
    }
}

impl Service {
    /// A fresh service with no sessions.
    pub fn new(config: ServerConfig) -> Service {
        Service {
            config,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            inflight: AtomicUsize::new(0),
            total_requests: AtomicU64::new(0),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Tries to claim an in-flight slot; `None` means the server is at its
    /// cap and the request must be answered with [`rpc::OVERLOADED`].
    pub fn admit(self: &Arc<Self>) -> Option<InflightGuard> {
        let mut cur = self.inflight.load(Ordering::SeqCst);
        loop {
            if cur >= self.config.max_inflight {
                return None;
            }
            match self
                .inflight
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    return Some(InflightGuard {
                        service: Arc::clone(self),
                    })
                }
                Err(now) => cur = now,
            }
        }
    }

    fn session(&self, params: &Json) -> Result<Arc<Session>, RpcError> {
        let id = params
            .get("sessionId")
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid_params("missing 'sessionId'"))?;
        self.sessions
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| RpcError::new(rpc::SESSION_NOT_FOUND, format!("no session {id}")))
    }

    /// Dispatches one request. `cancel` is this request's token; the
    /// connection cancels it on `$/cancelRequest`.
    pub fn dispatch(
        &self,
        method: &str,
        params: &Json,
        cancel: &CancelToken,
    ) -> Result<Json, RpcError> {
        self.total_requests.fetch_add(1, Ordering::Relaxed);
        match method {
            "initialize" => self.initialize(params),
            "session/open" => self.session_open(params),
            "session/close" => self.session_close(params),
            "session/stats" => self.session_stats(params),
            "server/stats" => Ok(self.server_stats()),
            "document/load" => self.document_load(params),
            "document/validate" => self.document_validate(params),
            "document/update" => self.document_update(params, cancel),
            "independence/check" => self.independence_check(params, cancel),
            "independence/matrix" => self.independence_matrix(params, cancel),
            "fd/check" => self.fd_check(params, cancel),
            "fd/minimize" => self.fd_minimize(params, cancel),
            "pattern/parse" => self.pattern_parse(params),
            other => Err(RpcError::new(
                rpc::METHOD_NOT_FOUND,
                format!("unknown method '{other}'"),
            )),
        }
    }

    fn initialize(&self, params: &Json) -> Result<Json, RpcError> {
        let client = params
            .get("protocolVersion")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'protocolVersion'"))?;
        if !protocol_compatible(client, PROTOCOL_VERSION) {
            return Err(RpcError::with_data(
                rpc::PROTOCOL_MISMATCH,
                format!("client protocol {client} is incompatible with server {PROTOCOL_VERSION}"),
                Json::Obj(vec![(
                    "serverProtocolVersion".to_string(),
                    Json::str(PROTOCOL_VERSION),
                )]),
            ));
        }
        Ok(Json::Obj(vec![
            ("protocolVersion".to_string(), Json::str(PROTOCOL_VERSION)),
            ("serverName".to_string(), Json::str("rtpserved")),
            (
                "serverVersion".to_string(),
                Json::str(env!("CARGO_PKG_VERSION")),
            ),
            (
                "capabilities".to_string(),
                Json::Obj(vec![(
                    "methods".to_string(),
                    Json::Arr(
                        [
                            "initialize",
                            "session/open",
                            "session/close",
                            "session/stats",
                            "server/stats",
                            "document/load",
                            "document/validate",
                            "document/update",
                            "independence/check",
                            "independence/matrix",
                            "fd/check",
                            "fd/minimize",
                            "pattern/parse",
                            "shutdown",
                        ]
                        .iter()
                        .map(|m| Json::str(*m))
                        .collect(),
                    ),
                )]),
            ),
        ]))
    }

    fn session_open(&self, params: &Json) -> Result<Json, RpcError> {
        let alphabet = Alphabet::new();
        let limits = merge_limits(
            &parse_limits(params.get("limits").unwrap_or(&Json::Null))?,
            &RunLimits::UNLIMITED,
            &self.config.ceiling,
        );
        let mut builder = Analyzer::builder().limits(limits);
        let mut has_schema = false;
        if let Some(text) = params.get("schema") {
            let text = text
                .as_str()
                .ok_or_else(|| invalid_params("'schema' must be the schema source text"))?;
            let schema = Schema::parse(&alphabet, text)
                .map_err(|e| invalid_params(format!("schema: {e}")))?;
            builder = builder.schema(schema);
            has_schema = true;
        }
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session {
            id,
            alphabet,
            analyzer: builder.build(),
            has_schema,
            limits,
            documents: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
        });
        self.sessions.lock().insert(id, session);
        Ok(Json::Obj(vec![
            ("sessionId".to_string(), Json::u64(id)),
            ("hasSchema".to_string(), Json::Bool(has_schema)),
        ]))
    }

    fn session_close(&self, params: &Json) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        self.sessions.lock().remove(&session.id);
        Ok(Json::Obj(vec![("closed".to_string(), Json::Bool(true))]))
    }

    fn session_stats(&self, params: &Json) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        let limits = &session.limits;
        let documents = session.documents.lock().len();
        let limit_field = |v: Option<u64>| match v {
            Some(n) => Json::u64(n),
            None => Json::Null,
        };
        Ok(Json::Obj(vec![
            ("sessionId".to_string(), Json::u64(session.id)),
            ("hasSchema".to_string(), Json::Bool(session.has_schema)),
            ("documents".to_string(), Json::usize(documents)),
            (
                "requests".to_string(),
                Json::u64(session.requests.load(Ordering::Relaxed)),
            ),
            (
                "limits".to_string(),
                Json::Obj(vec![
                    (
                        "deadlineMs".to_string(),
                        limit_field(limits.deadline.map(|d| d.as_millis() as u64)),
                    ),
                    ("maxStates".to_string(), limit_field(limits.max_states)),
                    ("maxMemo".to_string(), limit_field(limits.max_memo)),
                    ("maxFrontier".to_string(), limit_field(limits.max_frontier)),
                ]),
            ),
        ]))
    }

    fn server_stats(&self) -> Json {
        let sessions = self.sessions.lock().len();
        Json::Obj(vec![
            ("sessions".to_string(), Json::usize(sessions)),
            (
                "inflight".to_string(),
                Json::usize(self.inflight.load(Ordering::SeqCst)),
            ),
            (
                "totalRequests".to_string(),
                Json::u64(self.total_requests.load(Ordering::Relaxed)),
            ),
            (
                "maxInflight".to_string(),
                Json::usize(self.config.max_inflight),
            ),
            (
                "maxPayload".to_string(),
                Json::usize(self.config.max_payload),
            ),
        ])
    }

    fn document_load(&self, params: &Json) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        session.requests.fetch_add(1, Ordering::Relaxed);
        let name = params
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'name'"))?;
        let xml = params
            .get("xml")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'xml'"))?;
        let doc = parse_document(&session.alphabet, xml)
            .map_err(|e| invalid_params(format!("document '{name}': {e}")))?;
        let mut valid = Json::Null;
        if params.get("validate").and_then(Json::as_bool) == Some(true) {
            valid = match session.analyzer.validate(&doc) {
                Ok(()) => Json::Bool(true),
                Err(regtree_core::Error::NoSchema) => {
                    return Err(RpcError::new(
                        rpc::NO_SCHEMA,
                        "session was opened without a schema",
                    ));
                }
                Err(_) => Json::Bool(false),
            };
        }
        let nodes = doc.len();
        session.documents.lock().insert(
            name.to_string(),
            Arc::new(Mutex::new(DocEntry {
                vdoc: VersionedDocument::new(doc),
                checker: None,
            })),
        );
        Ok(Json::Obj(vec![
            ("name".to_string(), Json::str(name)),
            ("nodes".to_string(), Json::usize(nodes)),
            ("valid".to_string(), valid),
        ]))
    }

    fn document_validate(&self, params: &Json) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        session.requests.fetch_add(1, Ordering::Relaxed);
        let name = params
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'name'"))?;
        let entry = session.document(name)?;
        let entry = entry.lock();
        match session.analyzer.validate(entry.vdoc.doc()) {
            Ok(()) => Ok(Json::Obj(vec![
                ("name".to_string(), Json::str(name)),
                ("valid".to_string(), Json::Bool(true)),
                ("reason".to_string(), Json::Null),
            ])),
            Err(regtree_core::Error::NoSchema) => Err(RpcError::new(
                rpc::NO_SCHEMA,
                "session was opened without a schema",
            )),
            Err(e) => Ok(Json::Obj(vec![
                ("name".to_string(), Json::str(name)),
                ("valid".to_string(), Json::Bool(false)),
                ("reason".to_string(), Json::str(e.to_string())),
            ])),
        }
    }

    /// Applies one update to a loaded document and rechecks the named FDs
    /// at the smallest sound scope. The first call on a document (or a
    /// call naming a different FD set) pays a full check to seed the
    /// incremental state; subsequent calls with the same `fds` reuse it
    /// and typically touch only the contexts the delta reached. Each
    /// request's effective merged limits and its cancel token are
    /// (re)applied to the checker before the recheck, so a warm checker
    /// honors per-request governance and `$/cancelRequest` aborts a slow
    /// recheck mid-flight.
    fn document_update(&self, params: &Json, cancel: &CancelToken) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        session.requests.fetch_add(1, Ordering::Relaxed);
        let name = params
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'name'"))?;
        let fds_json = params.get("fds").unwrap_or(&Json::Null);
        let named = parse_named_fds(&session.alphabet, fds_json)?;
        let update_json = params
            .get("update")
            .ok_or_else(|| invalid_params("missing 'update'"))?;
        let update = parse_update_json(&session.alphabet, update_json)
            .map_err(|e| invalid_params(format!("update: {e}")))?;
        let request = parse_limits(params.get("limits").unwrap_or(&Json::Null))?;
        let merged = merge_limits(&session.limits, &request, &self.config.ceiling);
        let entry = session.document(name)?;
        let mut entry = entry.lock();
        let key = fds_json.to_compact();
        if !matches!(&entry.checker, Some((k, _)) if *k == key) {
            let fds: Vec<Fd> = named.iter().map(|(_, f)| f.clone()).collect();
            let checker = IncrementalChecker::with_governance(
                fds,
                &entry.vdoc,
                merged,
                TraceHandle::default(),
                Some(cancel.clone()),
            );
            entry.checker = Some((key, checker));
        }
        let DocEntry { vdoc, checker } = &mut *entry;
        let (_, checker) = checker.as_mut().expect("checker was built above");
        // A warm checker was governed by the request that seeded it; this
        // request's merged limits and cancel token replace that for the
        // round about to run.
        checker.set_limits(merged);
        checker.set_cancel(Some(cancel.clone()));
        let report = checker
            .apply_and_recheck(vdoc, &update)
            .map_err(|e| invalid_params(format!("update: {e}")))?;
        let mut worst: Option<Resource> = None;
        let checks = named
            .iter()
            .zip(report.scopes.iter().zip(&report.outcomes))
            .map(|((fd_name, _), (scope, outcome))| {
                if let FdOutcome::Unknown { exhausted, .. } = outcome {
                    worst = Some(*exhausted);
                }
                let violation = match outcome {
                    FdOutcome::Violated(v) => Some(v.describe(vdoc.doc())),
                    _ => None,
                };
                UpdateCheckEntry {
                    fd: fd_name.clone(),
                    scope: scope_name(*scope).to_string(),
                    check: FdCheckOutcome::from_outcome(fd_name, outcome, violation),
                }
            })
            .collect();
        let resp = UpdateResponse {
            path: name.to_string(),
            version: vdoc.version(),
            touched: report.touched.len(),
            checks,
            all_satisfied: report.all_satisfied(),
            metrics: Some(report.metrics),
            phases: None,
        }
        .to_json();
        if cancel.is_cancelled() {
            return Err(exhausted_error(Resource::Cancelled, resp));
        }
        match worst {
            Some(resource) => Err(exhausted_error(resource, resp)),
            None => Ok(resp),
        }
    }

    fn overrides(
        &self,
        session: &Session,
        params: &Json,
        cancel: &CancelToken,
    ) -> Result<RunOverrides, RpcError> {
        let request = parse_limits(params.get("limits").unwrap_or(&Json::Null))?;
        let merged = merge_limits(&session.limits, &request, &self.config.ceiling);
        Ok(RunOverrides::new()
            .limits(merged)
            .cancel_token(cancel.clone()))
    }

    fn independence_check(&self, params: &Json, cancel: &CancelToken) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        session.requests.fetch_add(1, Ordering::Relaxed);
        let fd_expr = params
            .get("fd")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'fd'"))?;
        let update_expr = params
            .get("update")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'update'"))?;
        let fd =
            parse_fd(&session.alphabet, fd_expr).map_err(|e| invalid_params(format!("fd: {e}")))?;
        let pattern = parse_corexpath(&session.alphabet, update_expr)
            .map_err(|e| invalid_params(format!("update: {e}")))?;
        let class =
            UpdateClass::new(pattern).map_err(|e| invalid_params(format!("update: {e}")))?;
        let run = self.overrides(&session, params, cancel)?;
        let analysis = session.analyzer.independence_with(&fd, &class, &run);
        let witness_xml = match &analysis.verdict {
            Verdict::Unknown {
                witness: Some(doc), ..
            } => Some(to_xml_with(doc, SerializeOptions { indent: true })),
            _ => None,
        };
        let mut resp = IndependenceResponse::from_analysis(&analysis, witness_xml);
        resp.metrics = Some(analysis.metrics);
        match analysis.verdict.exhausted() {
            Some(resource) => Err(exhausted_error(resource, resp.to_json())),
            None => Ok(resp.to_json()),
        }
    }

    fn independence_matrix(&self, params: &Json, cancel: &CancelToken) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        session.requests.fetch_add(1, Ordering::Relaxed);
        let fds = parse_named_fds(&session.alphabet, params.get("fds").unwrap_or(&Json::Null))?;
        let classes = parse_named_classes(
            &session.alphabet,
            params.get("updates").unwrap_or(&Json::Null),
        )?;
        let prune = params.get("prune").and_then(Json::as_bool).unwrap_or(false);
        let run = self.overrides(&session, params, cancel)?;
        let fd_refs: Vec<(&str, &Fd)> = fds.iter().map(|(n, f)| (n.as_str(), f)).collect();
        let class_refs: Vec<(&str, &UpdateClass)> =
            classes.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let matrix = if prune {
            session
                .analyzer
                .matrix_pruned_with(&fd_refs, &class_refs, &run)
        } else {
            session.analyzer.matrix_with(&fd_refs, &class_refs, &run)
        };
        let resp = MatrixResponse::from_matrix(&matrix).to_json();
        if cancel.is_cancelled() {
            return Err(exhausted_error(Resource::Cancelled, resp));
        }
        if matrix.exhausted_count() > 0 {
            // Any exhausted cell is UNKNOWN, recorded per-cell; the matrix
            // as a whole is sound but partial.
            return Err(RpcError::with_data(
                rpc::BUDGET_EXHAUSTED,
                format!(
                    "{} cell(s) exhausted their budget",
                    matrix.exhausted_count()
                ),
                resp,
            ));
        }
        Ok(resp)
    }

    fn fd_check(&self, params: &Json, cancel: &CancelToken) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        session.requests.fetch_add(1, Ordering::Relaxed);
        let named = parse_named_fds(&session.alphabet, params.get("fds").unwrap_or(&Json::Null))?;
        let names: Vec<&str> = named.iter().map(|(n, _)| n.as_str()).collect();
        let fds: Vec<Fd> = named.iter().map(|(_, f)| f.clone()).collect();
        // Explicit doc list, or every loaded document in name order.
        let doc_names: Vec<String> = match params.get("docs") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| invalid_params("'docs' must be an array of names"))?
                .iter()
                .map(|d| {
                    d.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| invalid_params("'docs' entries must be strings"))
                })
                .collect::<Result<_, _>>()?,
            None => {
                let mut all: Vec<String> = session.documents.lock().keys().cloned().collect();
                all.sort();
                all
            }
        };
        if doc_names.is_empty() {
            return Err(invalid_params("no documents loaded or named"));
        }
        let run = self.overrides(&session, params, cancel)?;
        let mut documents = Vec::with_capacity(doc_names.len());
        let mut worst: Option<Resource> = None;
        for name in &doc_names {
            let entry = session.document(name)?;
            let entry = entry.lock();
            let doc = entry.vdoc.doc();
            let report = session.analyzer.check_fds_with(&fds, doc, &run);
            let checks = names
                .iter()
                .zip(&report.outcomes)
                .map(|(fd_name, outcome)| {
                    if let FdOutcome::Unknown { exhausted, .. } = outcome {
                        worst = Some(*exhausted);
                    }
                    let violation = match outcome {
                        FdOutcome::Violated(v) => Some(v.describe(doc)),
                        _ => None,
                    };
                    FdCheckOutcome::from_outcome(fd_name, outcome, violation)
                })
                .collect();
            documents.push(DocumentChecks {
                path: name.clone(),
                checks,
            });
        }
        let resp = FdCheckResponse::from_documents(documents).to_json();
        match worst {
            Some(resource) => Err(exhausted_error(resource, resp)),
            None => Ok(resp),
        }
    }

    fn fd_minimize(&self, params: &Json, cancel: &CancelToken) -> Result<Json, RpcError> {
        let session = self.session(params)?;
        session.requests.fetch_add(1, Ordering::Relaxed);
        let named = parse_named_fds(&session.alphabet, params.get("fds").unwrap_or(&Json::Null))?;
        let mut set = FdSet::new();
        for (name, fd) in named {
            set.push(name, fd);
        }
        let request = parse_limits(params.get("limits").unwrap_or(&Json::Null))?;
        let merged = merge_limits(&session.limits, &request, &self.config.ceiling);
        let min = set.minimize(&merged);
        let resp = MinimizeResponse::from_minimization(&min, &set).to_json();
        if cancel.is_cancelled() {
            return Err(exhausted_error(Resource::Cancelled, resp));
        }
        match min.exhausted {
            Some(resource) => Err(exhausted_error(resource, resp)),
            None => Ok(resp),
        }
    }

    /// `pattern/parse`: parse a textual pattern, return its canonical form
    /// and compiled template ([`PatternParseResponse`] shape). Stateless —
    /// `sessionId` is optional; when given, the pattern's labels intern
    /// into that session's alphabet.
    fn pattern_parse(&self, params: &Json) -> Result<Json, RpcError> {
        let src = params
            .get("pattern")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid_params("missing 'pattern'"))?;
        let alphabet = match params.get("sessionId") {
            Some(_) => {
                let session = self.session(params)?;
                session.requests.fetch_add(1, Ordering::Relaxed);
                session.alphabet.clone()
            }
            None => Alphabet::new(),
        };
        let compiled = CompiledPattern::from_text(&alphabet, src).map_err(|e| {
            // Typed diagnostics: the byte offset and expected set ride in
            // `data` so editor clients can point at the error position.
            RpcError::with_data(
                rpc::INVALID_PARAMS,
                format!("pattern: {e}"),
                Json::Obj(vec![
                    ("offset".to_string(), Json::usize(e.offset)),
                    ("found".to_string(), Json::str(&e.found)),
                    (
                        "expected".to_string(),
                        Json::Arr(e.expected.iter().map(|x| Json::str(*x)).collect()),
                    ),
                    ("note".to_string(), Json::opt_str(e.note.clone())),
                ]),
            )
        })?;
        Ok(PatternParseResponse::from_compiled(src, &compiled).to_json())
    }
}

impl Session {
    fn document(&self, name: &str) -> Result<Arc<Mutex<DocEntry>>, RpcError> {
        self.documents
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| RpcError::new(rpc::DOC_NOT_FOUND, format!("no document named '{name}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_merge_field_wise_and_clamp() {
        let session = RunLimits::UNLIMITED
            .with_max_states(1000)
            .with_deadline_ms(500);
        let request = RunLimits::UNLIMITED.with_max_states(50);
        let ceiling = RunLimits::UNLIMITED.with_max_states(200).with_max_memo(10);
        let m = merge_limits(&session, &request, &ceiling);
        assert_eq!(m.max_states, Some(50)); // request overrides session
        assert_eq!(m.deadline, Some(Duration::from_millis(500))); // session default kept
        assert_eq!(m.max_memo, Some(10)); // ceiling applies even when unset below
        let m = merge_limits(&session, &RunLimits::UNLIMITED, &ceiling);
        assert_eq!(m.max_states, Some(200)); // ceiling clamps the session value
    }

    #[test]
    fn admission_cap_is_enforced() {
        let service = Arc::new(Service::new(ServerConfig {
            max_inflight: 2,
            ..ServerConfig::default()
        }));
        let a = service.admit().expect("slot 1");
        let b = service.admit().expect("slot 2");
        assert!(service.admit().is_none(), "cap of 2");
        drop(a);
        let c = service.admit().expect("slot free again");
        drop(b);
        drop(c);
        assert_eq!(service.inflight.load(Ordering::SeqCst), 0);
    }

    fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn document_update_rechecks_incrementally() {
        let service = Service::new(ServerConfig::default());
        let cancel = CancelToken::new();
        let open = service
            .dispatch("session/open", &Json::Obj(vec![]), &cancel)
            .expect("session opens");
        let sid = open.get("sessionId").and_then(Json::as_u64).expect("id");
        let xml = "<session>\
             <candidate><exam><discipline>math</discipline><rank>1</rank></exam>\
             <level>B</level></candidate>\
             <candidate><exam><discipline>cs</discipline><rank>2</rank></exam>\
             <level>B</level></candidate></session>";
        service
            .dispatch(
                "document/load",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("exams")),
                    ("xml", Json::str(xml)),
                ]),
                &cancel,
            )
            .expect("document loads");
        let fds = Json::Arr(vec![Json::Arr(vec![
            Json::str("disc-rank"),
            Json::str("/session : candidate/exam/discipline -> candidate/exam/rank"),
        ])]);
        let update_params = |update: Json| {
            obj(vec![
                ("sessionId", Json::u64(sid)),
                ("name", Json::str("exams")),
                ("fds", fds.clone()),
                ("update", update),
            ])
        };

        // A level edit cannot reach the FD: carried verdict, no recheck.
        let resp = service
            .dispatch(
                "document/update",
                &update_params(obj(vec![
                    ("select", Json::str("/session/candidate/level")),
                    ("op", Json::str("set_text")),
                    ("value", Json::str("C")),
                ])),
                &cancel,
            )
            .expect("benign update succeeds");
        assert_eq!(resp.get("version").and_then(Json::as_u64), Some(2));
        assert_eq!(resp.get("touched").and_then(Json::as_u64), Some(2));
        assert_eq!(
            resp.get("all_satisfied").and_then(Json::as_bool),
            Some(true)
        );
        let checks = resp.get("checks").and_then(Json::as_array).expect("checks");
        assert_eq!(checks.len(), 1);
        assert_eq!(
            checks[0].get("scope").and_then(Json::as_str),
            Some("unaffected")
        );

        // Same FD set: the warm checker absorbs a violating rank edit.
        let resp = service
            .dispatch(
                "document/update",
                &update_params(obj(vec![
                    ("select", Json::str("/session/candidate/exam/discipline")),
                    ("op", Json::str("set_text")),
                    ("value", Json::str("math")),
                ])),
                &cancel,
            )
            .expect("violating update still answers");
        assert_eq!(resp.get("version").and_then(Json::as_u64), Some(4));
        assert_eq!(
            resp.get("all_satisfied").and_then(Json::as_bool),
            Some(false)
        );
        let checks = resp.get("checks").and_then(Json::as_array).expect("checks");
        assert_eq!(
            checks[0].get("scope").and_then(Json::as_str),
            Some("localized")
        );
        let check = checks[0].get("check").expect("check object");
        assert_eq!(
            check.get("outcome").and_then(Json::as_str),
            Some("violated")
        );

        // fd/check and document/validate read the mutated document.
        let resp = service
            .dispatch(
                "fd/check",
                &obj(vec![("sessionId", Json::u64(sid)), ("fds", fds.clone())]),
                &cancel,
            )
            .expect("fd/check over the updated document");
        let docs = resp
            .get("documents")
            .and_then(Json::as_array)
            .expect("documents");
        let checks = docs[0].get("checks").and_then(Json::as_array).expect("c");
        assert_eq!(
            checks[0].get("outcome").and_then(Json::as_str),
            Some("violated"),
            "full check agrees with the incremental verdict"
        );
    }

    #[test]
    fn document_update_honors_per_request_governance() {
        let service = Service::new(ServerConfig::default());
        let cancel = CancelToken::new();
        let open = service
            .dispatch("session/open", &Json::Obj(vec![]), &cancel)
            .expect("session opens");
        let sid = open.get("sessionId").and_then(Json::as_u64).expect("id");
        // Violated document: rechecks of the FD go global, which polls the
        // budget before any work — deterministic exhaustion/cancellation.
        let xml = "<session>\
             <candidate><exam><discipline>math</discipline><rank>1</rank></exam></candidate>\
             <candidate><exam><discipline>math</discipline><rank>2</rank></exam></candidate>\
             </session>";
        service
            .dispatch(
                "document/load",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("exams")),
                    ("xml", Json::str(xml)),
                ]),
                &cancel,
            )
            .expect("document loads");
        let fds = Json::Arr(vec![Json::Arr(vec![
            Json::str("disc-rank"),
            Json::str("/session : candidate/exam/discipline -> candidate/exam/rank"),
        ])]);
        let rank_edit = || {
            obj(vec![
                ("select", Json::str("/session/candidate/exam/rank")),
                ("op", Json::str("set_text")),
                ("value", Json::str("3")),
            ])
        };
        // Seed the checker warm under unlimited governance.
        let resp = service
            .dispatch(
                "document/update",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("exams")),
                    ("fds", fds.clone()),
                    ("update", rank_edit()),
                ]),
                &cancel,
            )
            .expect("first update seeds and answers");
        assert_eq!(
            resp.get("all_satisfied").and_then(Json::as_bool),
            Some(true)
        );
        // Break the FD again so the next recheck cannot stay Unaffected
        // (violations are reported in-band; the request still answers).
        let resp = service
            .dispatch(
                "document/update",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("exams")),
                    ("fds", fds.clone()),
                    (
                        "update",
                        obj(vec![
                            ("select", Json::str("/session/candidate/exam/rank")),
                            ("op", Json::str("set_text")),
                            ("value", Json::str("5")),
                            ("first_only", Json::Bool(true)),
                        ]),
                    ),
                ]),
                &cancel,
            )
            .expect("violating update answers");
        assert_eq!(
            resp.get("all_satisfied").and_then(Json::as_bool),
            Some(false)
        );
        // The warm checker must honor this request's limits, not the ones
        // it was seeded with: a zero deadline exhausts the recheck.
        let err = service
            .dispatch(
                "document/update",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("exams")),
                    ("fds", fds.clone()),
                    ("update", rank_edit()),
                    ("limits", obj(vec![("deadlineMs", Json::u64(0))])),
                ]),
                &cancel,
            )
            .unwrap_err();
        assert_eq!(err.code, rpc::BUDGET_EXHAUSTED, "{}", err.message);
        // And the request's cancel token reaches the recheck budgets.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = service
            .dispatch(
                "document/update",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("exams")),
                    ("fds", fds),
                    ("update", rank_edit()),
                ]),
                &cancelled,
            )
            .unwrap_err();
        assert_eq!(err.code, rpc::CANCELLED, "{}", err.message);
    }

    #[test]
    fn document_update_rejects_malformed_requests() {
        let service = Service::new(ServerConfig::default());
        let cancel = CancelToken::new();
        let open = service
            .dispatch("session/open", &Json::Obj(vec![]), &cancel)
            .expect("session opens");
        let sid = open.get("sessionId").and_then(Json::as_u64).expect("id");
        let fds = Json::Arr(vec![Json::Arr(vec![
            Json::str("fd"),
            Json::str("/a : b/c -> b/d"),
        ])]);
        let update = obj(vec![
            ("select", Json::str("/a/b")),
            ("op", Json::str("delete")),
        ]);
        // Unknown document.
        let err = service
            .dispatch(
                "document/update",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("nope")),
                    ("fds", fds.clone()),
                    ("update", update.clone()),
                ]),
                &cancel,
            )
            .unwrap_err();
        assert_eq!(err.code, rpc::DOC_NOT_FOUND);
        // Missing update object.
        service
            .dispatch(
                "document/load",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("d")),
                    ("xml", Json::str("<a><b><c>1</c><d>2</d></b></a>")),
                ]),
                &cancel,
            )
            .expect("document loads");
        let err = service
            .dispatch(
                "document/update",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("d")),
                    ("fds", fds.clone()),
                ]),
                &cancel,
            )
            .unwrap_err();
        assert_eq!(err.code, rpc::INVALID_PARAMS);
        assert!(err.message.contains("update"), "{}", err.message);
        // Bad op inside the update object.
        let err = service
            .dispatch(
                "document/update",
                &obj(vec![
                    ("sessionId", Json::u64(sid)),
                    ("name", Json::str("d")),
                    ("fds", fds),
                    (
                        "update",
                        obj(vec![
                            ("select", Json::str("/a/b")),
                            ("op", Json::str("zap")),
                        ]),
                    ),
                ]),
                &cancel,
            )
            .unwrap_err();
        assert_eq!(err.code, rpc::INVALID_PARAMS);
        assert!(err.message.contains("unknown op"), "{}", err.message);
    }

    #[test]
    fn pattern_parse_is_stateless_and_typed() {
        let service = Service::new(ServerConfig::default());
        let params = Json::Obj(vec![(
            "pattern".to_string(),
            Json::str("/s//c[at-least 2 child::e]/l"),
        )]);
        let resp = service
            .dispatch("pattern/parse", &params, &CancelToken::new())
            .unwrap();
        assert_eq!(
            resp.get("canonical").and_then(Json::as_str),
            Some("/s//c[count(e) >= 2]/l")
        );
        assert!(resp.get("template_nodes").and_then(Json::as_u64).unwrap() >= 4);

        // Malformed input: the byte offset and expected set ride in data.
        let params = Json::Obj(vec![("pattern".to_string(), Json::str("/s/[x]"))]);
        let err = service
            .dispatch("pattern/parse", &params, &CancelToken::new())
            .unwrap_err();
        assert_eq!(err.code, rpc::INVALID_PARAMS);
        let data = err.data.expect("typed data");
        assert_eq!(data.get("offset").and_then(Json::as_u64), Some(3));
        assert!(!data.get("expected").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn fd_methods_accept_the_textual_pattern_language() {
        let service = Service::new(ServerConfig::default());
        let open = service
            .dispatch("session/open", &Json::Obj(vec![]), &CancelToken::new())
            .unwrap();
        let sid = open.get("sessionId").and_then(Json::as_u64).unwrap();
        let params = Json::Obj(vec![
            ("sessionId".to_string(), Json::u64(sid)),
            ("name".to_string(), Json::str("d")),
            (
                "xml".to_string(),
                Json::str("<s><i><w/><w/><k>a</k><v>1</v></i><i><w/><w/><k>a</k><v>2</v></i></s>"),
            ),
        ]);
        service
            .dispatch("document/load", &params, &CancelToken::new())
            .unwrap();
        let params = Json::Obj(vec![
            ("sessionId".to_string(), Json::u64(sid)),
            ("docs".to_string(), Json::Arr(vec![Json::str("d")])),
            (
                "fds".to_string(),
                Json::Arr(vec![Json::Arr(vec![
                    Json::str("counted"),
                    Json::str("/s : i[count(w) >= 2]/k -> i[count(w) >= 2]/v"),
                ])]),
            ),
        ]);
        let resp = service
            .dispatch("fd/check", &params, &CancelToken::new())
            .unwrap();
        let docs = resp.get("documents").unwrap().as_array().unwrap();
        let checks = docs[0].get("checks").unwrap().as_array().unwrap();
        assert_eq!(
            checks[0].get("outcome").and_then(Json::as_str),
            Some("violated")
        );
    }

    #[test]
    fn unknown_method_and_missing_session_are_typed() {
        let service = Service::new(ServerConfig::default());
        let err = service
            .dispatch("no/such", &Json::Null, &CancelToken::new())
            .unwrap_err();
        assert_eq!(err.code, rpc::METHOD_NOT_FOUND);
        let params = Json::Obj(vec![("sessionId".to_string(), Json::u64(99))]);
        let err = service
            .dispatch("session/stats", &params, &CancelToken::new())
            .unwrap_err();
        assert_eq!(err.code, rpc::SESSION_NOT_FOUND);
    }
}
