//! Transports: a connection loop generic over reader/writer, plus the
//! stdio and TCP front-ends that feed it.
//!
//! One thread reads frames off the connection. Notifications are handled
//! inline (that is what makes `$/cancelRequest` able to reach a request
//! already running); each request is dispatched on its own worker thread so
//! a long analysis never blocks cancellation or further requests on the
//! same connection. All workers share the write side through a mutex —
//! responses are framed whole under the lock, so concurrent completions
//! never interleave bytes.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use regtree_core::api::Json;
use regtree_core::CancelToken;

use crate::rpc::{self, parse_envelope, read_frame, write_message, FrameError, Incoming, RpcError};
use crate::service::Service;

/// Writer shared by the reader loop and every worker thread.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// In-flight requests of one connection, keyed by the compact form of the
/// request id (distinct JSON ids have distinct compact forms).
type PendingMap = Arc<Mutex<HashMap<String, CancelToken>>>;

fn send(writer: &SharedWriter, message: &Json) -> io::Result<()> {
    let mut w = writer.lock();
    write_message(&mut *w, message)
}

/// Runs the request/response loop over one duplex byte stream until the
/// peer hangs up, the stream dies, or a `shutdown` request / `exit`
/// notification arrives. Returns `true` when the server itself should stop
/// (a `shutdown` request was served).
pub fn serve_connection<R: BufRead>(
    service: &Arc<Service>,
    reader: &mut R,
    writer: SharedWriter,
) -> io::Result<bool> {
    let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut shutdown = false;
    'outer: loop {
        let body = match read_frame(reader, service.config().max_payload) {
            Ok(body) => body,
            Err(FrameError::Closed) => break,
            Err(FrameError::TooLarge { size, max }) => {
                // Frame was drained; answer typed and keep the connection.
                let err = RpcError::new(
                    rpc::PAYLOAD_TOO_LARGE,
                    format!("payload of {size} bytes exceeds cap of {max}"),
                );
                send(&writer, &rpc::response_err(&Json::Null, &err))?;
                continue;
            }
            Err(FrameError::Truncated(d)) | Err(FrameError::Protocol(d)) => {
                // Framing is broken: answer best-effort, then close — the
                // stream position is no longer trustworthy.
                let err = RpcError::new(rpc::PARSE_ERROR, format!("unreadable frame: {d}"));
                let _ = send(&writer, &rpc::response_err(&Json::Null, &err));
                break;
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        let text = match std::str::from_utf8(&body) {
            Ok(t) => t,
            Err(_) => {
                let err = RpcError::new(rpc::PARSE_ERROR, "body is not valid UTF-8");
                send(&writer, &rpc::response_err(&Json::Null, &err))?;
                continue;
            }
        };
        let value = match Json::parse(text) {
            Ok(v) => v,
            Err(e) => {
                let err = RpcError::new(rpc::PARSE_ERROR, format!("invalid JSON: {e}"));
                send(&writer, &rpc::response_err(&Json::Null, &err))?;
                continue;
            }
        };
        match value {
            // Batch: items run sequentially on this thread; one array
            // response collects every non-notification answer.
            Json::Arr(items) => {
                if items.is_empty() {
                    let err = RpcError::new(rpc::INVALID_REQUEST, "empty batch");
                    send(&writer, &rpc::response_err(&Json::Null, &err))?;
                    continue;
                }
                let mut responses = Vec::new();
                for item in items {
                    match handle_one(service, item, &writer, &pending, false, &mut workers) {
                        Handled::Response(r) => responses.push(r),
                        Handled::Spawned | Handled::Notification => {}
                        Handled::Shutdown(r) => {
                            responses.push(r);
                            shutdown = true;
                        }
                        Handled::Exit => {
                            if !responses.is_empty() {
                                send(&writer, &Json::Arr(responses))?;
                            }
                            break 'outer;
                        }
                    }
                }
                if !responses.is_empty() {
                    send(&writer, &Json::Arr(responses))?;
                }
                if shutdown {
                    break;
                }
            }
            single => match handle_one(service, single, &writer, &pending, true, &mut workers) {
                Handled::Response(r) => send(&writer, &r)?,
                Handled::Spawned | Handled::Notification => {}
                Handled::Shutdown(r) => {
                    send(&writer, &r)?;
                    shutdown = true;
                    break;
                }
                Handled::Exit => break,
            },
        }
    }
    for handle in workers {
        let _ = handle.join();
    }
    Ok(shutdown)
}

enum Handled {
    /// A response to deliver (single: immediately; batch: collected).
    Response(Json),
    /// The request was handed to a worker thread which will respond itself.
    Spawned,
    /// A notification; nothing to send.
    Notification,
    /// A `shutdown` request: deliver the response, then stop the server.
    Shutdown(Json),
    /// An `exit` notification: close the connection immediately.
    Exit,
}

fn handle_one(
    service: &Arc<Service>,
    value: Json,
    writer: &SharedWriter,
    pending: &PendingMap,
    may_spawn: bool,
    workers: &mut Vec<std::thread::JoinHandle<()>>,
) -> Handled {
    let Incoming { id, method, params } = match parse_envelope(value) {
        Ok(inc) => inc,
        Err((id, err)) => return Handled::Response(rpc::response_err(&id, &err)),
    };
    let Some(id) = id else {
        // Notifications: cancellation and exit are meaningful, the rest
        // are ignored per JSON-RPC (never answered, not even with errors).
        match method.as_str() {
            "$/cancelRequest" => {
                if let Some(target) = params.get("id") {
                    let key = target.to_compact();
                    if let Some(token) = pending.lock().get(&key) {
                        token.cancel();
                    }
                }
            }
            "exit" => return Handled::Exit,
            _ => {}
        }
        return Handled::Notification;
    };
    if method == "shutdown" {
        return Handled::Shutdown(rpc::response_ok(&id, Json::Null));
    }
    let Some(guard) = service.admit() else {
        let err = RpcError::new(
            rpc::OVERLOADED,
            format!(
                "server is at its in-flight cap of {}",
                service.config().max_inflight
            ),
        );
        return Handled::Response(rpc::response_err(&id, &err));
    };
    let cancel = CancelToken::new();
    let key = id.to_compact();
    pending.lock().insert(key.clone(), cancel.clone());
    let finish = {
        let pending = Arc::clone(pending);
        move |result: Result<Json, RpcError>| -> Json {
            pending.lock().remove(&key);
            match result {
                Ok(result) => rpc::response_ok(&id, result),
                Err(err) => rpc::response_err(&id, &err),
            }
        }
    };
    if may_spawn {
        let service = Arc::clone(service);
        let writer = Arc::clone(writer);
        workers.push(std::thread::spawn(move || {
            let result = service.dispatch(&method, &params, &cancel);
            drop(guard);
            let _ = send(&writer, &finish(result));
        }));
        Handled::Spawned
    } else {
        // Batch items answer in order, so they run inline.
        let result = service.dispatch(&method, &params, &cancel);
        drop(guard);
        Handled::Response(finish(result))
    }
}

/// Serves one client over stdin/stdout (the editor-integration transport).
/// Returns when stdin closes or the client sends `shutdown`/`exit`.
pub fn serve_stdio(service: &Arc<Service>) -> io::Result<()> {
    let mut reader = BufReader::new(io::stdin());
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
    serve_connection(service, &mut reader, writer)?;
    Ok(())
}

/// A TCP front-end: accepts connections and serves each on its own thread.
pub struct TcpServer {
    listener: TcpListener,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 to let the OS pick — handy in tests).
    pub fn bind(addr: &str, service: Arc<Service>) -> io::Result<TcpServer> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
            service,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (real port when bound with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop. Returns after a client's `shutdown` request completes.
    pub fn run(&self) -> io::Result<()> {
        let addr = self.local_addr()?;
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || {
                if let Ok(true) = handle_tcp_client(&service, stream) {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so `run` can observe the flag.
                    let _ = TcpStream::connect(addr);
                }
            });
        }
    }
}

fn handle_tcp_client(service: &Arc<Service>, stream: TcpStream) -> io::Result<bool> {
    let write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
    serve_connection(service, &mut reader, writer)
}
