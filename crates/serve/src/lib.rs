//! `regtree-serve` — **rtpserved**, a long-lived JSON-RPC 2.0 analysis
//! service over the request/response types of [`regtree_core::api`].
//!
//! The CLI (`rtpcheck`) pays schema + pattern compilation on every
//! invocation. The daemon amortizes it: a *session* pins an
//! [`regtree_core::Analyzer`] — compiled schema automaton, pattern-automaton
//! cache — and the parsed documents, so the thousandth independence check
//! over the same schema answers from warm caches. The protocol is
//! LSP-style framing (`Content-Length: N\r\n\r\n<json>`) over stdio or
//! TCP; the payloads are exactly the versioned
//! [`regtree_core::api::PROTOCOL_VERSION`] shapes that `rtpcheck
//! --format json` prints, so a client can switch between one-shot and
//! daemon mode without re-parsing anything.
//!
//! # Methods
//!
//! | method | params | result |
//! |---|---|---|
//! | `initialize` | `{protocolVersion}` | server info + capabilities |
//! | `session/open` | `{schema?, limits?}` | `{sessionId, hasSchema}` |
//! | `session/close` | `{sessionId}` | `{closed}` |
//! | `session/stats` | `{sessionId}` | documents/requests/limits |
//! | `server/stats` | — | sessions/inflight/totals |
//! | `document/load` | `{sessionId, name, xml, validate?}` | `{name, nodes, valid}` |
//! | `document/validate` | `{sessionId, name}` | `{name, valid, reason}` |
//! | `document/update` | `{sessionId, name, fds, update, limits?}` | [`regtree_core::api::UpdateResponse`] |
//! | `independence/check` | `{sessionId, fd, update, limits?}` | [`regtree_core::api::IndependenceResponse`] |
//! | `independence/matrix` | `{sessionId, fds, updates, prune?, limits?}` | [`regtree_core::api::MatrixResponse`] |
//! | `fd/check` | `{sessionId, fds, docs?, limits?}` | [`regtree_core::api::FdCheckResponse`] |
//! | `fd/minimize` | `{sessionId, fds, limits?}` | [`regtree_core::api::MinimizeResponse`] |
//! | `pattern/parse` | `{pattern, sessionId?}` | [`regtree_core::api::PatternParseResponse`] |
//! | `shutdown` | — | `null` (server stops) |
//!
//! `$/cancelRequest {id}` and `exit` are notifications. FD expressions use
//! the textual pattern language of [`regtree_core::parse_fd`] (descendant
//! axes, wildcards, counting predicates — see `docs/PATTERN_LANGUAGE.md`),
//! update classes are positive CoreXPath, schemas the rule format of
//! [`regtree_hedge::Schema::parse`] — the same surface syntax as the CLI.
//! `pattern/parse` is stateless (no session required); parse failures
//! return `invalid params` with `{offset, found, expected, note}` in
//! `error.data` so editor clients can point at the byte.
//! `document/update` takes the executable-update shape of
//! [`regtree_core::api::parse_update_json`] (the same objects `rtpcheck
//! fd-check --updates` reads line-wise), mutates the loaded document in
//! place, and rechecks the named FDs through a per-document
//! [`regtree_core::IncrementalChecker`] that stays warm between requests.
//!
//! # Governance
//!
//! Admission control is layered ([`service`] module docs): a global
//! in-flight cap, per-session default [`regtree_core::RunLimits`], and
//! per-request overrides clamped by a server-wide ceiling. An admitted run
//! that exhausts its budget answers with the typed error
//! [`rpc::BUDGET_EXHAUSTED`] (cancellation: [`rpc::CANCELLED`]) whose
//! `data` member carries the sound partial response — the service never
//! returns a wrong verdict, only a smaller one.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod rpc;
pub mod server;
pub mod service;

pub use server::{serve_connection, serve_stdio, TcpServer};
pub use service::{ServerConfig, Service};
