//! Cold- vs warm-session latency of `rtpserved` over loopback TCP.
//!
//! Cold: every request pays the full `session/open` (schema compile) +
//! `document/load` + `independence/check` + `session/close` chain — the
//! one-shot CLI cost expressed on the wire. Warm: one session is opened
//! and loaded once, then only `independence/check` requests are timed —
//! the daemon's amortized steady state. Output is flat
//! `serve/<mode>/<metric> <integer>` lines for `scripts/bench_json.sh`
//! (latencies in nanoseconds).

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use regtree_core::api::Json;
use regtree_serve::rpc::{read_frame, write_message};
use regtree_serve::{ServerConfig, Service, TcpServer};

const COLD_ITERS: usize = 40;
const WARM_ITERS: usize = 200;

const FD: &str = "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank";
const UPDATE: &str = "/session/candidate/level";

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

struct Client {
    reader: BufReader<TcpStream>,
    write: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            write: stream,
            next_id: 1,
        }
    }

    fn request(&mut self, method: &str, params: Json) -> Json {
        let id = self.next_id;
        self.next_id += 1;
        let msg = obj(vec![
            ("jsonrpc", Json::str("2.0")),
            ("id", Json::u64(id)),
            ("method", Json::str(method)),
            ("params", params),
        ]);
        write_message(&mut self.write, &msg).expect("send");
        loop {
            let body = read_frame(&mut self.reader, usize::MAX >> 1).expect("read");
            let resp = Json::parse(std::str::from_utf8(&body).expect("UTF-8")).expect("JSON");
            if resp.get("id").and_then(Json::as_u64) == Some(id) {
                let result = resp
                    .get("result")
                    .unwrap_or_else(|| panic!("request failed: {}", resp.to_compact()));
                return result.clone();
            }
        }
    }
}

fn open_and_load(client: &mut Client, schema: &str, xml: &str) -> u64 {
    let open = client.request(
        "session/open",
        obj(vec![("schema", Json::str(schema.to_string()))]),
    );
    let session = open.get("sessionId").and_then(Json::as_u64).expect("id");
    client.request(
        "document/load",
        obj(vec![
            ("sessionId", Json::u64(session)),
            ("name", Json::str("exam")),
            ("xml", Json::str(xml.to_string())),
        ]),
    );
    session
}

fn check(client: &mut Client, session: u64) {
    let resp = client.request(
        "independence/check",
        obj(vec![
            ("sessionId", Json::u64(session)),
            ("fd", Json::str(FD)),
            ("update", Json::str(UPDATE)),
        ]),
    );
    assert_eq!(
        resp.get("independent").and_then(Json::as_bool),
        Some(true),
        "the Figure 4 workload is independent"
    );
}

fn percentile(sorted_ns: &[u128], pct: usize) -> u128 {
    let idx = (sorted_ns.len() * pct / 100).min(sorted_ns.len() - 1);
    sorted_ns[idx]
}

fn report(mode: &str, mut lat_ns: Vec<u128>, total_secs: f64) {
    lat_ns.sort_unstable();
    println!("serve/{mode}/requests {}", lat_ns.len());
    println!("serve/{mode}/p50_ns {}", percentile(&lat_ns, 50));
    println!("serve/{mode}/p99_ns {}", percentile(&lat_ns, 99));
    println!(
        "serve/{mode}/requests_per_sec {}",
        (lat_ns.len() as f64 / total_secs).round() as u64
    );
}

fn main() {
    let schema = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/exam.rts"
    ))
    .expect("schema fixture");
    let xml = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/session.xml"
    ))
    .expect("xml fixture");

    let service = Arc::new(Service::new(ServerConfig::default()));
    let server = TcpServer::bind("127.0.0.1:0", service).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::spawn(move || server.run().expect("server"));
    let mut client = Client::connect(addr);

    // Warm the allocator, the interner, and the TCP path off the clock.
    let session = open_and_load(&mut client, &schema, &xml);
    for _ in 0..10 {
        check(&mut client, session);
    }
    client.request(
        "session/close",
        obj(vec![("sessionId", Json::u64(session))]),
    );

    // Cold: the whole open → load → check → close chain, every time.
    let mut cold = Vec::with_capacity(COLD_ITERS);
    let cold_start = Instant::now();
    for _ in 0..COLD_ITERS {
        let t = Instant::now();
        let session = open_and_load(&mut client, &schema, &xml);
        check(&mut client, session);
        client.request(
            "session/close",
            obj(vec![("sessionId", Json::u64(session))]),
        );
        cold.push(t.elapsed().as_nanos());
    }
    let cold_secs = cold_start.elapsed().as_secs_f64();

    // Warm: one pinned session, only the checks are timed.
    let session = open_and_load(&mut client, &schema, &xml);
    let mut warm = Vec::with_capacity(WARM_ITERS);
    let warm_start = Instant::now();
    for _ in 0..WARM_ITERS {
        let t = Instant::now();
        check(&mut client, session);
        warm.push(t.elapsed().as_nanos());
    }
    let warm_secs = warm_start.elapsed().as_secs_f64();

    report("cold", cold, cold_secs);
    report("warm", warm, warm_secs);
    client.request("shutdown", Json::Null);
}
