//! Concurrent-clients stress test over real TCP: N client threads run a
//! mixed workload (independence checks, FD satisfaction, minimization,
//! stats) against one shared server, and every verdict is compared against
//! a direct [`Analyzer`] baseline computed in-process — zero mismatches
//! allowed. A separate case cancels an in-flight matrix request and
//! requires the typed cancellation error.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use regtree_alphabet::Alphabet;
use regtree_core::api::Json;
use regtree_core::{Analyzer, Fd, FdOutcome, FdSet, PathFd, RunLimits, UpdateClass};
use regtree_hedge::Schema;
use regtree_pattern::parse_corexpath;
use regtree_serve::rpc::{self, read_frame, write_message};
use regtree_serve::{ServerConfig, Service, TcpServer};
use regtree_xml::parse_document;

const SCHEMA_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../fixtures/exam.rts");
const XML_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../fixtures/session.xml");

const FD_FULL: &str =
    "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank";
const FD_DISC_RANK: &str = "/session : candidate/exam/discipline -> candidate/exam/rank";
const UPD_LEVEL: &str = "/session/candidate/level";
const UPD_RANK: &str = "/session/candidate/exam/rank";

/// The independence workload: (fd, update) pairs checked by every client.
const PAIRS: [(&str, &str); 3] = [
    (FD_FULL, UPD_LEVEL),
    (FD_FULL, UPD_RANK),
    (FD_DISC_RANK, UPD_LEVEL),
];

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn pair_array(items: &[(String, String)]) -> Json {
    Json::Arr(
        items
            .iter()
            .map(|(n, e)| Json::Arr(vec![Json::str(n.clone()), Json::str(e.clone())]))
            .collect(),
    )
}

/// One sequential JSON-RPC client over its own TCP connection.
struct Client {
    reader: BufReader<TcpStream>,
    write: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            write: stream,
            next_id: 1,
        }
    }

    fn notify(&mut self, method: &str, params: Json) {
        let msg = obj(vec![
            ("jsonrpc", Json::str("2.0")),
            ("method", Json::str(method)),
            ("params", params),
        ]);
        write_message(&mut self.write, &msg).expect("send notification");
    }

    /// Sends a request and blocks until its response arrives.
    fn request(&mut self, method: &str, params: Json) -> Json {
        let id = self.send_request(method, params);
        self.wait_for(id)
    }

    /// Sends a request without waiting (for pipelined cancellation).
    fn send_request(&mut self, method: &str, params: Json) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let msg = obj(vec![
            ("jsonrpc", Json::str("2.0")),
            ("id", Json::u64(id)),
            ("method", Json::str(method)),
            ("params", params),
        ]);
        write_message(&mut self.write, &msg).expect("send request");
        id
    }

    fn wait_for(&mut self, id: u64) -> Json {
        loop {
            let body = read_frame(&mut self.reader, usize::MAX >> 1).expect("read response");
            let resp = Json::parse(std::str::from_utf8(&body).expect("UTF-8")).expect("valid JSON");
            if resp.get("id").and_then(Json::as_u64) == Some(id) {
                return resp;
            }
        }
    }

    /// Unwraps a successful response or panics with the error.
    fn expect_ok<'a>(resp: &'a Json, what: &str) -> &'a Json {
        resp.get("result")
            .unwrap_or_else(|| panic!("{what} failed: {}", resp.to_compact()))
    }
}

fn outcome_str(outcome: &FdOutcome) -> &'static str {
    match outcome {
        FdOutcome::Satisfied => "satisfied",
        FdOutcome::Violated(_) => "violated",
        FdOutcome::Unknown { .. } => "unknown",
        _ => unreachable!("non-exhaustive FdOutcome"),
    }
}

/// The verdicts every client must reproduce, computed on a direct
/// [`Analyzer`] with no server in between.
struct Expected {
    independent: Vec<bool>,
    fd_outcomes: Vec<&'static str>,
    minimize_kept: Vec<String>,
}

fn compute_expected(schema_text: &str, xml: &str) -> Expected {
    let alphabet = Alphabet::new();
    let schema = Schema::parse(&alphabet, schema_text).expect("fixture schema parses");
    let analyzer = Analyzer::builder().schema(schema).build();
    let parse_fd = |expr: &str| -> Fd {
        PathFd::parse(&alphabet, expr)
            .and_then(|p| p.to_fd(&alphabet))
            .expect("workload fd parses")
    };
    let parse_upd = |expr: &str| -> UpdateClass {
        UpdateClass::new(parse_corexpath(&alphabet, expr).expect("workload update parses"))
            .expect("workload update class")
    };
    let independent = PAIRS
        .iter()
        .map(|(f, u)| {
            analyzer
                .independence(&parse_fd(f), &parse_upd(u))
                .verdict
                .is_independent()
        })
        .collect();
    let doc = parse_document(&alphabet, xml).expect("fixture document parses");
    let fds = [parse_fd(FD_FULL), parse_fd(FD_DISC_RANK)];
    let fd_outcomes = analyzer
        .check_fds(&fds, &doc)
        .outcomes
        .iter()
        .map(outcome_str)
        .collect();
    let mut set = FdSet::new();
    set.push("full", parse_fd(FD_FULL));
    set.push("disc-rank", parse_fd(FD_DISC_RANK));
    set.push("full-dup", parse_fd(FD_FULL));
    let min = set.minimize(&RunLimits::UNLIMITED);
    assert!(min.exhausted.is_none());
    let minimize_kept = min.kept.iter().map(|&k| set.name(k).to_string()).collect();
    Expected {
        independent,
        fd_outcomes,
        minimize_kept,
    }
}

fn start_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let service = Arc::new(Service::new(ServerConfig::default()));
    let server = TcpServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle)
}

/// One client's full workload; returns the number of verdict mismatches.
fn run_client(addr: SocketAddr, schema_text: &str, xml: &str, expected: &Expected) -> usize {
    let mut client = Client::connect(addr);
    let mut mismatches = 0;

    let init = client.request(
        "initialize",
        obj(vec![("protocolVersion", Json::str("1.0"))]),
    );
    Client::expect_ok(&init, "initialize");

    let open = client.request(
        "session/open",
        obj(vec![("schema", Json::str(schema_text.to_string()))]),
    );
    let session_id = Client::expect_ok(&open, "session/open")
        .get("sessionId")
        .and_then(Json::as_u64)
        .expect("sessionId");

    let load = client.request(
        "document/load",
        obj(vec![
            ("sessionId", Json::u64(session_id)),
            ("name", Json::str("exam")),
            ("xml", Json::str(xml.to_string())),
            ("validate", Json::Bool(true)),
        ]),
    );
    assert_eq!(
        Client::expect_ok(&load, "document/load")
            .get("valid")
            .and_then(Json::as_bool),
        Some(true),
        "Figure 1 document validates against the exam schema"
    );

    let named_fds = vec![
        ("full".to_string(), FD_FULL.to_string()),
        ("disc-rank".to_string(), FD_DISC_RANK.to_string()),
    ];
    for round in 0..4 {
        // Independence verdicts must match the direct Analyzer exactly.
        for (i, (fd, upd)) in PAIRS.iter().enumerate() {
            let resp = client.request(
                "independence/check",
                obj(vec![
                    ("sessionId", Json::u64(session_id)),
                    ("fd", Json::str(*fd)),
                    ("update", Json::str(*upd)),
                ]),
            );
            let got = Client::expect_ok(&resp, "independence/check")
                .get("independent")
                .and_then(Json::as_bool);
            if got != Some(expected.independent[i]) {
                mismatches += 1;
            }
        }
        // FD satisfaction on the loaded document.
        let resp = client.request(
            "fd/check",
            obj(vec![
                ("sessionId", Json::u64(session_id)),
                ("fds", pair_array(&named_fds)),
            ]),
        );
        let docs = Client::expect_ok(&resp, "fd/check")
            .get("documents")
            .and_then(Json::as_array)
            .expect("documents array");
        let checks = docs[0]
            .get("checks")
            .and_then(Json::as_array)
            .expect("checks");
        for (i, check) in checks.iter().enumerate() {
            if check.get("outcome").and_then(Json::as_str) != Some(expected.fd_outcomes[i]) {
                mismatches += 1;
            }
        }
        // Cover minimization too.
        let with_dup = {
            let mut v = named_fds.clone();
            v.push(("full-dup".to_string(), FD_FULL.to_string()));
            v
        };
        let resp = client.request(
            "fd/minimize",
            obj(vec![
                ("sessionId", Json::u64(session_id)),
                ("fds", pair_array(&with_dup)),
            ]),
        );
        let kept: Vec<&str> = Client::expect_ok(&resp, "fd/minimize")
            .get("kept")
            .and_then(Json::as_array)
            .expect("kept array")
            .iter()
            .filter_map(Json::as_str)
            .collect();
        if kept
            != expected
                .minimize_kept
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        {
            mismatches += 1;
        }
        // Session stats stay coherent mid-stress.
        if round == 2 {
            let stats = client.request(
                "session/stats",
                obj(vec![("sessionId", Json::u64(session_id))]),
            );
            let result = Client::expect_ok(&stats, "session/stats");
            assert_eq!(result.get("documents").and_then(Json::as_u64), Some(1));
            assert_eq!(result.get("hasSchema").and_then(Json::as_bool), Some(true));
        }
    }

    let close = client.request(
        "session/close",
        obj(vec![("sessionId", Json::u64(session_id))]),
    );
    Client::expect_ok(&close, "session/close");
    mismatches
}

#[test]
fn concurrent_clients_have_zero_verdict_mismatches() {
    let schema_text = std::fs::read_to_string(SCHEMA_PATH).expect("schema fixture");
    let xml = std::fs::read_to_string(XML_PATH).expect("xml fixture");
    let expected = Arc::new(compute_expected(&schema_text, &xml));
    // The workload is meaningful: the paper's Figure 4 example really is
    // independent, and updating the FD's own target really is not.
    assert_eq!(expected.independent, vec![true, false, true]);
    assert_eq!(expected.fd_outcomes, vec!["satisfied", "satisfied"]);

    let (addr, server) = start_server();
    let schema_text = Arc::new(schema_text);
    let xml = Arc::new(xml);
    let clients: Vec<_> = (0..6)
        .map(|_| {
            let (schema_text, xml, expected) = (
                Arc::clone(&schema_text),
                Arc::clone(&xml),
                Arc::clone(&expected),
            );
            std::thread::spawn(move || run_client(addr, &schema_text, &xml, &expected))
        })
        .collect();
    let total_mismatches: usize = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();
    assert_eq!(
        total_mismatches, 0,
        "every verdict matches the direct Analyzer"
    );

    // A clean shutdown request stops the whole server.
    let mut closer = Client::connect(addr);
    let resp = closer.request("shutdown", Json::Null);
    assert!(resp.get("result").is_some());
    server.join().expect("server thread exits after shutdown");
}

/// A deliberately large schemaless matrix (36 cells over deep paths) that
/// the client cancels while it is in flight: the answer must be the typed
/// [`rpc::CANCELLED`] error with the sound partial response in `data`.
#[test]
fn cancelling_an_inflight_matrix_returns_the_typed_error() {
    let (addr, server) = start_server();
    let mut client = Client::connect(addr);
    let open = client.request("session/open", obj(vec![]));
    let session_id = Client::expect_ok(&open, "session/open")
        .get("sessionId")
        .and_then(Json::as_u64)
        .expect("sessionId");

    let fds: Vec<(String, String)> = (0..6)
        .map(|i| {
            (
                format!("f{i}"),
                format!("/r : a/b/c/d/e/x0, a/b/c/d/e/x1 -> a/b/c/d/e/g{i}"),
            )
        })
        .collect();
    let updates: Vec<(String, String)> = (0..6)
        .map(|i| (format!("u{i}"), format!("/r/a/b/c/d/e/h{i}")))
        .collect();

    let mut cancelled = false;
    for _ in 0..5 {
        let id = client.send_request(
            "independence/matrix",
            obj(vec![
                ("sessionId", Json::u64(session_id)),
                ("fds", pair_array(&fds)),
                ("updates", pair_array(&updates)),
            ]),
        );
        // Pipelined immediately after the request: the reader loop cancels
        // the worker's token while the matrix is still being computed.
        client.notify("$/cancelRequest", obj(vec![("id", Json::u64(id))]));
        let resp = client.wait_for(id);
        if let Some(err) = resp.get("error") {
            assert_eq!(
                err.get("code").and_then(Json::as_f64).map(|f| f as i64),
                Some(rpc::CANCELLED),
                "unexpected error: {}",
                resp.to_compact()
            );
            assert!(
                err.get("data").is_some(),
                "cancellation carries the sound partial response"
            );
            cancelled = true;
            break;
        }
        // The matrix finished before the cancel landed; try again.
    }
    assert!(cancelled, "cancellation never won the race in 5 attempts");

    let resp = client.request("shutdown", Json::Null);
    assert!(resp.get("result").is_some());
    server.join().expect("server thread exits");
}
