//! Wire-level tests of the JSON-RPC framing and dispatch: every edge case
//! runs the real connection loop over in-memory buffers — no sockets, no
//! subprocesses — and asserts on the exact framed responses.

use std::io::{BufReader, Write};
use std::sync::Arc;

use parking_lot::Mutex;

use regtree_core::api::Json;
use regtree_serve::rpc::{self, read_frame, write_frame};
use regtree_serve::{serve_connection, ServerConfig, Service};

/// A `Write` that appends into a shared buffer (the captured wire output).
#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs one scripted connection; returns the parsed response messages and
/// whether the client asked the server to shut down.
fn run_script(script: &[u8], config: ServerConfig) -> (Vec<Json>, bool) {
    let service = Arc::new(Service::new(config));
    let sink = Arc::new(Mutex::new(Vec::new()));
    let writer: Arc<Mutex<Box<dyn Write + Send>>> =
        Arc::new(Mutex::new(Box::new(Capture(Arc::clone(&sink)))));
    let mut reader = BufReader::new(script);
    let shutdown = serve_connection(&service, &mut reader, writer).expect("connection loop runs");
    let raw = sink.lock().clone();
    let mut frames = Vec::new();
    let mut r = BufReader::new(&raw[..]);
    while let Ok(body) = read_frame(&mut r, usize::MAX >> 1) {
        frames.push(
            Json::parse(std::str::from_utf8(&body).expect("responses are UTF-8"))
                .expect("responses are valid JSON"),
        );
    }
    (frames, shutdown)
}

fn frame(body: &str) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, body.as_bytes()).unwrap();
    out
}

fn request(id: u64, method: &str, params: &str) -> Vec<u8> {
    frame(&format!(
        r#"{{"jsonrpc":"2.0","id":{id},"method":"{method}","params":{params}}}"#
    ))
}

fn error_code(resp: &Json) -> Option<i64> {
    resp.get("error")?.get("code")?.as_f64().map(|f| f as i64)
}

#[test]
fn unknown_method_answers_method_not_found() {
    let (resps, _) = run_script(
        &request(1, "no/such/method", "null"),
        ServerConfig::default(),
    );
    assert_eq!(resps.len(), 1);
    assert_eq!(resps[0].get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(error_code(&resps[0]), Some(rpc::METHOD_NOT_FOUND));
}

#[test]
fn truncated_content_length_is_parse_error_then_close() {
    // Declares 999 bytes, delivers 2: the loop answers -32700 (id null)
    // and drops the connection since the stream position is untrustworthy.
    let script = b"Content-Length: 999\r\n\r\n{}".to_vec();
    let (resps, shutdown) = run_script(&script, ServerConfig::default());
    assert!(!shutdown);
    assert_eq!(resps.len(), 1);
    assert!(resps[0].get("id").unwrap().is_null());
    assert_eq!(error_code(&resps[0]), Some(rpc::PARSE_ERROR));
}

#[test]
fn oversized_payload_is_typed_and_connection_survives() {
    let mut script = frame(&format!(r#"{{"pad":"{}"}}"#, "x".repeat(200)));
    script.extend(request(2, "server/stats", "null"));
    let (resps, _) = run_script(
        &script,
        ServerConfig {
            max_payload: 64,
            ..ServerConfig::default()
        },
    );
    assert_eq!(resps.len(), 2);
    assert_eq!(error_code(&resps[0]), Some(rpc::PAYLOAD_TOO_LARGE));
    // The follow-up request on the same connection still worked.
    assert_eq!(resps[1].get("id").and_then(Json::as_u64), Some(2));
    assert!(resps[1].get("result").is_some());
}

#[test]
fn malformed_utf8_body_is_parse_error() {
    let mut script = b"Content-Length: 4\r\n\r\n".to_vec();
    script.extend([0xff, 0xfe, 0x80, 0x81]);
    script.extend(request(3, "server/stats", "null"));
    let (resps, _) = run_script(&script, ServerConfig::default());
    assert_eq!(resps.len(), 2);
    assert_eq!(error_code(&resps[0]), Some(rpc::PARSE_ERROR));
    assert!(resps[1].get("result").is_some(), "connection kept working");
}

#[test]
fn invalid_json_and_invalid_envelope() {
    let mut script = frame("{not json");
    script.extend(frame(r#"{"id":9,"method":"server/stats"}"#)); // no jsonrpc
    let (resps, _) = run_script(&script, ServerConfig::default());
    assert_eq!(resps.len(), 2);
    assert_eq!(error_code(&resps[0]), Some(rpc::PARSE_ERROR));
    assert_eq!(error_code(&resps[1]), Some(rpc::INVALID_REQUEST));
    assert_eq!(resps[1].get("id").and_then(Json::as_u64), Some(9));
}

#[test]
fn missing_content_length_header_closes_with_parse_error() {
    let script = b"Content-Type: application/json\r\n\r\n{}".to_vec();
    let (resps, _) = run_script(&script, ServerConfig::default());
    assert_eq!(resps.len(), 1);
    assert_eq!(error_code(&resps[0]), Some(rpc::PARSE_ERROR));
}

#[test]
fn batch_answers_in_order_and_skips_notifications() {
    let body = r#"[
        {"jsonrpc":"2.0","id":1,"method":"server/stats"},
        {"jsonrpc":"2.0","method":"some/notification"},
        {"jsonrpc":"2.0","id":2,"method":"no/such"},
        {"bad":"envelope"}
    ]"#;
    let (resps, _) = run_script(&frame(body), ServerConfig::default());
    assert_eq!(resps.len(), 1, "one array response per batch");
    let arr = resps[0].as_array().expect("batch answer is an array");
    assert_eq!(arr.len(), 3, "notification gets no slot");
    assert_eq!(arr[0].get("id").and_then(Json::as_u64), Some(1));
    assert!(arr[0].get("result").is_some());
    assert_eq!(error_code(&arr[1]), Some(rpc::METHOD_NOT_FOUND));
    assert_eq!(error_code(&arr[2]), Some(rpc::INVALID_REQUEST));
}

#[test]
fn empty_batch_is_invalid_request() {
    let (resps, _) = run_script(&frame("[]"), ServerConfig::default());
    assert_eq!(resps.len(), 1);
    assert_eq!(error_code(&resps[0]), Some(rpc::INVALID_REQUEST));
}

#[test]
fn shutdown_is_acknowledged_and_stops_the_loop() {
    let mut script = request(1, "shutdown", "null");
    script.extend(request(2, "server/stats", "null")); // never reached
    let (resps, shutdown) = run_script(&script, ServerConfig::default());
    assert!(shutdown);
    assert_eq!(resps.len(), 1);
    assert!(resps[0].get("result").unwrap().is_null());
}

#[test]
fn exit_notification_closes_silently() {
    let mut script = frame(r#"{"jsonrpc":"2.0","method":"exit"}"#);
    script.extend(request(2, "server/stats", "null"));
    let (resps, shutdown) = run_script(&script, ServerConfig::default());
    assert!(!shutdown, "exit is not shutdown");
    assert!(resps.is_empty(), "no response to a notification, loop ends");
}

#[test]
fn protocol_handshake_accepts_same_major_and_rejects_other() {
    let mut script = request(1, "initialize", r#"{"protocolVersion":"1.9"}"#);
    script.extend(request(2, "initialize", r#"{"protocolVersion":"2.0"}"#));
    let (resps, _) = run_script(&script, ServerConfig::default());
    let by_id = |id: u64| {
        resps
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
            .expect("response present")
    };
    let ok = by_id(1).get("result").expect("1.x is compatible");
    assert_eq!(
        ok.get("serverName").and_then(Json::as_str),
        Some("rtpserved")
    );
    assert!(ok
        .get("capabilities")
        .and_then(|c| c.get("methods"))
        .and_then(Json::as_array)
        .is_some_and(|m| !m.is_empty()));
    assert_eq!(error_code(by_id(2)), Some(rpc::PROTOCOL_MISMATCH));
}

/// Full session flow plus the two typed-governance errors: `NO_SCHEMA` on a
/// schema-requiring method, and `BUDGET_EXHAUSTED` carrying the sound
/// partial result when a tiny budget runs out.
#[test]
fn session_flow_no_schema_and_budget_exhaustion() {
    let fd = "/session : candidate/exam/discipline -> candidate/exam/rank";
    let xml = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/session.xml"
    ))
    .expect("fixture readable");
    let load = Json::Obj(vec![
        ("sessionId".to_string(), Json::u64(1)),
        ("name".to_string(), Json::str("session.xml")),
        ("xml".to_string(), Json::str(xml)),
        ("validate".to_string(), Json::Bool(true)),
    ]);
    let mut script = request(1, "session/open", "{}"); // no schema
    script.extend(frame(&format!(
        r#"{{"jsonrpc":"2.0","id":2,"method":"document/load","params":{}}}"#,
        load.to_compact()
    )));
    script.extend(request(
        3,
        "independence/check",
        &format!(
            r#"{{"sessionId":1,"fd":"{fd}","update":"/session/candidate/exam/rank","limits":{{"maxStates":1}}}}"#
        ),
    ));
    let (resps, _) = run_script(&script, ServerConfig::default());
    let by_id = |id: u64| {
        resps
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
            .expect("response present")
    };
    assert_eq!(
        by_id(1)
            .get("result")
            .and_then(|r| r.get("sessionId"))
            .and_then(Json::as_u64),
        Some(1)
    );
    // validate:true on a schemaless session is the typed NO_SCHEMA error.
    assert_eq!(error_code(by_id(2)), Some(rpc::NO_SCHEMA));
    // One interned state is never enough: typed exhaustion, with the sound
    // partial response riding in error.data.
    let err = by_id(3).get("error").expect("budget error");
    assert_eq!(
        err.get("code").and_then(Json::as_f64).map(|f| f as i64),
        Some(rpc::BUDGET_EXHAUSTED)
    );
    let data = err.get("data").expect("partial response in data");
    assert_eq!(data.get("exhausted").and_then(Json::as_str), Some("states"));
    assert_eq!(data.get("independent").and_then(Json::as_bool), Some(false));
}
