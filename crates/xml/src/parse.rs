//! A small, dependency-free XML 1.0 subset parser.
//!
//! Supports elements, attributes, character data, the five predefined
//! entities, numeric character references, comments, processing
//! instructions and a `<!DOCTYPE …>` prolog (skipped). Not supported (out of
//! scope for the paper's data model): namespaces, CDATA nesting subtleties,
//! external entities.
//!
//! Parsed attributes become `@`-labeled leaf children placed *before* the
//! element children, matching the document model of Section 2.1 where
//! attribute nodes are ordinary leaves.

use std::fmt;

use regtree_alphabet::Alphabet;

use crate::model::{Document, NodeId};

/// Error raised by [`parse_document`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Parser configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParseOptions {
    /// Keep text nodes that consist solely of whitespace (default: false,
    /// so indentation does not pollute value equality).
    pub keep_whitespace_text: bool,
}

/// Parses an XML string into a [`Document`] under the reserved `/` root.
pub fn parse_document(alphabet: &Alphabet, src: &str) -> Result<Document, XmlError> {
    parse_document_with(alphabet, src, ParseOptions::default())
}

/// [`parse_document`] with explicit options.
pub fn parse_document_with(
    alphabet: &Alphabet,
    src: &str,
    options: ParseOptions,
) -> Result<Document, XmlError> {
    let mut doc = Document::new(alphabet.clone());
    let root = doc.root();
    let mut p = XmlParser::new(src, options);
    p.skip_misc();
    let mut top_count = 0;
    while !p.at_end() {
        if p.peek_is(b'<') {
            p.parse_element(&mut doc, root)?;
            top_count += 1;
            p.skip_misc();
        } else {
            return Err(p.err("unexpected content outside the top-level element"));
        }
    }
    if top_count == 0 {
        return Err(XmlError {
            position: src.len(),
            message: "no top-level element".into(),
        });
    }
    Ok(doc)
}

pub(crate) struct XmlParser<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) src: &'a str,
    pub(crate) pos: usize,
    pub(crate) options: ParseOptions,
}

impl<'a> XmlParser<'a> {
    pub(crate) fn new(src: &'a str, options: ParseOptions) -> XmlParser<'a> {
        XmlParser {
            bytes: src.as_bytes(),
            src,
            pos: 0,
            options,
        }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub(crate) fn peek_is(&self, b: u8) -> bool {
        self.peek() == Some(b)
    }

    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            position: self.pos,
            message: message.into(),
        }
    }

    pub(crate) fn skip_ws(&mut self) {
        while self
            .peek()
            .map(|b| b.is_ascii_whitespace())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs and DOCTYPE between top-level items.
    pub(crate) fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                if let Some(end) = self.src[self.pos..].find("?>") {
                    self.pos += end + 2;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with("<!--") {
                if let Some(end) = self.src[self.pos..].find("-->") {
                    self.pos += end + 3;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>', tolerating an internal subset.
                let mut depth = 0usize;
                while let Some(b) = self.peek() {
                    self.pos += 1;
                    match b {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                continue;
            }
            return;
        }
    }

    pub(crate) fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    pub(crate) fn expect(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek_is(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_element(&mut self, doc: &mut Document, parent: NodeId) -> Result<NodeId, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let elem = doc.add_element(parent, doc.alphabet().intern(&name));
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(elem);
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .filter(|&b| b == b'"' || b == b'\'')
                        .ok_or_else(|| self.err("expected quoted attribute value"))?;
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.at_end() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = &self.src[start..self.pos];
                    self.pos += 1; // closing quote
                    let value = unescape(raw).map_err(|m| self.err(m))?;
                    let label = doc.alphabet().intern(&format!("@{attr_name}"));
                    doc.add_attribute(elem, label, &value);
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!("mismatched close tag </{close}> for <{name}>")));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(elem);
            }
            if self.starts_with("<!--") {
                match self.src[self.pos..].find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                match self.src[self.pos..].find("]]>") {
                    Some(end) => {
                        let text = &self.src[self.pos..self.pos + end];
                        doc.add_text(elem, text);
                        self.pos += end + 3;
                    }
                    None => return Err(self.err("unterminated CDATA section")),
                }
                continue;
            }
            if self.starts_with("<?") {
                match self.src[self.pos..].find("?>") {
                    Some(end) => self.pos += end + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    self.parse_element(doc, elem)?;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = &self.src[start..self.pos];
                    let text = unescape(raw).map_err(|m| self.err(m))?;
                    if self.options.keep_whitespace_text || !text.chars().all(char::is_whitespace) {
                        doc.add_text(elem, &text);
                    }
                }
                None => return Err(self.err(format!("unterminated element <{name}>"))),
            }
        }
    }
}

/// Decodes the predefined entities and numeric character references.
pub(crate) fn unescape(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_string())?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid code point &{entity};"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid code point &{entity};"))?,
                );
            }
            _ => return Err(format!("unknown entity &{entity};")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_elements_attributes_text() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            r#"<session date="2009-06"><candidate IDN="78"><level>B</level></candidate></session>"#,
        )
        .unwrap();
        assert!(doc.check_well_formed().is_ok());
        let session = doc.children(doc.root())[0];
        assert_eq!(doc.label_name(session).as_ref(), "session");
        let kids = doc.children(session);
        assert_eq!(doc.label_name(kids[0]).as_ref(), "@date");
        assert_eq!(doc.value(kids[0]), Some("2009-06"));
        let cand = kids[1];
        let level = doc.children(cand)[1];
        let text = doc.children(level)[0];
        assert_eq!(doc.value(text), Some("B"));
    }

    #[test]
    fn self_closing_and_whitespace() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<r>\n  <leaf/>\n  <leaf/>\n</r>").unwrap();
        let r = doc.children(doc.root())[0];
        assert_eq!(doc.children(r).len(), 2);
        let kept = parse_document_with(
            &a,
            "<r> <leaf/> </r>",
            ParseOptions {
                keep_whitespace_text: true,
            },
        )
        .unwrap();
        let r2 = kept.children(kept.root())[0];
        assert_eq!(kept.children(r2).len(), 3);
    }

    #[test]
    fn entities_and_char_refs() {
        let a = Alphabet::new();
        let doc = parse_document(&a, r#"<t a="&lt;x&gt;">&amp;&#65;&#x42;</t>"#).unwrap();
        let t = doc.children(doc.root())[0];
        let kids = doc.children(t);
        assert_eq!(doc.value(kids[0]), Some("<x>"));
        assert_eq!(doc.value(kids[1]), Some("&AB"));
    }

    #[test]
    fn prolog_comments_doctype_skipped() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            "<?xml version=\"1.0\"?><!DOCTYPE session [<!ELEMENT x (y)>]><!-- hi --><session><!-- inner --></session>",
        )
        .unwrap();
        let session = doc.children(doc.root())[0];
        assert_eq!(doc.label_name(session).as_ref(), "session");
        assert_eq!(doc.children(session).len(), 0);
    }

    #[test]
    fn cdata_sections() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<t><![CDATA[a <raw> & b]]></t>").unwrap();
        let t = doc.children(doc.root())[0];
        assert_eq!(doc.value(doc.children(t)[0]), Some("a <raw> & b"));
    }

    #[test]
    fn errors_are_reported() {
        let a = Alphabet::new();
        assert!(parse_document(&a, "").is_err());
        assert!(parse_document(&a, "<a><b></a></b>").is_err());
        assert!(parse_document(&a, "<a attr=oops></a>").is_err());
        assert!(parse_document(&a, "<a>&unknown;</a>").is_err());
        assert!(parse_document(&a, "<a>").is_err());
        assert!(parse_document(&a, "stray text").is_err());
    }

    #[test]
    fn multiple_top_level_elements_allowed() {
        // Our model's reserved root can host several top elements (the paper's
        // documents hang everything under '/').
        let a = Alphabet::new();
        let doc = parse_document(&a, "<a/><b/>").unwrap();
        assert_eq!(doc.children(doc.root()).len(), 2);
    }
}
