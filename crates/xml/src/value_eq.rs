//! Value equality (paper Definition 3) and canonical subtree hashing.
//!
//! Two nodes are value-equal (`=V`) when they carry the same label and type,
//! equal string values if they are attribute/text leaves, and — for element
//! nodes — have the same child positions with pairwise value-equal children.
//! In our model this is exactly: the rooted subtrees are isomorphic as
//! ordered labeled valued trees.
//!
//! FD satisfaction checking buckets condition images by a canonical 64-bit
//! hash of the rooted subtree ([`value_hash`]) and confirms candidate
//! collisions with the full structural comparison ([`value_eq`]).

use std::hash::{Hash, Hasher};

use regtree_alphabet::LabelKind;

use crate::model::{Document, NodeId};

/// Structural value equality of two rooted subtrees (possibly across
/// documents sharing an alphabet).
pub fn value_eq(da: &Document, a: NodeId, db: &Document, b: NodeId) -> bool {
    if da.label(a) != db.label(b) {
        return false;
    }
    // Same label ⇒ same kind (kind is a function of the label).
    if da.kind(a) != db.kind(b) {
        return false;
    }
    match da.kind(a) {
        LabelKind::Attribute | LabelKind::Text => da.value(a) == db.value(b),
        LabelKind::Element => {
            let ca = da.children(a);
            let cb = db.children(b);
            ca.len() == cb.len()
                && ca
                    .iter()
                    .zip(cb.iter())
                    .all(|(&x, &y)| value_eq(da, x, db, y))
        }
    }
}

/// Value equality within one document.
pub fn value_eq_in(doc: &Document, a: NodeId, b: NodeId) -> bool {
    value_eq(doc, a, doc, b)
}

/// Canonical hash of a rooted subtree, consistent with [`value_eq`]:
/// `value_eq(a, b) ⇒ value_hash(a) == value_hash(b)`.
pub fn value_hash(doc: &Document, n: NodeId) -> u64 {
    let mut h = Fnv1a::new();
    hash_subtree(doc, n, &mut h);
    h.finish()
}

fn hash_subtree(doc: &Document, n: NodeId, h: &mut Fnv1a) {
    doc.label(n).0.hash(h);
    match doc.value(n) {
        Some(v) => {
            1u8.hash(h);
            v.hash(h);
        }
        None => 0u8.hash(h),
    }
    let children = doc.children(n);
    children.len().hash(h);
    for &c in children {
        hash_subtree(doc, c, h);
    }
}

/// Small, fast, deterministic FNV-1a hasher (stable across runs, unlike the
/// std `DefaultHasher` whose seeding is unspecified between processes).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// New hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// A hashable key for “the value class of this subtree”, pairing the hash
/// with the (document, node) needed for confirmation.
#[derive(Clone, Copy, Debug)]
pub struct ValueKey {
    /// Canonical subtree hash.
    pub hash: u64,
    /// The keyed node.
    pub node: NodeId,
}

impl ValueKey {
    /// Computes the key of `n` in `doc`.
    pub fn of(doc: &Document, n: NodeId) -> ValueKey {
        ValueKey {
            hash: value_hash(doc, n),
            node: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{document_from_specs, TreeSpec};
    use regtree_alphabet::Alphabet;

    fn doc_with(a: &Alphabet, specs: &[TreeSpec]) -> Document {
        document_from_specs(a.clone(), specs)
    }

    fn exam(a: &Alphabet, disc: &str, mark: &str) -> TreeSpec {
        TreeSpec::elem_named(
            a,
            "exam",
            vec![
                TreeSpec::elem_named(a, "discipline", vec![TreeSpec::text(disc)]),
                TreeSpec::elem_named(a, "mark", vec![TreeSpec::text(mark)]),
            ],
        )
    }

    #[test]
    fn equal_subtrees_are_value_equal() {
        let a = Alphabet::new();
        let d = doc_with(&a, &[exam(&a, "math", "15"), exam(&a, "math", "15")]);
        let kids = d.children(d.root());
        assert!(value_eq_in(&d, kids[0], kids[1]));
        assert_eq!(value_hash(&d, kids[0]), value_hash(&d, kids[1]));
    }

    #[test]
    fn differing_values_break_equality() {
        let a = Alphabet::new();
        let d = doc_with(&a, &[exam(&a, "math", "15"), exam(&a, "math", "12")]);
        let kids = d.children(d.root());
        assert!(!value_eq_in(&d, kids[0], kids[1]));
    }

    #[test]
    fn differing_structure_breaks_equality() {
        let a = Alphabet::new();
        let short = TreeSpec::elem_named(
            &a,
            "exam",
            vec![TreeSpec::elem_named(
                &a,
                "discipline",
                vec![TreeSpec::text("math")],
            )],
        );
        let d = doc_with(&a, &[exam(&a, "math", "15"), short]);
        let kids = d.children(d.root());
        assert!(!value_eq_in(&d, kids[0], kids[1]));
    }

    #[test]
    fn child_order_matters() {
        let a = Alphabet::new();
        let swapped = TreeSpec::elem_named(
            &a,
            "exam",
            vec![
                TreeSpec::elem_named(&a, "mark", vec![TreeSpec::text("15")]),
                TreeSpec::elem_named(&a, "discipline", vec![TreeSpec::text("math")]),
            ],
        );
        let d = doc_with(&a, &[exam(&a, "math", "15"), swapped]);
        let kids = d.children(d.root());
        assert!(!value_eq_in(&d, kids[0], kids[1]));
    }

    #[test]
    fn equality_across_documents() {
        let a = Alphabet::new();
        let d1 = doc_with(&a, &[exam(&a, "bio", "9")]);
        let d2 = doc_with(&a, &[exam(&a, "bio", "9")]);
        let n1 = d1.children(d1.root())[0];
        let n2 = d2.children(d2.root())[0];
        assert!(value_eq(&d1, n1, &d2, n2));
        assert_eq!(value_hash(&d1, n1), value_hash(&d2, n2));
    }

    #[test]
    fn value_equality_is_equivalence_on_sample() {
        let a = Alphabet::new();
        let d = doc_with(
            &a,
            &[
                exam(&a, "math", "15"),
                exam(&a, "math", "15"),
                exam(&a, "bio", "9"),
            ],
        );
        let nodes = d.all_nodes();
        // Reflexive.
        for &n in &nodes {
            assert!(value_eq_in(&d, n, n));
        }
        // Symmetric + transitive over all pairs/triples of top subtrees.
        let kids = d.children(d.root()).to_vec();
        for &x in &kids {
            for &y in &kids {
                assert_eq!(value_eq_in(&d, x, y), value_eq_in(&d, y, x));
                for &z in &kids {
                    if value_eq_in(&d, x, y) && value_eq_in(&d, y, z) {
                        assert!(value_eq_in(&d, x, z));
                    }
                }
            }
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let a = Alphabet::new();
        let d = doc_with(&a, &[exam(&a, "math", "15")]);
        let n = d.children(d.root())[0];
        assert_eq!(value_hash(&d, n), value_hash(&d, n));
    }
}
