//! XML document model for `regtree` (paper Section 2.1).
//!
//! Documents are unranked ordered labeled trees over a shared
//! [`regtree_alphabet::Alphabet`]: element nodes internally, attribute/text
//! leaves carrying string values, and a reserved `/` root. The crate
//! provides:
//!
//! * [`Document`]/[`NodeId`] — the arena tree with Dewey positions, document
//!   order and ancestor queries;
//! * [`TreeSpec`] — owned subtree values used as update payloads;
//! * [`parse_document`]/[`to_xml`] — a from-scratch XML subset parser and
//!   serializer;
//! * [`value_eq()`](value_eq())/[`value_hash`] — Definition 3 value equality and the
//!   canonical hash FD checking buckets by;
//! * [`edit`] — subtree replacement (the paper's primitive update), plus
//!   insert/delete/set-value conveniences;
//! * [`stream_document`] — one-pass streaming ingest fusing parsing, label
//!   indexing and a caller-supplied open/close observer;
//! * [`VersionedDocument`]/[`UndoJournal`] — in-place delta edits with an
//!   incrementally maintained index, and clone-free undo.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod edit;
pub mod index;
pub mod model;
pub mod parse;
pub mod serialize;
pub mod spec;
pub mod stream;
pub mod value_eq;
pub mod versioned;

pub use edit::{delete_subtree, insert_child, replace_subtree, set_value, EditError};
pub use index::{label_mask, LabelIndex};
pub use model::{DocStats, Document, NodeId};
pub use parse::{parse_document, parse_document_with, ParseOptions, XmlError};
pub use serialize::{subtree_to_xml, to_xml, to_xml_with, SerializeOptions};
pub use spec::{document_from_specs, TreeSpec};
pub use stream::{stream_document, stream_document_with, NullSink, StreamError, StreamSink};
pub use value_eq::{value_eq, value_eq_in, value_hash, ValueKey};
pub use versioned::{Delta, UndoJournal, VersionedDocument};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regtree_alphabet::Alphabet;

    fn test_alphabet() -> Alphabet {
        Alphabet::with_labels(["e0", "e1", "e2", "@a0", "@a1"])
    }

    fn arb_spec() -> impl Strategy<Value = TreeSpec> {
        // Symbols: 2..=4 are elements e0..e2, 5..=6 attributes, TEXT = 1.
        let leaf = prop_oneof![
            (5u32..7, "[a-z]{0,3}").prop_map(|(s, v)| TreeSpec {
                label: regtree_alphabet::Symbol(s),
                value: Some(std::sync::Arc::from(v.as_str())),
                children: vec![],
            }),
            // Text must be non-empty: empty/whitespace-only text nodes do not
            // survive an XML round trip by design.
            "[a-z]{1,3}".prop_map(|v| TreeSpec::text(&v)),
            (2u32..5).prop_map(|s| TreeSpec::elem(regtree_alphabet::Symbol(s), vec![])),
        ];
        leaf.prop_recursive(4, 32, 4, |inner| {
            ((2u32..5), prop::collection::vec(inner, 0..4)).prop_map(|(s, mut children)| {
                // XML convention: attribute children precede element/text
                // children (their interleaving cannot survive serialization).
                children.sort_by_key(|c| !matches!(c.label.0, 5 | 6));
                // Adjacent text siblings merge during an XML round trip;
                // normalize the generated tree the same way.
                let mut merged: Vec<TreeSpec> = Vec::with_capacity(children.len());
                for c in children {
                    if c.label == regtree_alphabet::Alphabet::TEXT {
                        if let Some(prev) = merged.last_mut() {
                            if prev.label == regtree_alphabet::Alphabet::TEXT {
                                let combined = format!(
                                    "{}{}",
                                    prev.value.as_deref().unwrap_or(""),
                                    c.value.as_deref().unwrap_or("")
                                );
                                prev.value = Some(std::sync::Arc::from(combined.as_str()));
                                continue;
                            }
                        }
                    }
                    merged.push(c);
                }
                let children = merged;
                TreeSpec::elem(regtree_alphabet::Symbol(s), children)
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Instantiating a spec and extracting it back is the identity.
        #[test]
        fn spec_document_round_trip(spec in arb_spec()) {
            let a = test_alphabet();
            prop_assume!(spec.check(&a).is_ok());
            let doc = document_from_specs(a, std::slice::from_ref(&spec));
            prop_assert!(doc.check_well_formed().is_ok());
            let top = doc.children(doc.root())[0];
            prop_assert_eq!(TreeSpec::from_document(&doc, top), spec);
        }

        /// Serialize → parse preserves value equality (whitespace-free values).
        #[test]
        fn xml_round_trip(spec in arb_spec()) {
            let a = test_alphabet();
            prop_assume!(spec.check(&a).is_ok());
            // Top-level text/attribute leaves don't serialize standalone; wrap.
            let wrapped = TreeSpec::elem_named(&a, "wrap", vec![spec]);
            let doc = document_from_specs(a.clone(), &[wrapped]);
            let xml = to_xml(&doc);
            let back = parse_document(&a, &xml).unwrap();
            prop_assert!(value_eq(&doc, doc.root(), &back, back.root()), "xml: {}", xml);
        }

        /// Document order is a strict total order consistent with preorder.
        #[test]
        fn doc_order_total(spec in arb_spec()) {
            let a = test_alphabet();
            prop_assume!(spec.check(&a).is_ok());
            let doc = document_from_specs(a, &[spec]);
            let nodes = doc.all_nodes();
            for (i, &x) in nodes.iter().enumerate() {
                for (j, &y) in nodes.iter().enumerate() {
                    let expected = i.cmp(&j);
                    prop_assert_eq!(doc.doc_order(x, y), expected);
                }
            }
        }

        /// Replacing a subtree with its own extracted spec is value-neutral.
        #[test]
        fn self_replacement_is_identity(spec in arb_spec(), pick in any::<prop::sample::Index>()) {
            let a = test_alphabet();
            prop_assume!(spec.check(&a).is_ok());
            let wrapped = TreeSpec::elem_named(&a, "wrap", vec![spec]);
            let mut doc = document_from_specs(a, &[wrapped]);
            let before = value_hash(&doc, doc.root());
            let candidates: Vec<NodeId> = doc
                .all_nodes()
                .into_iter()
                .filter(|&n| n != doc.root())
                .collect();
            let target = candidates[pick.index(candidates.len())];
            let extracted = TreeSpec::from_document(&doc, target);
            edit::replace_subtree(&mut doc, target, &extracted).unwrap();
            prop_assert!(doc.check_well_formed().is_ok());
            prop_assert_eq!(value_hash(&doc, doc.root()), before);
        }

        /// value_hash is consistent with value_eq across random pairs.
        #[test]
        fn hash_consistent_with_eq(s1 in arb_spec(), s2 in arb_spec()) {
            let a = test_alphabet();
            prop_assume!(s1.check(&a).is_ok() && s2.check(&a).is_ok());
            let d = document_from_specs(a.clone(), &[
                TreeSpec::elem_named(&a, "wrap", vec![s1]),
                TreeSpec::elem_named(&a, "wrap", vec![s2]),
            ]);
            let tops = d.children(d.root()).to_vec();
            let eq = value_eq_in(&d, tops[0], tops[1]);
            let hash_eq = value_hash(&d, tops[0]) == value_hash(&d, tops[1]);
            if eq {
                prop_assert!(hash_eq);
            }
            // (hash collisions for unequal trees are possible but must be
            // resolved by value_eq — nothing to assert in that direction)
        }

        /// Deleting then compacting leaves a well-formed document with the
        /// expected node count.
        #[test]
        fn delete_compact_invariants(spec in arb_spec(), pick in any::<prop::sample::Index>()) {
            let a = test_alphabet();
            prop_assume!(spec.check(&a).is_ok());
            let wrapped = TreeSpec::elem_named(&a, "wrap", vec![spec]);
            let mut doc = document_from_specs(a, &[wrapped]);
            let non_root: Vec<NodeId> = doc
                .all_nodes()
                .into_iter()
                .filter(|&n| n != doc.root())
                .collect();
            let target = non_root[pick.index(non_root.len())];
            let removed = doc.descendants_or_self(target).len();
            let before = doc.len();
            edit::delete_subtree(&mut doc, target).unwrap();
            prop_assert_eq!(doc.len(), before - removed);
            doc.compact();
            prop_assert_eq!(doc.arena_len(), before - removed);
            prop_assert!(doc.check_well_formed().is_ok());
        }
    }
}
