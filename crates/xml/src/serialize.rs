//! XML serialization of the document model.
//!
//! Attribute-labeled leaf children render as XML attributes; text leaves as
//! character data; the reserved `/` root is implicit. Round-trips with
//! [`crate::parse`] up to whitespace normalization.

use std::fmt::Write as _;

use regtree_alphabet::LabelKind;

use crate::model::{Document, NodeId};

/// Serialization configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerializeOptions {
    /// Pretty-print with two-space indentation.
    pub indent: bool,
}

/// Serializes the whole document (children of the reserved root).
pub fn to_xml(doc: &Document) -> String {
    to_xml_with(doc, SerializeOptions::default())
}

/// Serializes with explicit options.
pub fn to_xml_with(doc: &Document, options: SerializeOptions) -> String {
    let mut out = String::new();
    for &child in doc.children(doc.root()) {
        write_node(doc, child, &mut out, options, 0);
        if options.indent {
            out.push('\n');
        }
    }
    out
}

/// Serializes the subtree rooted at `n`.
pub fn subtree_to_xml(doc: &Document, n: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, n, &mut out, SerializeOptions::default(), 0);
    out
}

fn write_node(
    doc: &Document,
    n: NodeId,
    out: &mut String,
    options: SerializeOptions,
    depth: usize,
) {
    match doc.kind(n) {
        LabelKind::Text => {
            indent(out, options, depth);
            out.push_str(&escape_text(doc.value(n).unwrap_or("")));
        }
        LabelKind::Attribute => {
            // A free-standing attribute leaf (detached from an element
            // context) renders as a pseudo-element for visibility.
            indent(out, options, depth);
            let name = doc.label_name(n);
            let _ = write!(
                out,
                "<attribute name=\"{}\" value=\"{}\"/>",
                escape_attr(&name[1..]),
                escape_attr(doc.value(n).unwrap_or(""))
            );
        }
        LabelKind::Element => {
            let name = doc.label_name(n);
            indent(out, options, depth);
            let _ = write!(out, "<{name}");
            let mut content: Vec<NodeId> = Vec::new();
            for &c in doc.children(n) {
                if doc.kind(c) == LabelKind::Attribute {
                    let aname = doc.label_name(c);
                    let _ = write!(
                        out,
                        " {}=\"{}\"",
                        &aname[1..],
                        escape_attr(doc.value(c).unwrap_or(""))
                    );
                } else {
                    content.push(c);
                }
            }
            if content.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                let only_text = content.len() == 1 && doc.kind(content[0]) == LabelKind::Text;
                if only_text {
                    out.push_str(&escape_text(doc.value(content[0]).unwrap_or("")));
                } else {
                    if options.indent {
                        out.push('\n');
                    }
                    for &c in &content {
                        write_node(doc, c, out, options, depth + 1);
                        if options.indent {
                            out.push('\n');
                        }
                    }
                    indent(out, options, depth);
                }
                let _ = write!(out, "</{name}>");
            }
        }
    }
}

fn indent(out: &mut String, options: SerializeOptions, depth: usize) {
    if options.indent {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            other => out.push(other),
        }
    }
    out
}

fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;
    use crate::value_eq::value_eq;
    use regtree_alphabet::Alphabet;

    #[test]
    fn serialize_basic() {
        let a = Alphabet::new();
        let doc = parse_document(&a, r#"<s d="1"><c IDN="78"><level>B</level></c></s>"#).unwrap();
        let xml = to_xml(&doc);
        assert_eq!(xml, r#"<s d="1"><c IDN="78"><level>B</level></c></s>"#);
    }

    #[test]
    fn round_trip_preserves_value_equality() {
        let a = Alphabet::new();
        let src = r#"<session date="2009"><candidate IDN="78"><exam><discipline>math</discipline><mark>15</mark></exam></candidate></session>"#;
        let d1 = parse_document(&a, src).unwrap();
        let xml = to_xml(&d1);
        let d2 = parse_document(&a, &xml).unwrap();
        assert!(value_eq(&d1, d1.root(), &d2, d2.root()));
    }

    #[test]
    fn escaping_round_trip() {
        let a = Alphabet::new();
        let mut doc = crate::model::Document::new(a.clone());
        let root = doc.root();
        let e = doc.add_element(root, a.intern("e"));
        doc.add_attribute(e, a.intern("@q"), "a\"<&>b");
        doc.add_text(e, "x < y & z");
        let xml = to_xml(&doc);
        let back = parse_document(&a, &xml).unwrap();
        assert!(value_eq(&doc, doc.root(), &back, back.root()));
    }

    #[test]
    fn pretty_printing_indents() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<r><x><y/></x></r>").unwrap();
        let pretty = to_xml_with(&doc, SerializeOptions { indent: true });
        assert!(pretty.contains("\n  <x>"));
        assert!(pretty.contains("\n    <y/>"));
        // Reparsing the pretty output yields the same tree (whitespace text
        // dropped by default).
        let back = parse_document(&a, &pretty).unwrap();
        assert!(value_eq(&doc, doc.root(), &back, back.root()));
    }

    #[test]
    fn subtree_serialization() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<r><x>1</x><y>2</y></r>").unwrap();
        let r = doc.children(doc.root())[0];
        let y = doc.children(r)[1];
        assert_eq!(subtree_to_xml(&doc, y), "<y>2</y>");
    }

    #[test]
    fn empty_elements_self_close() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<r><empty></empty></r>").unwrap();
        assert_eq!(to_xml(&doc), "<r><empty/></r>");
    }
}
