//! Per-document label index used to prune pattern evaluation.
//!
//! Candidate search walks document subtrees looking for nodes whose root
//! path matches an edge automaton. Most subtrees cannot possibly contain a
//! match: the automaton's accepting transitions only fire on a handful of
//! labels, and many subtrees contain none of them. The index precomputes,
//! in one pass over the document:
//!
//! * `label → nodes` occurrence lists (document order), and
//! * a per-node 64-bit Bloom mask of all labels in the node's subtree.
//!
//! A mask test `subtree_mask(n) & label_mask(l) == 0` proves label `l` does
//! not occur under `n` (one-sided: collisions on `sym % 64` may report a
//! phantom occurrence, never miss a real one), letting evaluation skip the
//! whole subtree without visiting it.

use std::collections::HashMap;

use regtree_alphabet::Symbol;

use crate::model::{Document, NodeId};

/// Bloom bit for a label symbol (bit position `sym % 64`).
#[inline]
pub fn label_mask(sym: Symbol) -> u64 {
    1u64 << (sym.0 % 64)
}

/// Precomputed occurrence lists and subtree label masks for one document.
///
/// The index is a snapshot: it is invalidated by any mutation of the
/// document and must be rebuilt after edits — unless the edits go through
/// [`crate::VersionedDocument`], which maintains it incrementally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelIndex {
    /// Occurrences of each label, in document order.
    by_label: HashMap<Symbol, Vec<NodeId>>,
    /// Bloom mask of labels in each node's subtree, indexed by arena slot.
    subtree: Vec<u64>,
}

impl LabelIndex {
    /// Builds the index in a single preorder pass plus a reverse sweep.
    pub fn build(doc: &Document) -> LabelIndex {
        let mut by_label: HashMap<Symbol, Vec<NodeId>> = HashMap::new();
        let mut subtree = vec![0u64; doc.arena_len()];
        // `all_nodes` is preorder, so parents precede children; sweeping in
        // reverse folds each node's mask into its parent exactly once.
        let order = doc.all_nodes();
        for &n in &order {
            by_label.entry(doc.label(n)).or_default().push(n);
            subtree[n.index()] = label_mask(doc.label(n));
        }
        for &n in order.iter().rev() {
            if let Some(p) = doc.parent(n) {
                subtree[p.index()] |= subtree[n.index()];
            }
        }
        LabelIndex { by_label, subtree }
    }

    /// Nodes labeled `sym`, in document order (empty if the label is absent).
    pub fn nodes_with_label(&self, sym: Symbol) -> &[NodeId] {
        self.by_label.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// Number of occurrences of `sym`.
    pub fn count(&self, sym: Symbol) -> usize {
        self.nodes_with_label(sym).len()
    }

    /// Bloom mask of all labels occurring in the subtree rooted at `n`
    /// (including `n` itself).
    pub fn subtree_mask(&self, n: NodeId) -> u64 {
        self.subtree[n.index()]
    }

    /// May the subtree of `n` contain a node labeled `sym`?
    ///
    /// `false` is definitive; `true` may be a Bloom collision.
    pub fn subtree_may_contain(&self, n: NodeId, sym: Symbol) -> bool {
        self.subtree[n.index()] & label_mask(sym) != 0
    }

    /// May the subtree of `n` contain any label from `mask`
    /// (a union of [`label_mask`] bits)?
    pub fn subtree_may_intersect(&self, n: NodeId, mask: u64) -> bool {
        self.subtree[n.index()] & mask != 0
    }

    // ---- incremental maintenance (streaming ingest & versioned edits) ----

    /// Assembles an index from raw parts (the streaming ingest path, which
    /// builds both structures in its single pass).
    pub(crate) fn from_raw(
        by_label: HashMap<Symbol, Vec<NodeId>>,
        subtree: Vec<u64>,
    ) -> LabelIndex {
        LabelIndex { by_label, subtree }
    }

    /// Grows the mask table to cover `len` arena slots (new slots zeroed).
    pub(crate) fn ensure_slots(&mut self, len: usize) {
        if self.subtree.len() < len {
            self.subtree.resize(len, 0);
        }
    }

    /// Overwrites the subtree mask of `n`.
    pub(crate) fn set_mask(&mut self, n: NodeId, mask: u64) {
        self.subtree[n.index()] = mask;
    }

    /// ORs `mask` into the subtree mask of `n`.
    pub(crate) fn or_mask(&mut self, n: NodeId, mask: u64) {
        self.subtree[n.index()] |= mask;
    }

    /// Inserts `n` into its label's occurrence list at its document-order
    /// position. `n` must already be attached to `doc`.
    pub(crate) fn insert_occurrence(&mut self, doc: &Document, n: NodeId) {
        let list = self.by_label.entry(doc.label(n)).or_default();
        let at = list
            .binary_search_by(|&m| doc.doc_order(m, n))
            .unwrap_or_else(|i| i);
        if list.get(at) != Some(&n) {
            list.insert(at, n);
        }
    }

    /// Removes `n` from its label's occurrence list. Must be called while
    /// `n` is still attached (document order still well defined).
    pub(crate) fn remove_occurrence(&mut self, doc: &Document, n: NodeId) {
        if let Some(list) = self.by_label.get_mut(&doc.label(n)) {
            match list.binary_search_by(|&m| doc.doc_order(m, n)) {
                Ok(at) => {
                    list.remove(at);
                }
                Err(_) => {
                    // Defensive: fall back to a linear scan if the order
                    // probe misses (should not happen while `n` is attached).
                    if let Some(at) = list.iter().position(|&m| m == n) {
                        list.remove(at);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_alphabet::Alphabet;

    fn doc() -> (Alphabet, Document) {
        let a = Alphabet::new();
        let mut d = Document::new(a.clone());
        let rec = a.intern("rec");
        let key = a.intern("key");
        let r1 = d.add_element(d.root(), rec);
        d.add_attribute(r1, a.intern("@id"), "1");
        let k1 = d.add_element(r1, key);
        d.add_text(k1, "k");
        let r2 = d.add_element(d.root(), rec);
        d.add_element(r2, a.intern("val"));
        (a, d)
    }

    #[test]
    fn occurrence_lists_in_doc_order() {
        let (a, d) = doc();
        let idx = LabelIndex::build(&d);
        let recs = idx.nodes_with_label(a.intern("rec"));
        assert_eq!(recs.len(), 2);
        assert!(d.doc_order(recs[0], recs[1]).is_lt());
        assert_eq!(idx.count(a.intern("key")), 1);
        assert_eq!(idx.count(a.intern("ghost")), 0);
    }

    #[test]
    fn subtree_masks_cover_descendants() {
        let (a, d) = doc();
        let idx = LabelIndex::build(&d);
        let key = a.intern("key");
        let val = a.intern("val");
        let recs = idx.nodes_with_label(a.intern("rec"));
        // key occurs under rec #1 only; val under rec #2 only.
        assert!(idx.subtree_may_contain(recs[0], key));
        assert!(idx.subtree_may_contain(recs[1], val));
        assert!(idx.subtree_may_contain(d.root(), key));
        // Definitive negatives hold when the bits differ.
        if label_mask(val) != label_mask(key) {
            assert!(!idx.subtree_may_contain(recs[0], val));
        }
        let both = label_mask(key) | label_mask(val);
        assert!(idx.subtree_may_intersect(d.root(), both));
    }

    #[test]
    fn masks_track_text_and_attributes() {
        let (a, d) = doc();
        let idx = LabelIndex::build(&d);
        assert!(idx.subtree_may_contain(d.root(), Alphabet::TEXT));
        assert!(idx.subtree_may_contain(d.root(), a.intern("@id")));
        assert_eq!(idx.count(Alphabet::TEXT), 1);
    }
}
