//! The unranked ordered tree model of XML documents (paper Section 2.1).
//!
//! A document is a tree over a label alphabet `Σ = EL ∪ A ∪ {#text}`:
//! internal nodes are *element* nodes; leaves are element, *attribute* or
//! *text* nodes, the latter two carrying a string value. Node positions form
//! a tree domain (Dewey words over `ℕ`); the root carries the reserved label
//! `/`.
//!
//! Nodes live in an arena ([`Document`]) and are addressed by stable
//! [`NodeId`]s. Edits (crate module [`crate::edit`]) detach/attach subtrees
//! in place; detached nodes stay in the arena as tombstones until
//! [`Document::compact`].

use std::cmp::Ordering;
use std::sync::Arc;

use regtree_alphabet::{Alphabet, LabelKind, Symbol};

/// Stable handle to a node in a [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One arena slot.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub label: Symbol,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// `Some` for attribute/text leaves, `None` for element nodes
    /// (the paper's valuation `val` is the identity on element nodes).
    pub value: Option<Arc<str>>,
    /// False once detached by an edit (tombstone).
    pub alive: bool,
    /// Cached index among the parent's children (kept in sync by the edit
    /// primitives so `child_index`/`dewey` are O(1)/O(depth) even on very
    /// wide nodes).
    pub pos: u32,
}

/// An XML document: an arena-backed unranked ordered labeled tree.
#[derive(Clone, Debug)]
pub struct Document {
    alphabet: Alphabet,
    pub(crate) nodes: Vec<Node>,
}

impl Document {
    /// Creates a document containing only the reserved `/` root.
    pub fn new(alphabet: Alphabet) -> Document {
        let root = Node {
            label: Alphabet::ROOT,
            parent: None,
            children: Vec::new(),
            value: None,
            alive: true,
            pos: 0,
        };
        Document {
            alphabet,
            nodes: vec![root],
        }
    }

    /// The alphabet this document's labels are interned in.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The root node id (always `NodeId(0)`, labeled `/`).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Label of `n`.
    pub fn label(&self, n: NodeId) -> Symbol {
        self.nodes[n.index()].label
    }

    /// Label text of `n`.
    pub fn label_name(&self, n: NodeId) -> Arc<str> {
        self.alphabet.name(self.label(n))
    }

    /// Node kind, derived from the label partition.
    pub fn kind(&self, n: NodeId) -> LabelKind {
        self.alphabet.kind(self.label(n))
    }

    /// String value of an attribute/text leaf (`None` on element nodes).
    pub fn value(&self, n: NodeId) -> Option<&str> {
        self.nodes[n.index()].value.as_deref()
    }

    /// Parent of `n` (`None` for the root or detached subtree roots).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// Ordered children of `n`.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// Is `n` still attached to the document tree (or its detached root)?
    pub fn is_alive(&self, n: NodeId) -> bool {
        self.nodes[n.index()].alive
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// True when the document holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes[0].children.is_empty()
    }

    /// Total arena slots (live + tombstones); used by tests.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    // ---- construction primitives (used by the builder & edit modules) ----

    pub(crate) fn push_node(
        &mut self,
        label: Symbol,
        parent: Option<NodeId>,
        value: Option<Arc<str>>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label,
            parent,
            children: Vec::new(),
            value,
            alive: true,
            pos: 0,
        });
        id
    }

    /// Appends `child` under `parent` (both must be in this arena).
    pub(crate) fn attach(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[child.index()].pos = self.nodes[parent.index()].children.len() as u32;
        self.nodes[parent.index()].children.push(child);
    }

    /// Re-numbers the cached sibling positions of `parent`'s children from
    /// `from` onwards (after a structural edit).
    pub(crate) fn renumber_children(&mut self, parent: NodeId, from: usize) {
        let children: Vec<NodeId> = self.nodes[parent.index()].children[from..].to_vec();
        for (offset, c) in children.into_iter().enumerate() {
            self.nodes[c.index()].pos = (from + offset) as u32;
        }
    }

    /// Creates and appends a fresh element child.
    pub fn add_element(&mut self, parent: NodeId, label: Symbol) -> NodeId {
        debug_assert_eq!(self.alphabet.kind(label), LabelKind::Element);
        let id = self.push_node(label, Some(parent), None);
        self.nodes[id.index()].pos = self.nodes[parent.index()].children.len() as u32;
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Creates and appends a fresh attribute child.
    pub fn add_attribute(&mut self, parent: NodeId, label: Symbol, value: &str) -> NodeId {
        debug_assert_eq!(self.alphabet.kind(label), LabelKind::Attribute);
        let id = self.push_node(label, Some(parent), Some(Arc::from(value)));
        self.nodes[id.index()].pos = self.nodes[parent.index()].children.len() as u32;
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Creates and appends a fresh text child.
    pub fn add_text(&mut self, parent: NodeId, value: &str) -> NodeId {
        let id = self.push_node(Alphabet::TEXT, Some(parent), Some(Arc::from(value)));
        self.nodes[id.index()].pos = self.nodes[parent.index()].children.len() as u32;
        self.nodes[parent.index()].children.push(id);
        id
    }

    // ---- structure queries ----

    /// The Dewey position of `n`: child indices from the root (empty for the
    /// root itself). This is the paper's tree-domain word.
    pub fn dewey(&self, n: NodeId) -> Vec<u32> {
        let mut path = Vec::new();
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            let idx = self.child_index(cur).expect("child listed under parent");
            path.push(idx as u32);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Dewey position rendered as `ε` or `0.2.1`.
    pub fn dewey_string(&self, n: NodeId) -> String {
        let d = self.dewey(n);
        if d.is_empty() {
            "ε".to_string()
        } else {
            d.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(".")
        }
    }

    /// Position of `n` among its parent's children (O(1), cached).
    pub fn child_index(&self, n: NodeId) -> Option<usize> {
        self.parent(n)?;
        let pos = self.nodes[n.index()].pos as usize;
        debug_assert_eq!(
            self.parent(n)
                .map(|p| self.children(p).get(pos) == Some(&n)),
            Some(true),
            "cached sibling position out of sync"
        );
        Some(pos)
    }

    /// Is `a` an ancestor of `b` (strict)?
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = self.parent(b);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Is `a` an ancestor of `b` or equal to it?
    pub fn is_ancestor_or_self(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.is_ancestor(a, b)
    }

    /// Total document order `<` (preorder; equivalently the paper's
    /// “descendant or following” order).
    pub fn doc_order(&self, a: NodeId, b: NodeId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let da = self.dewey(a);
        let db = self.dewey(b);
        // Lexicographic comparison; a prefix precedes its extensions
        // (ancestor before descendant).
        da.cmp(&db)
    }

    /// Depth of `n` (root = 0).
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Preorder traversal of the subtree rooted at `n` (including `n`).
    pub fn descendants_or_self(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in self.children(x).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Preorder traversal of the whole live tree.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.descendants_or_self(self.root())
    }

    /// Nodes of the subtree rooted at `n`, excluding `n`.
    pub fn descendants(&self, n: NodeId) -> Vec<NodeId> {
        let mut v = self.descendants_or_self(n);
        v.remove(0);
        v
    }

    /// The labels on the unique downward path from `from` to `to`, with
    /// `λ(from)` excluded and `λ(to)` included — exactly the word `λ(π_e)`
    /// matched against an edge expression in Definition 2.
    ///
    /// Returns `None` when `to` is not a strict descendant of `from`.
    pub fn labels_on_path(&self, from: NodeId, to: NodeId) -> Option<Vec<Symbol>> {
        let mut labels = Vec::new();
        let mut cur = to;
        loop {
            labels.push(self.label(cur));
            match self.parent(cur) {
                Some(p) if p == from => break,
                Some(p) => cur = p,
                None => return None,
            }
        }
        labels.reverse();
        Some(labels)
    }

    /// The child of `from` through which the path to its descendant `to`
    /// passes (used for the sibling-edge prefix-disjointness check).
    pub fn branch_child(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        let mut cur = to;
        loop {
            let p = self.parent(cur)?;
            if p == from {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// Simple size/shape statistics.
    pub fn stats(&self) -> DocStats {
        let mut stats = DocStats::default();
        for n in self.all_nodes() {
            stats.nodes += 1;
            stats.max_depth = stats.max_depth.max(self.depth(n));
            stats.max_fanout = stats.max_fanout.max(self.children(n).len());
            match self.kind(n) {
                LabelKind::Element => stats.elements += 1,
                LabelKind::Attribute => stats.attributes += 1,
                LabelKind::Text => stats.texts += 1,
            }
        }
        stats
    }

    /// Garbage-collects tombstoned nodes, renumbering ids.
    ///
    /// Returns the remapping table `old id -> new id` (dead nodes map to
    /// `None`).
    pub fn compact(&mut self) -> Vec<Option<NodeId>> {
        // Which nodes are reachable from the root?
        let mut reach = vec![false; self.nodes.len()];
        for n in self.all_nodes() {
            reach[n.index()] = true;
        }
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut new_nodes: Vec<Node> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if reach[i] && node.alive {
                remap[i] = Some(NodeId(new_nodes.len() as u32));
                new_nodes.push(node.clone());
            }
        }
        for node in &mut new_nodes {
            node.parent = node.parent.and_then(|p| remap[p.index()]);
            node.children = node
                .children
                .iter()
                .filter_map(|c| remap[c.index()])
                .collect();
        }
        self.nodes = new_nodes;
        // Rebuild the cached sibling positions.
        for i in 0..self.nodes.len() {
            let children = self.nodes[i].children.clone();
            for (pos, c) in children.into_iter().enumerate() {
                self.nodes[c.index()].pos = pos as u32;
            }
        }
        remap
    }

    /// Structural well-formedness: attribute/text nodes are leaves with
    /// values, element nodes carry no value, parent/child links agree, and
    /// the root is the reserved `/` element.
    pub fn check_well_formed(&self) -> Result<(), String> {
        if self.label(self.root()) != Alphabet::ROOT {
            return Err("root must carry the reserved '/' label".into());
        }
        for n in self.all_nodes() {
            let node = &self.nodes[n.index()];
            match self.kind(n) {
                LabelKind::Element => {
                    if node.value.is_some() {
                        return Err(format!(
                            "element node {} carries a value",
                            self.dewey_string(n)
                        ));
                    }
                }
                LabelKind::Attribute | LabelKind::Text => {
                    if !node.children.is_empty() {
                        return Err(format!(
                            "leaf-typed node {} has children",
                            self.dewey_string(n)
                        ));
                    }
                    if node.value.is_none() {
                        return Err(format!(
                            "attribute/text node {} has no value",
                            self.dewey_string(n)
                        ));
                    }
                }
            }
            for &c in &node.children {
                if self.parent(c) != Some(n) {
                    return Err(format!("child link mismatch at {}", self.dewey_string(n)));
                }
            }
        }
        Ok(())
    }
}

/// Size/shape statistics returned by [`Document::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DocStats {
    /// Total live nodes (including the root).
    pub nodes: usize,
    /// Element nodes.
    pub elements: usize,
    /// Attribute nodes.
    pub attributes: usize,
    /// Text nodes.
    pub texts: usize,
    /// Maximum depth.
    pub max_depth: usize,
    /// Maximum fanout.
    pub max_fanout: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, Vec<NodeId>) {
        let a = Alphabet::new();
        let mut d = Document::new(a.clone());
        let root = d.root();
        let s = d.add_element(root, a.intern("session"));
        let c1 = d.add_element(s, a.intern("candidate"));
        let idn = d.add_attribute(c1, a.intern("@IDN"), "78");
        let e1 = d.add_element(c1, a.intern("exam"));
        let disc = d.add_element(e1, a.intern("discipline"));
        let t = d.add_text(disc, "math");
        let c2 = d.add_element(s, a.intern("candidate"));
        (d, vec![root, s, c1, idn, e1, disc, t, c2])
    }

    #[test]
    fn construction_and_links() {
        let (d, ids) = sample();
        assert!(d.check_well_formed().is_ok());
        assert_eq!(d.parent(ids[1]), Some(ids[0]));
        assert_eq!(d.children(ids[1]), &[ids[2], ids[7]]);
        assert_eq!(d.value(ids[3]), Some("78"));
        assert_eq!(d.value(ids[6]), Some("math"));
        assert_eq!(d.value(ids[2]), None);
        assert_eq!(d.len(), 8);
    }

    #[test]
    fn dewey_positions() {
        let (d, ids) = sample();
        assert_eq!(d.dewey(ids[0]), Vec::<u32>::new());
        assert_eq!(d.dewey(ids[1]), vec![0]);
        assert_eq!(d.dewey(ids[2]), vec![0, 0]);
        assert_eq!(d.dewey(ids[7]), vec![0, 1]);
        assert_eq!(d.dewey(ids[6]), vec![0, 0, 1, 0, 0]);
        assert_eq!(d.dewey_string(ids[0]), "ε");
        assert_eq!(d.dewey_string(ids[6]), "0.0.1.0.0");
    }

    #[test]
    fn document_order_is_preorder() {
        let (d, ids) = sample();
        let all = d.all_nodes();
        assert_eq!(all[0], ids[0]);
        for w in all.windows(2) {
            assert_eq!(d.doc_order(w[0], w[1]), Ordering::Less);
            assert_eq!(d.doc_order(w[1], w[0]), Ordering::Greater);
        }
        assert_eq!(d.doc_order(ids[3], ids[3]), Ordering::Equal);
    }

    #[test]
    fn ancestry() {
        let (d, ids) = sample();
        assert!(d.is_ancestor(ids[0], ids[6]));
        assert!(d.is_ancestor(ids[2], ids[4]));
        assert!(!d.is_ancestor(ids[7], ids[6]));
        assert!(!d.is_ancestor(ids[6], ids[6]));
        assert!(d.is_ancestor_or_self(ids[6], ids[6]));
    }

    #[test]
    fn labels_on_path_matches_definition() {
        let (d, ids) = sample();
        let a = d.alphabet().clone();
        // session -> text under discipline: labels exclude 'session', include target.
        let labels = d.labels_on_path(ids[1], ids[6]).unwrap();
        let names: Vec<_> = labels.iter().map(|&s| a.name(s).to_string()).collect();
        assert_eq!(names, vec!["candidate", "exam", "discipline", "#text"]);
        assert_eq!(d.labels_on_path(ids[6], ids[1]), None);
        assert_eq!(d.labels_on_path(ids[6], ids[6]), None);
    }

    #[test]
    fn branch_child_identifies_divergence() {
        let (d, ids) = sample();
        assert_eq!(d.branch_child(ids[1], ids[6]), Some(ids[2]));
        assert_eq!(d.branch_child(ids[1], ids[7]), Some(ids[7]));
        assert_eq!(d.branch_child(ids[6], ids[1]), None);
    }

    #[test]
    fn stats_counts() {
        let (d, _) = sample();
        let s = d.stats();
        assert_eq!(s.nodes, 8);
        assert_eq!(s.attributes, 1);
        assert_eq!(s.texts, 1);
        assert_eq!(s.elements, 6);
        assert_eq!(s.max_depth, 5);
    }

    #[test]
    fn well_formedness_catches_violations() {
        let a = Alphabet::new();
        let mut d = Document::new(a.clone());
        let root = d.root();
        let attr = d.add_attribute(root, a.intern("@x"), "1");
        // Force a child under an attribute (bypassing the typed API).
        let child = d.push_node(a.intern("bogus"), Some(attr), None);
        d.nodes[attr.index()].children.push(child);
        assert!(d.check_well_formed().is_err());
    }

    #[test]
    fn depth_and_descendants() {
        let (d, ids) = sample();
        assert_eq!(d.depth(ids[0]), 0);
        assert_eq!(d.depth(ids[6]), 5);
        let desc = d.descendants_or_self(ids[2]);
        assert_eq!(desc, vec![ids[2], ids[3], ids[4], ids[5], ids[6]]);
        assert_eq!(d.descendants(ids[2]).len(), 4);
    }
}
