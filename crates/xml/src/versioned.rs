//! Versioned documents: delta edits with an incrementally maintained index.
//!
//! The naive update loop clones the whole tree per update
//! (`Update::apply_cloned` in `regtree-core`) and rebuilds the
//! [`LabelIndex`] from scratch before every recheck. A
//! [`VersionedDocument`] instead applies the `edit` primitives *in place*
//! and patches the index as it goes:
//!
//! * occurrence lists — detached nodes are removed (binary search by
//!   document order, while their position is still defined), inserted
//!   subtrees are spliced in at their document-order position;
//! * subtree Bloom masks — an inserted subtree's masks are computed
//!   bottom-up and OR-ed into every ancestor up to the root (dirty-path
//!   propagation). Deletions leave ancestor masks untouched: masks are
//!   one-sided (`may contain`), so an over-approximation stays sound — a
//!   phantom bit can cost a pruning opportunity, never a wrong answer.
//!
//! Each mutation bumps a version counter and is recorded in a [`Delta`]
//! (edit sites, detached/inserted subtree roots, touched value leaves, and
//! a Bloom mask over every touched label) that incremental FD checking
//! consumes to scope its rechecks.
//!
//! [`UndoJournal`] is the complementary primitive for *transient* in-place
//! application: it snapshots exactly the arena slots an edit mutates so the
//! pre-image can be restored without ever cloning the tree — the fix for
//! `revalidate_full_many`'s per-update full-document clone.

use std::collections::HashSet;

use crate::edit::{self, EditError};
use crate::index::{label_mask, LabelIndex};
use crate::model::{Document, Node, NodeId};
use crate::spec::TreeSpec;

/// What a batch of versioned edits touched, for impact-scoped rechecking.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// Parents of structural edit positions (the nodes whose child list
    /// changed), and value-edit leaves' parents.
    pub sites: Vec<NodeId>,
    /// Subtrees detached by deletes/replacements, as
    /// `(former parent, subtree root)`. The root's parent link is cleared
    /// on detach, so the pre-edit attachment point must be recorded here
    /// for consumers that need to locate the removal in the live tree.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Roots of subtrees grafted in by inserts/replacements.
    pub inserted: Vec<NodeId>,
    /// Attribute/text leaves whose string value changed in place.
    pub value_sites: Vec<NodeId>,
    /// Union of [`label_mask`] bits over every label the edits touched.
    pub dirty_mask: u64,
    /// True when an untracked mutation ran ([`VersionedDocument::apply_opaque`]):
    /// scoping information is unavailable and consumers must assume
    /// everything changed.
    pub opaque: bool,
}

impl Delta {
    /// No edits recorded?
    pub fn is_empty(&self) -> bool {
        !self.opaque
            && self.sites.is_empty()
            && self.removed.is_empty()
            && self.inserted.is_empty()
            && self.value_sites.is_empty()
    }

    fn merge_from(&mut self, other: Delta) {
        self.sites.extend(other.sites);
        self.removed.extend(other.removed);
        self.inserted.extend(other.inserted);
        self.value_sites.extend(other.value_sites);
        self.dirty_mask |= other.dirty_mask;
        self.opaque |= other.opaque;
    }
}

/// A [`Document`] whose [`LabelIndex`] is maintained across edits.
///
/// All mutation goes through the delta methods below (or
/// [`apply_opaque`](VersionedDocument::apply_opaque) for arbitrary surgery,
/// which falls back to an index rebuild). Accessors hand out shared
/// references only, so index and tree cannot drift apart.
#[derive(Clone, Debug)]
pub struct VersionedDocument {
    doc: Document,
    index: LabelIndex,
    version: u64,
    pending: Delta,
}

impl VersionedDocument {
    /// Wraps a document, building its index.
    pub fn new(doc: Document) -> VersionedDocument {
        let index = LabelIndex::build(&doc);
        VersionedDocument {
            doc,
            index,
            version: 0,
            pending: Delta::default(),
        }
    }

    /// Wraps a document with an index already built for it (the streaming
    /// ingest path — [`crate::stream_document`] returns both).
    pub fn from_parts(doc: Document, index: LabelIndex) -> VersionedDocument {
        debug_assert_eq!(index, LabelIndex::build(&doc), "index does not match doc");
        VersionedDocument {
            doc,
            index,
            version: 0,
            pending: Delta::default(),
        }
    }

    /// The current document.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// The maintained label index (masks may over-approximate after
    /// deletions; see the module docs).
    pub fn index(&self) -> &LabelIndex {
        &self.index
    }

    /// Monotone edit counter (bumped once per mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Takes the delta accumulated since the last call (or construction).
    pub fn take_delta(&mut self) -> Delta {
        std::mem::take(&mut self.pending)
    }

    /// Consumes the wrapper, returning the document.
    pub fn into_doc(self) -> Document {
        self.doc
    }

    fn ensure_editable(&self, n: NodeId) -> Result<NodeId, EditError> {
        if n == self.doc.root() {
            return Err(EditError::CannotEditRoot);
        }
        if !self.doc.is_alive(n) {
            return Err(EditError::Detached);
        }
        self.doc.parent(n).ok_or(EditError::Detached)
    }

    fn remove_subtree_occurrences(&mut self, n: NodeId) {
        for d in self.doc.descendants_or_self(n) {
            self.index.remove_occurrence(&self.doc, d);
        }
    }

    /// Indexes a freshly grafted subtree: occurrence lists, its own masks
    /// (bottom-up), and the dirty-path OR up to the root. Returns the
    /// subtree's mask.
    fn index_new_subtree(&mut self, new_root: NodeId) -> u64 {
        self.index.ensure_slots(self.doc.arena_len());
        let order = self.doc.descendants_or_self(new_root);
        for &d in &order {
            self.index.set_mask(d, label_mask(self.doc.label(d)));
            self.index.insert_occurrence(&self.doc, d);
        }
        for &d in order.iter().rev() {
            if d != new_root {
                let m = self.index.subtree_mask(d);
                let p = self.doc.parent(d).expect("subtree node has parent");
                self.index.or_mask(p, m);
            }
        }
        let mask = self.index.subtree_mask(new_root);
        let mut cur = self.doc.parent(new_root);
        while let Some(a) = cur {
            self.index.or_mask(a, mask);
            cur = self.doc.parent(a);
        }
        mask
    }

    /// [`edit::replace_subtree`] as a delta.
    pub fn replace_subtree(&mut self, n: NodeId, spec: &TreeSpec) -> Result<NodeId, EditError> {
        let parent = self.ensure_editable(n)?;
        spec.check(self.doc.alphabet())
            .map_err(EditError::BadSpec)?;
        let old_mask = self.index.subtree_mask(n);
        self.remove_subtree_occurrences(n);
        let new_root = edit::replace_subtree(&mut self.doc, n, spec)?;
        let new_mask = self.index_new_subtree(new_root);
        self.pending.sites.push(parent);
        self.pending.removed.push((parent, n));
        self.pending.inserted.push(new_root);
        self.pending.dirty_mask |= old_mask | new_mask;
        self.version += 1;
        Ok(new_root)
    }

    /// [`edit::delete_subtree`] as a delta.
    pub fn delete_subtree(&mut self, n: NodeId) -> Result<(), EditError> {
        let parent = self.ensure_editable(n)?;
        let old_mask = self.index.subtree_mask(n);
        self.remove_subtree_occurrences(n);
        edit::delete_subtree(&mut self.doc, n)?;
        self.pending.sites.push(parent);
        self.pending.removed.push((parent, n));
        self.pending.dirty_mask |= old_mask;
        self.version += 1;
        Ok(())
    }

    /// [`edit::insert_child`] as a delta.
    pub fn insert_child(
        &mut self,
        parent: NodeId,
        index: usize,
        spec: &TreeSpec,
    ) -> Result<NodeId, EditError> {
        let new_root = edit::insert_child(&mut self.doc, parent, index, spec)?;
        let new_mask = self.index_new_subtree(new_root);
        self.pending.sites.push(parent);
        self.pending.inserted.push(new_root);
        self.pending.dirty_mask |= new_mask;
        self.version += 1;
        Ok(new_root)
    }

    /// [`edit::append_child`] as a delta.
    pub fn append_child(&mut self, parent: NodeId, spec: &TreeSpec) -> Result<NodeId, EditError> {
        let len = self.doc.children(parent).len();
        self.insert_child(parent, len, spec)
    }

    /// [`edit::set_value`] as a delta (no structural index change).
    pub fn set_value(&mut self, n: NodeId, value: &str) -> Result<(), EditError> {
        edit::set_value(&mut self.doc, n, value)?;
        if let Some(p) = self.doc.parent(n) {
            self.pending.sites.push(p);
        }
        self.pending.value_sites.push(n);
        self.pending.dirty_mask |= label_mask(self.doc.label(n));
        self.version += 1;
        Ok(())
    }

    /// Arbitrary document surgery: runs `f`, then rebuilds the index from
    /// scratch and marks the delta opaque (scoped rechecking impossible).
    pub fn apply_opaque<R>(&mut self, f: impl FnOnce(&mut Document) -> R) -> R {
        let r = f(&mut self.doc);
        self.index = LabelIndex::build(&self.doc);
        self.pending.opaque = true;
        self.version += 1;
        r
    }

    /// Merges another delta into the pending one (used by callers that
    /// stage deltas of their own).
    pub fn record_delta(&mut self, delta: Delta) {
        self.pending.merge_from(delta);
    }
}

/// A snapshot of exactly the arena slots a sequence of edits mutates, so
/// the pre-image can be restored in place — the clone-free alternative to
/// `Document::clone` for check-then-rollback workflows.
///
/// Only edits performed *through the journal's methods* are undoable;
/// nodes created during the journal's lifetime are truncated on rollback.
#[derive(Debug)]
pub struct UndoJournal {
    saved: Vec<(NodeId, Node)>,
    seen: HashSet<NodeId>,
    arena_len: usize,
}

impl UndoJournal {
    /// Starts journaling against the current state of `doc`.
    pub fn begin(doc: &Document) -> UndoJournal {
        UndoJournal {
            saved: Vec::new(),
            seen: HashSet::new(),
            arena_len: doc.arena_len(),
        }
    }

    fn note(&mut self, doc: &Document, n: NodeId) {
        if self.seen.insert(n) {
            self.saved.push((n, doc.nodes[n.index()].clone()));
        }
    }

    fn note_subtree(&mut self, doc: &Document, n: NodeId) {
        for d in doc.descendants_or_self(n) {
            self.note(doc, d);
        }
    }

    /// Journaled [`edit::replace_subtree`].
    pub fn replace_subtree(
        &mut self,
        doc: &mut Document,
        n: NodeId,
        spec: &TreeSpec,
    ) -> Result<NodeId, EditError> {
        if let Some(parent) = doc.parent(n) {
            self.note(doc, parent);
        }
        self.note_subtree(doc, n);
        edit::replace_subtree(doc, n, spec)
    }

    /// Journaled [`edit::delete_subtree`].
    pub fn delete_subtree(&mut self, doc: &mut Document, n: NodeId) -> Result<(), EditError> {
        if let Some(parent) = doc.parent(n) {
            self.note(doc, parent);
            // Later siblings get their cached positions renumbered.
            if let Some(pos) = doc.child_index(n) {
                let later: Vec<NodeId> = doc.children(parent)[pos + 1..].to_vec();
                for s in later {
                    self.note(doc, s);
                }
            }
        }
        self.note_subtree(doc, n);
        edit::delete_subtree(doc, n)
    }

    /// Journaled [`edit::insert_child`].
    pub fn insert_child(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        index: usize,
        spec: &TreeSpec,
    ) -> Result<NodeId, EditError> {
        if doc.is_alive(parent) {
            self.note(doc, parent);
            let later: Vec<NodeId> = doc
                .children(parent)
                .get(index..)
                .map(<[NodeId]>::to_vec)
                .unwrap_or_default();
            for s in later {
                self.note(doc, s);
            }
        }
        edit::insert_child(doc, parent, index, spec)
    }

    /// Journaled [`edit::set_value`].
    pub fn set_value(
        &mut self,
        doc: &mut Document,
        n: NodeId,
        value: &str,
    ) -> Result<(), EditError> {
        self.note(doc, n);
        edit::set_value(doc, n, value)
    }

    /// Number of arena slots snapshotted so far.
    pub fn saved_len(&self) -> usize {
        self.saved.len()
    }

    /// Restores every journaled slot and truncates nodes created since
    /// [`UndoJournal::begin`], returning `doc` to its pre-journal state.
    pub fn rollback(self, doc: &mut Document) {
        for (id, node) in self.saved {
            if id.index() < doc.nodes.len() {
                doc.nodes[id.index()] = node;
            }
        }
        doc.nodes.truncate(self.arena_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;
    use crate::serialize::to_xml;
    use regtree_alphabet::Alphabet;

    fn setup() -> (Alphabet, VersionedDocument) {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            "<session><candidate IDN=\"78\"><level>B</level></candidate>\
             <candidate IDN=\"99\"><level>A</level></candidate></session>",
        )
        .unwrap();
        (a, VersionedDocument::new(doc))
    }

    /// The maintained occurrence lists must equal a from-scratch rebuild,
    /// and the maintained masks must cover (⊇) the rebuilt ones.
    fn assert_index_sound(v: &VersionedDocument) {
        let fresh = LabelIndex::build(v.doc());
        for s in v.doc().alphabet().symbols() {
            assert_eq!(
                v.index().nodes_with_label(s),
                fresh.nodes_with_label(s),
                "occurrences of {:?} drifted",
                v.doc().alphabet().name(s)
            );
        }
        for n in v.doc().all_nodes() {
            let maintained = v.index().subtree_mask(n);
            let exact = fresh.subtree_mask(n);
            assert_eq!(
                maintained & exact,
                exact,
                "mask at {} lost bits",
                v.doc().dewey_string(n)
            );
        }
    }

    #[test]
    fn versioned_edits_maintain_index() {
        let (a, mut v) = setup();
        let session = v.doc().children(v.doc().root())[0];
        let c1 = v.doc().children(session)[0];
        let lvl = v.doc().children(c1)[1];

        v.append_child(session, &TreeSpec::elem_named(&a, "closing", vec![]))
            .unwrap();
        assert_index_sound(&v);
        v.replace_subtree(
            lvl,
            &TreeSpec::elem_named(&a, "level", vec![TreeSpec::text("C")]),
        )
        .unwrap();
        assert_index_sound(&v);
        let c2 = v.doc().children(session)[1];
        v.delete_subtree(c2).unwrap();
        assert_index_sound(&v);
        let idn = v.doc().children(v.doc().children(session)[0])[0];
        v.set_value(idn, "42").unwrap();
        assert_index_sound(&v);
        assert_eq!(v.version(), 4);

        let delta = v.take_delta();
        assert!(!delta.is_empty());
        assert_eq!(delta.removed.len(), 2); // replace + delete
        assert_eq!(delta.inserted.len(), 2); // append + replace
        assert_eq!(delta.value_sites.len(), 1);
        assert!(v.take_delta().is_empty());
    }

    #[test]
    fn opaque_mutations_rebuild() {
        let (_a, mut v) = setup();
        let session = v.doc().children(v.doc().root())[0];
        v.apply_opaque(|doc| {
            let c = doc.children(session)[0];
            edit::delete_subtree(doc, c).unwrap();
        });
        assert_index_sound(&v);
        assert!(v.take_delta().opaque);
    }

    #[test]
    fn errors_leave_state_unchanged() {
        let (a, mut v) = setup();
        let before = to_xml(v.doc());
        let root = v.doc().root();
        assert_eq!(v.delete_subtree(root), Err(EditError::CannotEditRoot));
        let bad = TreeSpec {
            label: a.intern("@x"),
            value: None,
            children: vec![],
        };
        let session = v.doc().children(root)[0];
        let c1 = v.doc().children(session)[0];
        assert!(matches!(
            v.replace_subtree(c1, &bad),
            Err(EditError::BadSpec(_))
        ));
        assert_eq!(to_xml(v.doc()), before);
        assert_eq!(v.version(), 0);
        assert!(v.take_delta().is_empty());
        assert_index_sound(&v);
    }

    #[test]
    fn undo_journal_round_trips() {
        let a = Alphabet::new();
        let mut doc = parse_document(
            &a,
            "<session><candidate IDN=\"78\"><level>B</level></candidate>\
             <candidate IDN=\"99\"><level>A</level></candidate></session>",
        )
        .unwrap();
        let before_xml = to_xml(&doc);
        let before_len = doc.arena_len();
        let session = doc.children(doc.root())[0];
        let c1 = doc.children(session)[0];
        let c2 = doc.children(session)[1];
        let lvl1 = doc.children(c1)[1];

        let mut j = UndoJournal::begin(&doc);
        j.replace_subtree(
            &mut doc,
            lvl1,
            &TreeSpec::elem_named(&a, "level", vec![TreeSpec::text("Z")]),
        )
        .unwrap();
        j.delete_subtree(&mut doc, c2).unwrap();
        j.insert_child(
            &mut doc,
            session,
            0,
            &TreeSpec::elem_named(&a, "pre", vec![]),
        )
        .unwrap();
        let idn1 = doc.children(doc.children(session)[1])[0];
        j.set_value(&mut doc, idn1, "7").unwrap();
        assert_ne!(to_xml(&doc), before_xml);
        assert!(j.saved_len() > 0);

        j.rollback(&mut doc);
        assert_eq!(to_xml(&doc), before_xml);
        assert_eq!(doc.arena_len(), before_len);
        assert!(doc.check_well_formed().is_ok());
        // Positions/parents fully restored: edits still work afterwards.
        let c2_again = doc.children(session)[1];
        edit::delete_subtree(&mut doc, c2_again).unwrap();
        assert!(doc.check_well_formed().is_ok());
    }
}
