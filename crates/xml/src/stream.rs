//! Single-pass streaming ingest: parse, index and observe in one sweep.
//!
//! [`crate::parse_document`] materializes the arena first; consumers that
//! also want a [`LabelIndex`] then pay a second full traversal
//! ([`LabelIndex::build`]), and consumers that validate pay a third
//! (a bottom-up automaton run). [`stream_document`] fuses all of that into
//! the parse itself:
//!
//! * nodes are pushed into the arena in document order, so the occurrence
//!   lists of the label index come out sorted for free;
//! * subtree Bloom masks are folded on a stack of *open* elements — each
//!   element's mask is finalized the moment its close tag is seen and OR-ed
//!   into its parent's accumulator, so auxiliary state is bounded by the
//!   open-element depth, not the document size;
//! * a caller-supplied [`StreamSink`] observes every node open/close event
//!   and may abort the parse (e.g. on-the-fly schema validation, which
//!   rejects invalid documents without finishing the parse).
//!
//! The resulting `(Document, LabelIndex)` is bit-identical to
//! `parse_document` followed by `LabelIndex::build` — property-tested in
//! the workspace test suite.

use std::collections::HashMap;
use std::fmt;

use regtree_alphabet::{Alphabet, Symbol};

use crate::index::{label_mask, LabelIndex};
use crate::model::{Document, NodeId};
use crate::parse::{unescape, ParseOptions, XmlError, XmlParser};

/// Observer of streaming node events.
///
/// `open` fires when a node is created (its label, value and position are
/// final; its children are not yet parsed); `close` fires when the node is
/// complete (all children closed). Leaves (attributes, text) see `open`
/// immediately followed by `close`. The reserved `/` root is opened before
/// any content and closed after the last top-level element — its `close`
/// is the end-of-document event.
///
/// Returning `Err` aborts the parse with [`StreamError::Sink`].
pub trait StreamSink {
    /// A node was created; its subtree is not yet parsed.
    fn open(&mut self, doc: &Document, node: NodeId) -> Result<(), String>;
    /// The node's subtree is complete.
    fn close(&mut self, doc: &Document, node: NodeId) -> Result<(), String>;
}

/// A sink that accepts everything (plain parse + index).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl StreamSink for NullSink {
    fn open(&mut self, _doc: &Document, _node: NodeId) -> Result<(), String> {
        Ok(())
    }
    fn close(&mut self, _doc: &Document, _node: NodeId) -> Result<(), String> {
        Ok(())
    }
}

/// Error raised by [`stream_document`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The underlying XML was malformed.
    Parse(XmlError),
    /// The sink rejected a node event.
    Sink {
        /// Byte offset of the event that was rejected.
        position: usize,
        /// The sink's message.
        message: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse(e) => write!(f, "{e}"),
            StreamError::Sink { position, message } => {
                write!(f, "stream rejected at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<XmlError> for StreamError {
    fn from(e: XmlError) -> StreamError {
        StreamError::Parse(e)
    }
}

/// Incremental [`LabelIndex`] construction: occurrence lists fill in
/// document order (creation order), subtree masks fold on the open-element
/// stack.
struct IndexBuilder {
    by_label: HashMap<Symbol, Vec<NodeId>>,
    subtree: Vec<u64>,
    mask_stack: Vec<u64>,
}

impl IndexBuilder {
    fn new() -> IndexBuilder {
        IndexBuilder {
            by_label: HashMap::new(),
            subtree: Vec::new(),
            mask_stack: Vec::new(),
        }
    }

    fn open(&mut self, doc: &Document, n: NodeId) {
        let l = doc.label(n);
        self.by_label.entry(l).or_default().push(n);
        if self.subtree.len() <= n.index() {
            self.subtree.resize(n.index() + 1, 0);
        }
        self.mask_stack.push(label_mask(l));
    }

    fn close(&mut self, n: NodeId) {
        let m = self.mask_stack.pop().expect("unbalanced index close");
        self.subtree[n.index()] = m;
        if let Some(top) = self.mask_stack.last_mut() {
            *top |= m;
        }
    }

    fn finish(self) -> LabelIndex {
        debug_assert!(self.mask_stack.is_empty(), "unclosed elements at finish");
        LabelIndex::from_raw(self.by_label, self.subtree)
    }
}

/// Streaming counterpart of [`crate::parse_document`]: one pass producing
/// the document *and* its label index, with `sink` observing every node.
pub fn stream_document(
    alphabet: &Alphabet,
    src: &str,
    sink: &mut dyn StreamSink,
) -> Result<(Document, LabelIndex), StreamError> {
    stream_document_with(alphabet, src, ParseOptions::default(), sink)
}

/// [`stream_document`] with explicit parse options.
pub fn stream_document_with(
    alphabet: &Alphabet,
    src: &str,
    options: ParseOptions,
    sink: &mut dyn StreamSink,
) -> Result<(Document, LabelIndex), StreamError> {
    let mut doc = Document::new(alphabet.clone());
    let mut ib = IndexBuilder::new();
    let mut p = XmlParser::new(src, options);
    let root = doc.root();
    ib.open(&doc, root);
    sink_open(sink, &doc, root, p.pos)?;

    // Stack of open elements: (node, tag name). The reserved root is not on
    // the stack; an empty stack means we are between top-level elements.
    let mut stack: Vec<(NodeId, String)> = Vec::new();
    let mut top_count = 0usize;
    p.skip_misc();
    loop {
        match stack.last().map(|&(e, _)| e) {
            None => {
                if p.at_end() {
                    break;
                }
                if p.peek_is(b'<') {
                    if let Some(open) = start_tag(&mut p, &mut doc, &mut ib, sink, root)? {
                        stack.push(open);
                    } else {
                        top_count += 1;
                        p.skip_misc();
                    }
                } else {
                    return Err(p
                        .err("unexpected content outside the top-level element")
                        .into());
                }
            }
            Some(elem) => {
                if p.starts_with("</") {
                    p.pos += 2;
                    let close = p.parse_name()?;
                    let name = &stack.last().expect("open element on stack").1;
                    if &close != name {
                        return Err(p
                            .err(format!("mismatched close tag </{close}> for <{name}>"))
                            .into());
                    }
                    p.skip_ws();
                    p.expect(b'>')?;
                    ib.close(elem);
                    sink_close(sink, &doc, elem, p.pos)?;
                    stack.pop();
                    if stack.is_empty() {
                        top_count += 1;
                        p.skip_misc();
                    }
                    continue;
                }
                if p.starts_with("<!--") {
                    match p.src[p.pos..].find("-->") {
                        Some(end) => p.pos += end + 3,
                        None => return Err(p.err("unterminated comment").into()),
                    }
                    continue;
                }
                if p.starts_with("<![CDATA[") {
                    p.pos += "<![CDATA[".len();
                    match p.src[p.pos..].find("]]>") {
                        Some(end) => {
                            let text = p.src[p.pos..p.pos + end].to_string();
                            p.pos += end + 3;
                            let t = doc.add_text(elem, &text);
                            leaf_events(&doc, &mut ib, sink, t, p.pos)?;
                        }
                        None => return Err(p.err("unterminated CDATA section").into()),
                    }
                    continue;
                }
                if p.starts_with("<?") {
                    match p.src[p.pos..].find("?>") {
                        Some(end) => p.pos += end + 2,
                        None => return Err(p.err("unterminated processing instruction").into()),
                    }
                    continue;
                }
                match p.peek() {
                    Some(b'<') => {
                        if let Some(open) = start_tag(&mut p, &mut doc, &mut ib, sink, elem)? {
                            stack.push(open);
                        }
                    }
                    Some(_) => {
                        let start = p.pos;
                        while let Some(b) = p.peek() {
                            if b == b'<' {
                                break;
                            }
                            p.pos += 1;
                        }
                        let raw = &p.src[start..p.pos];
                        let text = unescape(raw).map_err(|m| p.err(m))?;
                        if p.options.keep_whitespace_text || !text.chars().all(char::is_whitespace)
                        {
                            let t = doc.add_text(elem, &text);
                            leaf_events(&doc, &mut ib, sink, t, p.pos)?;
                        }
                    }
                    None => {
                        let name = &stack.last().expect("open element on stack").1;
                        return Err(p.err(format!("unterminated element <{name}>")).into());
                    }
                }
            }
        }
    }
    if top_count == 0 {
        return Err(XmlError {
            position: src.len(),
            message: "no top-level element".into(),
        }
        .into());
    }
    ib.close(root);
    sink_close(sink, &doc, root, p.pos)?;
    Ok((doc, ib.finish()))
}

/// Parses one start tag (attributes included). Returns `Some((node, name))`
/// when the element stays open, `None` when it was self-closing.
fn start_tag(
    p: &mut XmlParser<'_>,
    doc: &mut Document,
    ib: &mut IndexBuilder,
    sink: &mut dyn StreamSink,
    parent: NodeId,
) -> Result<Option<(NodeId, String)>, StreamError> {
    p.expect(b'<')?;
    let name = p.parse_name()?;
    let elem = doc.add_element(parent, doc.alphabet().intern(&name));
    ib.open(doc, elem);
    sink_open(sink, doc, elem, p.pos)?;
    loop {
        p.skip_ws();
        match p.peek() {
            Some(b'>') => {
                p.pos += 1;
                return Ok(Some((elem, name)));
            }
            Some(b'/') => {
                p.pos += 1;
                p.expect(b'>')?;
                ib.close(elem);
                sink_close(sink, doc, elem, p.pos)?;
                return Ok(None);
            }
            Some(_) => {
                let attr_name = p.parse_name()?;
                p.skip_ws();
                p.expect(b'=')?;
                p.skip_ws();
                let quote = p
                    .peek()
                    .filter(|&b| b == b'"' || b == b'\'')
                    .ok_or_else(|| p.err("expected quoted attribute value"))?;
                p.pos += 1;
                let start = p.pos;
                while let Some(b) = p.peek() {
                    if b == quote {
                        break;
                    }
                    p.pos += 1;
                }
                if p.at_end() {
                    return Err(p.err("unterminated attribute value").into());
                }
                let raw = p.src[start..p.pos].to_string();
                p.pos += 1; // closing quote
                let value = unescape(&raw).map_err(|m| p.err(m))?;
                let label = doc.alphabet().intern(&format!("@{attr_name}"));
                let attr = doc.add_attribute(elem, label, &value);
                leaf_events(doc, ib, sink, attr, p.pos)?;
            }
            None => return Err(p.err("unterminated start tag").into()),
        }
    }
}

fn leaf_events(
    doc: &Document,
    ib: &mut IndexBuilder,
    sink: &mut dyn StreamSink,
    n: NodeId,
    position: usize,
) -> Result<(), StreamError> {
    ib.open(doc, n);
    ib.close(n);
    sink_open(sink, doc, n, position)?;
    sink_close(sink, doc, n, position)
}

fn sink_open(
    sink: &mut dyn StreamSink,
    doc: &Document,
    n: NodeId,
    position: usize,
) -> Result<(), StreamError> {
    sink.open(doc, n)
        .map_err(|message| StreamError::Sink { position, message })
}

fn sink_close(
    sink: &mut dyn StreamSink,
    doc: &Document,
    n: NodeId,
    position: usize,
) -> Result<(), StreamError> {
    sink.close(doc, n)
        .map_err(|message| StreamError::Sink { position, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document_with;

    fn assert_streams_like_batch(src: &str, options: ParseOptions) {
        let a = Alphabet::new();
        let batch = parse_document_with(&a, src, options);
        let streamed = stream_document_with(&a, src, options, &mut NullSink);
        match (batch, streamed) {
            (Ok(b), Ok((d, idx))) => {
                assert!(crate::value_eq::value_eq(&b, b.root(), &d, d.root()));
                assert_eq!(d.arena_len(), b.arena_len());
                assert_eq!(idx, LabelIndex::build(&d), "index mismatch for {src}");
            }
            (Err(_), Err(StreamError::Parse(_))) => {}
            (b, s) => panic!("divergence on {src}: batch {b:?} vs stream {s:?}"),
        }
    }

    #[test]
    fn streaming_matches_batch_parse() {
        let cases = [
            r#"<session date="2009-06"><candidate IDN="78"><level>B</level></candidate></session>"#,
            "<r>\n  <leaf/>\n  <leaf/>\n</r>",
            r#"<t a="&lt;x&gt;">&amp;&#65;&#x42;</t>"#,
            "<?xml version=\"1.0\"?><!DOCTYPE x [<!ELEMENT x (y)>]><!-- hi --><x><!-- inner --></x>",
            "<t><![CDATA[a <raw> & b]]></t>",
            "<a/><b/>",
            "<a><b></a></b>",
            "<a attr=oops></a>",
            "<a>&unknown;</a>",
            "<a>",
            "",
            "stray text",
        ];
        for src in cases {
            assert_streams_like_batch(src, ParseOptions::default());
            assert_streams_like_batch(
                src,
                ParseOptions {
                    keep_whitespace_text: true,
                },
            );
        }
    }

    #[test]
    fn sink_sees_balanced_events_in_document_order() {
        struct Recorder {
            opens: Vec<NodeId>,
            closes: Vec<NodeId>,
        }
        impl StreamSink for Recorder {
            fn open(&mut self, _doc: &Document, n: NodeId) -> Result<(), String> {
                self.opens.push(n);
                Ok(())
            }
            fn close(&mut self, _doc: &Document, n: NodeId) -> Result<(), String> {
                self.closes.push(n);
                Ok(())
            }
        }
        let a = Alphabet::new();
        let mut rec = Recorder {
            opens: Vec::new(),
            closes: Vec::new(),
        };
        let (doc, _) = stream_document(&a, "<x a=\"1\"><y>t</y><z/></x>", &mut rec).unwrap();
        // Opens happen in preorder = document order.
        assert_eq!(rec.opens, doc.all_nodes());
        // Every node closes exactly once, the root last.
        let mut sorted = rec.closes.clone();
        sorted.sort();
        let mut all = doc.all_nodes();
        all.sort();
        assert_eq!(sorted, all);
        assert_eq!(*rec.closes.last().unwrap(), doc.root());
    }

    #[test]
    fn sink_rejection_aborts() {
        struct RejectText;
        impl StreamSink for RejectText {
            fn open(&mut self, doc: &Document, n: NodeId) -> Result<(), String> {
                if doc.label(n) == Alphabet::TEXT {
                    Err("no text allowed".into())
                } else {
                    Ok(())
                }
            }
            fn close(&mut self, _doc: &Document, _n: NodeId) -> Result<(), String> {
                Ok(())
            }
        }
        let a = Alphabet::new();
        let err = stream_document(&a, "<x><y>boom</y></x>", &mut RejectText).unwrap_err();
        assert!(matches!(err, StreamError::Sink { .. }), "{err}");
    }
}
