//! Arena-independent tree values.
//!
//! A [`TreeSpec`] is an owned description of a subtree — the “new sub-tree”
//! an update function `u` substitutes at a selected node (paper Section 4).
//! Specs can be built programmatically, extracted from documents, grafted
//! back in, and compared.

use std::sync::Arc;

use regtree_alphabet::{Alphabet, LabelKind, Symbol};

use crate::model::{Document, NodeId};

/// An owned subtree description.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TreeSpec {
    /// Node label.
    pub label: Symbol,
    /// Value for attribute/text nodes.
    pub value: Option<Arc<str>>,
    /// Ordered children.
    pub children: Vec<TreeSpec>,
}

impl TreeSpec {
    /// An element node spec.
    pub fn elem(label: Symbol, children: Vec<TreeSpec>) -> TreeSpec {
        TreeSpec {
            label,
            value: None,
            children,
        }
    }

    /// An element node spec, interning the label name.
    pub fn elem_named(alphabet: &Alphabet, name: &str, children: Vec<TreeSpec>) -> TreeSpec {
        TreeSpec::elem(alphabet.intern(name), children)
    }

    /// An attribute leaf spec.
    pub fn attr(label: Symbol, value: &str) -> TreeSpec {
        TreeSpec {
            label,
            value: Some(Arc::from(value)),
            children: Vec::new(),
        }
    }

    /// An attribute leaf spec, interning the label name (`@`-prefixed).
    pub fn attr_named(alphabet: &Alphabet, name: &str, value: &str) -> TreeSpec {
        debug_assert!(name.starts_with('@'), "attribute labels start with '@'");
        TreeSpec::attr(alphabet.intern(name), value)
    }

    /// A text leaf spec.
    pub fn text(value: &str) -> TreeSpec {
        TreeSpec {
            label: Alphabet::TEXT,
            value: Some(Arc::from(value)),
            children: Vec::new(),
        }
    }

    /// Number of nodes in the spec.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(TreeSpec::len).sum::<usize>()
    }

    /// Always false: a spec has at least its own node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Extracts the subtree rooted at `n` from a document (deep copy).
    pub fn from_document(doc: &Document, n: NodeId) -> TreeSpec {
        TreeSpec {
            label: doc.label(n),
            value: doc.value(n).map(Arc::from),
            children: doc
                .children(n)
                .iter()
                .map(|&c| TreeSpec::from_document(doc, c))
                .collect(),
        }
    }

    /// Structural validity against an alphabet's label partition.
    pub fn check(&self, alphabet: &Alphabet) -> Result<(), String> {
        match alphabet.kind(self.label) {
            LabelKind::Element => {
                if self.value.is_some() {
                    return Err(format!(
                        "element spec '{}' carries a value",
                        alphabet.name(self.label)
                    ));
                }
            }
            LabelKind::Attribute | LabelKind::Text => {
                if !self.children.is_empty() {
                    return Err(format!(
                        "leaf spec '{}' has children",
                        alphabet.name(self.label)
                    ));
                }
                if self.value.is_none() {
                    return Err(format!(
                        "leaf spec '{}' has no value",
                        alphabet.name(self.label)
                    ));
                }
            }
        }
        for c in &self.children {
            c.check(alphabet)?;
        }
        Ok(())
    }

    /// Materializes the spec as a fresh detached subtree in `doc`'s arena,
    /// returning its root id (parentless until attached).
    pub(crate) fn instantiate(&self, doc: &mut Document) -> NodeId {
        let id = doc.push_node(self.label, None, self.value.clone());
        for c in &self.children {
            let cid = c.instantiate(doc);
            doc.attach(id, cid);
        }
        id
    }
}

/// Builds a whole document from specs placed under the reserved root.
pub fn document_from_specs(alphabet: Alphabet, top: &[TreeSpec]) -> Document {
    let mut doc = Document::new(alphabet);
    let root = doc.root();
    for spec in top {
        let id = spec.instantiate(&mut doc);
        doc.attach(root, id);
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_roundtrip() {
        let a = Alphabet::new();
        let spec = TreeSpec::elem_named(
            &a,
            "exam",
            vec![
                TreeSpec::elem_named(&a, "discipline", vec![TreeSpec::text("math")]),
                TreeSpec::attr_named(&a, "@weight", "2"),
            ],
        );
        assert!(spec.check(&a).is_ok());
        assert_eq!(spec.len(), 4);
        let doc = document_from_specs(a, std::slice::from_ref(&spec));
        assert!(doc.check_well_formed().is_ok());
        let exam = doc.children(doc.root())[0];
        let extracted = TreeSpec::from_document(&doc, exam);
        assert_eq!(extracted, spec);
    }

    #[test]
    fn check_rejects_malformed() {
        let a = Alphabet::new();
        let bad_attr = TreeSpec {
            label: a.intern("@x"),
            value: None,
            children: Vec::new(),
        };
        assert!(bad_attr.check(&a).is_err());
        let bad_elem = TreeSpec {
            label: a.intern("e"),
            value: Some(Arc::from("v")),
            children: Vec::new(),
        };
        assert!(bad_elem.check(&a).is_err());
        let bad_text = TreeSpec {
            label: Alphabet::TEXT,
            value: Some(Arc::from("t")),
            children: vec![TreeSpec::text("nested")],
        };
        assert!(bad_text.check(&a).is_err());
    }

    #[test]
    fn multiple_top_level_specs() {
        let a = Alphabet::new();
        let doc = document_from_specs(
            a.clone(),
            &[
                TreeSpec::elem_named(&a, "one", vec![]),
                TreeSpec::elem_named(&a, "two", vec![]),
            ],
        );
        assert_eq!(doc.children(doc.root()).len(), 2);
        assert_eq!(doc.len(), 3);
    }
}
