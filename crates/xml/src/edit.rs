//! In-place editing primitives.
//!
//! The paper models an update as “replacing the sub-tree `D(w)` rooted at
//! each selected node `w` by a new sub-tree”, and observes that insertions
//! and deletions are replacements at the parent of the insertion/deletion
//! position. [`replace_subtree`] is therefore the fundamental operation;
//! [`insert_child`], [`delete_subtree`] and [`set_value`] are provided as
//! conveniences (each expressible as a parent replacement).
//!
//! Edits tombstone detached nodes; ids of untouched nodes remain stable.

use std::sync::Arc;

use regtree_alphabet::LabelKind;

use crate::model::{Document, NodeId};
use crate::spec::TreeSpec;

/// Error raised by edit operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The target node is the reserved root, which cannot be replaced.
    CannotEditRoot,
    /// The target node was already detached by a previous edit.
    Detached,
    /// Index out of bounds for an insertion.
    BadIndex {
        /// Requested position.
        index: usize,
        /// Current number of children.
        len: usize,
    },
    /// `set_value` on a node that carries no value (an element node).
    NotALeafValue,
    /// The replacement spec is malformed for the document's alphabet.
    BadSpec(String),
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::CannotEditRoot => write!(f, "the reserved root cannot be edited"),
            EditError::Detached => write!(f, "target node is already detached"),
            EditError::BadIndex { index, len } => {
                write!(f, "insert index {index} out of bounds (len {len})")
            }
            EditError::NotALeafValue => write!(f, "node carries no string value"),
            EditError::BadSpec(msg) => write!(f, "malformed replacement subtree: {msg}"),
        }
    }
}

impl std::error::Error for EditError {}

fn mark_detached(doc: &mut Document, n: NodeId) {
    for d in doc.descendants_or_self(n) {
        doc.nodes[d.index()].alive = false;
    }
    doc.nodes[n.index()].parent = None;
}

fn ensure_editable(doc: &Document, n: NodeId) -> Result<NodeId, EditError> {
    if n == doc.root() {
        return Err(EditError::CannotEditRoot);
    }
    if !doc.is_alive(n) {
        return Err(EditError::Detached);
    }
    doc.parent(n).ok_or(EditError::Detached)
}

/// Replaces the subtree rooted at `n` with `replacement`, returning the id of
/// the new subtree root. The new subtree occupies `n`'s position among its
/// siblings.
pub fn replace_subtree(
    doc: &mut Document,
    n: NodeId,
    replacement: &TreeSpec,
) -> Result<NodeId, EditError> {
    let parent = ensure_editable(doc, n)?;
    replacement
        .check(doc.alphabet())
        .map_err(EditError::BadSpec)?;
    let pos = doc.child_index(n).ok_or(EditError::Detached)?;
    let new_root = replacement.instantiate(doc);
    mark_detached(doc, n);
    doc.nodes[new_root.index()].parent = Some(parent);
    doc.nodes[new_root.index()].pos = pos as u32;
    doc.nodes[parent.index()].children[pos] = new_root;
    Ok(new_root)
}

/// Deletes the subtree rooted at `n`.
pub fn delete_subtree(doc: &mut Document, n: NodeId) -> Result<(), EditError> {
    let parent = ensure_editable(doc, n)?;
    let pos = doc.child_index(n).ok_or(EditError::Detached)?;
    mark_detached(doc, n);
    doc.nodes[parent.index()].children.remove(pos);
    doc.renumber_children(parent, pos);
    Ok(())
}

/// Inserts `spec` as the `index`-th child of `parent`, returning the new
/// subtree root.
pub fn insert_child(
    doc: &mut Document,
    parent: NodeId,
    index: usize,
    spec: &TreeSpec,
) -> Result<NodeId, EditError> {
    if !doc.is_alive(parent) {
        return Err(EditError::Detached);
    }
    spec.check(doc.alphabet()).map_err(EditError::BadSpec)?;
    let len = doc.children(parent).len();
    if index > len {
        return Err(EditError::BadIndex { index, len });
    }
    let new_root = spec.instantiate(doc);
    doc.nodes[new_root.index()].parent = Some(parent);
    doc.nodes[parent.index()].children.insert(index, new_root);
    doc.renumber_children(parent, index);
    Ok(new_root)
}

/// Appends `spec` as the last child of `parent`.
pub fn append_child(
    doc: &mut Document,
    parent: NodeId,
    spec: &TreeSpec,
) -> Result<NodeId, EditError> {
    let len = doc.children(parent).len();
    insert_child(doc, parent, len, spec)
}

/// Overwrites the string value of an attribute/text leaf.
pub fn set_value(doc: &mut Document, n: NodeId, value: &str) -> Result<(), EditError> {
    if !doc.is_alive(n) {
        return Err(EditError::Detached);
    }
    match doc.kind(n) {
        LabelKind::Attribute | LabelKind::Text => {
            doc.nodes[n.index()].value = Some(Arc::from(value));
            Ok(())
        }
        LabelKind::Element => Err(EditError::NotALeafValue),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::document_from_specs;
    use regtree_alphabet::Alphabet;

    fn setup() -> (Alphabet, Document) {
        let a = Alphabet::new();
        let doc = document_from_specs(
            a.clone(),
            &[TreeSpec::elem_named(
                &a,
                "session",
                vec![
                    TreeSpec::elem_named(
                        &a,
                        "candidate",
                        vec![TreeSpec::attr_named(&a, "@IDN", "78")],
                    ),
                    TreeSpec::elem_named(
                        &a,
                        "candidate",
                        vec![TreeSpec::attr_named(&a, "@IDN", "99")],
                    ),
                ],
            )],
        );
        (a, doc)
    }

    #[test]
    fn replace_preserves_sibling_position() {
        let (a, mut doc) = setup();
        let session = doc.children(doc.root())[0];
        let c1 = doc.children(session)[0];
        let new = replace_subtree(
            &mut doc,
            c1,
            &TreeSpec::elem_named(
                &a,
                "candidate",
                vec![TreeSpec::attr_named(&a, "@IDN", "11")],
            ),
        )
        .unwrap();
        assert_eq!(doc.children(session)[0], new);
        assert_eq!(doc.children(session).len(), 2);
        assert!(!doc.is_alive(c1));
        assert!(doc.check_well_formed().is_ok());
        let idn = doc.children(new)[0];
        assert_eq!(doc.value(idn), Some("11"));
    }

    #[test]
    fn delete_removes_from_parent() {
        let (_, mut doc) = setup();
        let session = doc.children(doc.root())[0];
        let c2 = doc.children(session)[1];
        delete_subtree(&mut doc, c2).unwrap();
        assert_eq!(doc.children(session).len(), 1);
        assert!(!doc.is_alive(c2));
        assert!(doc.check_well_formed().is_ok());
    }

    #[test]
    fn insert_at_positions() {
        let (a, mut doc) = setup();
        let session = doc.children(doc.root())[0];
        let front = insert_child(
            &mut doc,
            session,
            0,
            &TreeSpec::elem_named(&a, "preamble", vec![]),
        )
        .unwrap();
        assert_eq!(doc.children(session)[0], front);
        let back = append_child(
            &mut doc,
            session,
            &TreeSpec::elem_named(&a, "closing", vec![]),
        )
        .unwrap();
        assert_eq!(*doc.children(session).last().unwrap(), back);
        assert_eq!(doc.children(session).len(), 4);
        let err = insert_child(
            &mut doc,
            session,
            99,
            &TreeSpec::elem_named(&a, "x", vec![]),
        );
        assert!(matches!(err, Err(EditError::BadIndex { .. })));
    }

    #[test]
    fn set_value_only_on_leaves() {
        let (_, mut doc) = setup();
        let session = doc.children(doc.root())[0];
        let c1 = doc.children(session)[0];
        let idn = doc.children(c1)[0];
        set_value(&mut doc, idn, "42").unwrap();
        assert_eq!(doc.value(idn), Some("42"));
        assert_eq!(set_value(&mut doc, c1, "x"), Err(EditError::NotALeafValue));
    }

    #[test]
    fn root_is_protected() {
        let (a, mut doc) = setup();
        let root = doc.root();
        assert_eq!(
            replace_subtree(&mut doc, root, &TreeSpec::elem_named(&a, "x", vec![])),
            Err(EditError::CannotEditRoot)
        );
        assert_eq!(
            delete_subtree(&mut doc, root),
            Err(EditError::CannotEditRoot)
        );
    }

    #[test]
    fn detached_nodes_rejected() {
        let (a, mut doc) = setup();
        let session = doc.children(doc.root())[0];
        let c1 = doc.children(session)[0];
        delete_subtree(&mut doc, c1).unwrap();
        assert_eq!(
            replace_subtree(&mut doc, c1, &TreeSpec::elem_named(&a, "x", vec![])),
            Err(EditError::Detached)
        );
    }

    #[test]
    fn malformed_spec_rejected() {
        let (a, mut doc) = setup();
        let session = doc.children(doc.root())[0];
        let c1 = doc.children(session)[0];
        let bad = TreeSpec {
            label: a.intern("@attr"),
            value: None,
            children: Vec::new(),
        };
        assert!(matches!(
            replace_subtree(&mut doc, c1, &bad),
            Err(EditError::BadSpec(_))
        ));
        // Document unchanged on failure.
        assert!(doc.is_alive(c1));
        assert!(doc.check_well_formed().is_ok());
    }

    #[test]
    fn compact_after_edits() {
        let (a, mut doc) = setup();
        let session = doc.children(doc.root())[0];
        let c1 = doc.children(session)[0];
        replace_subtree(
            &mut doc,
            c1,
            &TreeSpec::elem_named(&a, "candidate", vec![TreeSpec::attr_named(&a, "@IDN", "5")]),
        )
        .unwrap();
        let live_before = doc.len();
        assert!(doc.arena_len() > live_before);
        doc.compact();
        assert_eq!(doc.arena_len(), live_before);
        assert!(doc.check_well_formed().is_ok());
    }
}
