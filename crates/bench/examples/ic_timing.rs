//! Quick deterministic timing of the hottest `ic_scaling` sweep points:
//! fixed iteration counts, median-of-runs, no criterion machinery. Useful
//! when iterating on the engine; `scripts/bench_json.sh` remains the
//! source of truth for committed numbers.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// System allocator wrapped with call counters (`--allocs` mode).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator.
#[allow(unsafe_code)]
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation counts of one call per sweep point, split by pipeline stage.
fn allocs() {
    let a = regtree_gen::exam_alphabet();
    let count = |name: &str, f: &mut dyn FnMut()| {
        f(); // warm one-time lazy state
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let b0 = BYTES.load(Ordering::Relaxed);
        f();
        let da = ALLOCS.load(Ordering::Relaxed) - a0;
        let db = BYTES.load(Ordering::Relaxed) - b0;
        println!("{name:<28} {da:>6} allocs  {db:>8} bytes");
    };
    let fd = fd_with_conditions(&a, 2);
    let u2 = update_chain(&a, 2);
    let u3 = update_chain(&a, 3);
    let u6 = update_chain(&a, 6);
    let schema8 = chain_schema(&a, 8);
    let schema16 = chain_schema(&a, 16);
    count("compile_pattern fd2", &mut || {
        std::hint::black_box(regtree_pattern::compile_pattern(fd.pattern(), true));
    });
    count("compile_pattern u3", &mut || {
        std::hint::black_box(regtree_pattern::compile_pattern(u3.pattern(), false));
    });
    count("schema8.compile", &mut || {
        std::hint::black_box(schema8.compile());
    });
    count("full update_depth/3", &mut || {
        std::hint::black_box(fresh_independence(&fd, &u3, None));
    });
    count("full update_depth/6", &mut || {
        std::hint::black_box(fresh_independence(&fd, &u6, None));
    });
    count("full schema_rules/8", &mut || {
        std::hint::black_box(fresh_independence(&fd, &u2, Some(&schema8)));
    });
    count("full schema_rules/16", &mut || {
        std::hint::black_box(fresh_independence(&fd, &u2, Some(&schema16)));
    });
}

use regtree_bench::{
    chain_schema, fd_with_conditions, fresh_independence, padded_alphabet, update_chain,
};
use regtree_core::{Analyzer, SpanKind, SummarySink};

/// Times the individual compile-side pieces of one sweep point.
fn pieces() {
    let a = regtree_gen::exam_alphabet();
    let fd = fd_with_conditions(&a, 2);
    let u2 = update_chain(&a, 2);
    let u9 = update_chain(&a, 9);
    let schema32 = chain_schema(&a, 32);
    time_point("compile_pattern fd(2) mk", 200, &mut || {
        std::hint::black_box(regtree_pattern::compile_pattern(fd.pattern(), true));
    });
    time_point("compile_pattern u9", 200, &mut || {
        std::hint::black_box(regtree_pattern::compile_pattern(u9.pattern(), false));
    });
    time_point("compile_pattern u2", 200, &mut || {
        std::hint::black_box(regtree_pattern::compile_pattern(u2.pattern(), false));
    });
    time_point("schema32.compile", 200, &mut || {
        std::hint::black_box(schema32.compile());
    });
    let pf = regtree_pattern::compile_pattern(fd.pattern(), true);
    let pu = regtree_pattern::compile_pattern(u2.pattern(), false);
    let sa = schema32.compile();
    time_point("partition(f,u,s32)", 200, &mut || {
        std::hint::black_box(regtree_hedge::GuardPartition::from_automata([
            &pf.automaton,
            &pu.automaton,
            &sa,
        ]));
    });
    let part = regtree_hedge::GuardPartition::from_automata([&pf.automaton, &pu.automaton, &sa]);
    time_point("compile_automaton x3", 200, &mut || {
        std::hint::black_box(regtree_hedge::CompiledAutomaton::compile(
            &pf.automaton,
            &part,
            &a,
        ));
        std::hint::black_box(regtree_hedge::CompiledAutomaton::compile(
            &pu.automaton,
            &part,
            &a,
        ));
        std::hint::black_box(regtree_hedge::CompiledAutomaton::compile(&sa, &part, &a));
    });
    // A no-schema (u3-shaped) triple: all three automata are tiny.
    let u3 = update_chain(&a, 3);
    let pu3 = regtree_pattern::compile_pattern(u3.pattern(), false);
    let uni = regtree_hedge::HedgeAutomaton::universal();
    let small = regtree_hedge::GuardPartition::from_automata([&pf.automaton, &pu3.automaton, &uni]);
    time_point("compile af alone", 200, &mut || {
        std::hint::black_box(regtree_hedge::CompiledAutomaton::compile(
            &pf.automaton,
            &small,
            &a,
        ));
    });
    time_point("compile au3 alone", 200, &mut || {
        std::hint::black_box(regtree_hedge::CompiledAutomaton::compile(
            &pu3.automaton,
            &small,
            &a,
        ));
    });
    time_point("compile universal alone", 200, &mut || {
        std::hint::black_box(regtree_hedge::CompiledAutomaton::compile(&uni, &small, &a));
    });
}

/// Warm per-phase averages: a fresh `Analyzer` per call (no caching) so the
/// workload matches the free-function sweep, 50 calls per point.
fn warm_phases() {
    const N: u32 = 50;
    let a = regtree_gen::exam_alphabet();
    let fd = fd_with_conditions(&a, 2);
    let u2 = update_chain(&a, 2);
    let schema32 = chain_schema(&a, 32);
    let u9 = update_chain(&a, 9);
    for (name, fd, class, schema) in [
        ("schema_rules/32", &fd, &u2, Some(&schema32)),
        ("update_depth/9", &fd, &u9, None),
    ] {
        let sink = Arc::new(SummarySink::new());
        let t = Instant::now();
        for _ in 0..N {
            let mut b = Analyzer::builder().tracer(sink.clone());
            if let Some(s) = schema {
                b = b.schema((*s).clone());
            }
            let _ = b.build().independence(fd, class);
        }
        let total = t.elapsed().as_nanos() / N as u128;
        println!("{name}: total {total} ns/iter");
        let summary = sink.summary();
        for kind in SpanKind::ALL {
            let s = summary.span(kind);
            if s.count == 0 {
                continue;
            }
            println!(
                "  {:<24} {:>9} ns/iter",
                kind.name(),
                s.total_nanos / N as u64
            );
        }
    }
}

/// Prints the exploration counters of each sweep point once.
fn metrics() {
    let a = regtree_gen::exam_alphabet();
    let fd = fd_with_conditions(&a, 2);
    let u2 = update_chain(&a, 2);
    let schema32 = chain_schema(&a, 32);
    let u9 = update_chain(&a, 9);
    let fd6 = fd_with_conditions(&a, 6);
    for (name, fd, class, schema) in [
        ("schema_rules/32", &fd, &u2, Some(&schema32)),
        ("update_depth/9", &fd, &u9, None),
        ("fd_conditions/6", &fd6, &u2, None),
    ] {
        let mut b = Analyzer::builder();
        if let Some(s) = schema {
            b = b.schema((*s).clone());
        }
        let r = b.build().independence(fd, class);
        println!("{name}: {:?}", r.metrics);
    }
}

/// Times every `ic_scaling` sweep point and prints the ratio against the
/// committed lazy baselines (HEAD `BENCH_ic.json` at the time of writing).
fn grid() {
    let a = regtree_gen::exam_alphabet();
    let mut results: Vec<(String, u128, u64)> = Vec::new();
    for (k, base) in [(1u32, 24515u64), (2, 30036), (4, 50793), (6, 58045)] {
        let fd = fd_with_conditions(&a, k as usize);
        let u2 = update_chain(&a, 2);
        let ns = min_point(&mut || {
            std::hint::black_box(fresh_independence(&fd, &u2, None));
        });
        results.push((format!("fd_conditions/{k}"), ns, base));
    }
    for (d, base) in [(1u32, 22073u64), (3, 37136), (6, 54951), (9, 95854)] {
        let fd = fd_with_conditions(&a, 2);
        let u = update_chain(&a, d as usize);
        let ns = min_point(&mut || {
            std::hint::black_box(fresh_independence(&fd, &u, None));
        });
        results.push((format!("update_depth/{d}"), ns, base));
    }
    for (extra, base) in [(0u32, 28836u64), (50, 30541), (200, 34009), (800, 34844)] {
        let ax = padded_alphabet(extra as usize);
        let fd = fd_with_conditions(&ax, 2);
        let u2 = update_chain(&ax, 2);
        let ns = min_point(&mut || {
            std::hint::black_box(fresh_independence(&fd, &u2, None));
        });
        results.push((format!("alphabet/{extra}"), ns, base));
    }
    for (n, base) in [(2u32, 28589u64), (8, 48444), (16, 68406), (32, 183394)] {
        let fd = fd_with_conditions(&a, 2);
        let u2 = update_chain(&a, 2);
        let schema = chain_schema(&a, n as usize);
        let ns = min_point(&mut || {
            std::hint::black_box(fresh_independence(&fd, &u2, Some(&schema)));
        });
        results.push((format!("schema_rules/{n}"), ns, base));
    }
    let mut axis_ratios: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for (name, ns, base) in &results {
        let ratio = *base as f64 / *ns as f64;
        println!("{name:<18} {ns:>8} ns  base {base:>7}  ratio {ratio:.2}");
        let axis = name.split('/').next().unwrap();
        let axis = results
            .iter()
            .find_map(|(n2, _, _)| {
                let a2 = n2.split('/').next().unwrap();
                (a2 == axis).then_some(a2)
            })
            .unwrap();
        axis_ratios.entry(axis).or_default().push(ratio);
    }
    for (axis, mut rs) in axis_ratios {
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = (rs[1] + rs[2]) / 2.0;
        println!("{axis:<18} median ratio {median:.2}");
    }
}

/// Best-of-7 runs of 30 iterations: robust against scheduler noise.
fn min_point(f: &mut dyn FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..30 {
            f();
        }
        best = best.min(t.elapsed().as_nanos() / 30);
    }
    best
}

fn time_point(name: &str, iters: u32, f: &mut dyn FnMut()) {
    let mut meds = Vec::new();
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        meds.push(t.elapsed().as_nanos() / iters as u128);
    }
    meds.sort_unstable();
    println!("{name:<28} {:>9} ns/iter  (min {})", meds[2], meds[0]);
}

fn main() {
    if std::env::args().any(|x| x == "--phases") {
        warm_phases();
        return;
    }
    if std::env::args().any(|x| x == "--pieces") {
        pieces();
        return;
    }
    if std::env::args().any(|x| x == "--metrics") {
        metrics();
        return;
    }
    if std::env::args().any(|x| x == "--grid") {
        grid();
        return;
    }
    if std::env::args().any(|x| x == "--allocs") {
        allocs();
        return;
    }
    let a = regtree_gen::exam_alphabet();
    let fd = fd_with_conditions(&a, 2);
    let u2 = update_chain(&a, 2);
    let schema32 = chain_schema(&a, 32);
    time_point("schema_rules/32", 50, &mut || {
        std::hint::black_box(fresh_independence(&fd, &u2, Some(&schema32)));
    });
    let u9 = update_chain(&a, 9);
    time_point("update_depth/9", 50, &mut || {
        std::hint::black_box(fresh_independence(&fd, &u9, None));
    });
    let fd6 = fd_with_conditions(&a, 6);
    time_point("fd_conditions/6", 50, &mut || {
        std::hint::black_box(fresh_independence(&fd6, &u2, None));
    });
    let a0 = padded_alphabet(0);
    let fd0 = fd_with_conditions(&a0, 2);
    let u0 = update_chain(&a0, 2);
    time_point("alphabet/0", 50, &mut || {
        std::hint::black_box(fresh_independence(&fd0, &u0, None));
    });
    let a800 = padded_alphabet(800);
    let fd8 = fd_with_conditions(&a800, 2);
    let u8x = update_chain(&a800, 2);
    time_point("alphabet/800", 50, &mut || {
        std::hint::black_box(fresh_independence(&fd8, &u8x, None));
    });
}
