//! Prints the E9 explored-vs-total product-state table: for each point of
//! the four `ic_scaling` sweeps, how many product states the lazy engine
//! interned versus the size of the full (never materialized) product the
//! eager pipeline would build. Companion to `scripts/bench_json.sh`; the
//! numbers land in EXPERIMENTS.md E9.
//!
//! Modes: default is the human-readable table; `--counters` prints flat
//! `counters/<axis>/<point>/<metric>` work counters; `--phases` re-runs the
//! sweep through an [`regtree_core::Analyzer`] wired to a
//! [`regtree_core::SummarySink`] and prints flat
//! `phases/<axis>/<point>/<phase>_{count,nanos}` per-phase wall-time rows.
// Each point runs on a fresh `Analyzer` (`regtree_bench::fresh_independence`):
// the automata are recompiled every call, which is the workload the
// committed baselines record. (The `--phases` mode reuses one `Analyzer`
// per point: span hooks only exist on the governed engine, and its rows
// are wall-time breakdowns, not baseline counters.)

use std::sync::Arc;

use regtree_bench::{
    chain_schema, fd_with_conditions, fresh_independence, padded_alphabet, update_chain,
};
use regtree_core::{Analyzer, Fd, SpanKind, SummarySink, UpdateClass};
use regtree_hedge::Schema;

fn main() {
    let machine = std::env::args().any(|a| a == "--counters");
    let phases = std::env::args().any(|a| a == "--phases");
    if !machine && !phases {
        println!("axis             point   explored    total   verdict");
    }
    for &k in &[1usize, 2, 4, 6] {
        let a = regtree_gen::exam_alphabet();
        point(
            "fd_conditions",
            k,
            &fd_with_conditions(&a, k),
            &update_chain(&a, 2),
            None,
            machine,
            phases,
        );
    }
    for &d in &[1usize, 3, 6, 9] {
        let a = regtree_gen::exam_alphabet();
        point(
            "update_depth",
            d,
            &fd_with_conditions(&a, 2),
            &update_chain(&a, d),
            None,
            machine,
            phases,
        );
    }
    for &x in &[0usize, 50, 200, 800] {
        let a = padded_alphabet(x);
        point(
            "alphabet",
            x,
            &fd_with_conditions(&a, 2),
            &update_chain(&a, 2),
            None,
            machine,
            phases,
        );
    }
    for &n in &[2usize, 8, 16, 32] {
        let a = regtree_gen::exam_alphabet();
        let schema = chain_schema(&a, n);
        point(
            "schema_rules",
            n,
            &fd_with_conditions(&a, 2),
            &update_chain(&a, 2),
            Some(&schema),
            machine,
            phases,
        );
    }
}

fn point(
    axis: &str,
    p: usize,
    fd: &Fd,
    class: &UpdateClass,
    schema: Option<&Schema>,
    machine: bool,
    phases: bool,
) {
    if phases {
        phase_rows(axis, p, fd, class, schema);
        return;
    }
    let r = fresh_independence(fd, class, schema);
    row(axis, p, &r, machine);
}

/// One governed run per sweep point, its wall time split by phase.
fn phase_rows(axis: &str, point: usize, fd: &Fd, class: &UpdateClass, schema: Option<&Schema>) {
    let sink = Arc::new(SummarySink::new());
    let mut builder = Analyzer::builder().tracer(sink.clone());
    if let Some(s) = schema {
        builder = builder.schema(s.clone());
    }
    let _ = builder.build().independence(fd, class);
    let summary = sink.summary();
    for kind in SpanKind::ALL {
        let s = summary.span(kind);
        if s.count == 0 {
            continue;
        }
        println!("phases/{axis}/{point}/{}_count {}", kind.name(), s.count);
        println!(
            "phases/{axis}/{point}/{}_nanos {}",
            kind.name(),
            s.total_nanos
        );
    }
}

fn row(axis: &str, point: usize, r: &regtree_core::IndependenceAnalysis, machine: bool) {
    if machine {
        // Flat keys for scripts/bench_json.sh: counters land in BENCH_ic.json
        // next to the medians so the work done per sweep point is versioned
        // alongside the time it took.
        let m = &r.metrics;
        for (metric, value) in [
            ("states_interned", m.states_interned),
            ("transitions_fired", m.transitions_fired),
            ("guard_intersections", m.guard_intersections),
            ("dfa_steps", m.dfa_steps),
            ("frontier_pushes", m.frontier_pushes),
            ("explored_states", r.explored_states as u64),
            ("total_states", r.total_states as u64),
        ] {
            println!("counters/{axis}/{point}/{metric} {value}");
        }
        return;
    }
    println!(
        "{axis:<16} {point:>5} {:>10} {:>8}   {}",
        r.explored_states,
        r.total_states,
        if r.verdict.is_independent() {
            "independent"
        } else {
            "unknown"
        }
    );
}
