//! Prints the E9 explored-vs-total product-state table: for each point of
//! the four `ic_scaling` sweeps, how many product states the lazy engine
//! interned versus the size of the full (never materialized) product the
//! eager pipeline would build. Companion to `scripts/bench_json.sh`; the
//! numbers land in EXPERIMENTS.md E9.
// Intentionally on the deprecated free functions: they recompile the
// automata every iteration, which is the cost these timings have always
// measured. Migrating to the caching `Analyzer` would change the workload
// and invalidate comparisons against the committed baselines.
#![allow(deprecated)]

use regtree_bench::{chain_schema, fd_with_conditions, padded_alphabet, update_chain};
use regtree_core::check_independence;

fn main() {
    let machine = std::env::args().any(|a| a == "--counters");
    if !machine {
        println!("axis             point   explored    total   verdict");
    }
    for &k in &[1usize, 2, 4, 6] {
        let a = regtree_gen::exam_alphabet();
        let r = check_independence(&fd_with_conditions(&a, k), &update_chain(&a, 2), None);
        row("fd_conditions", k, &r, machine);
    }
    for &d in &[1usize, 3, 6, 9] {
        let a = regtree_gen::exam_alphabet();
        let r = check_independence(&fd_with_conditions(&a, 2), &update_chain(&a, d), None);
        row("update_depth", d, &r, machine);
    }
    for &x in &[0usize, 50, 200, 800] {
        let a = padded_alphabet(x);
        let r = check_independence(&fd_with_conditions(&a, 2), &update_chain(&a, 2), None);
        row("alphabet", x, &r, machine);
    }
    for &n in &[2usize, 8, 16, 32] {
        let a = regtree_gen::exam_alphabet();
        let schema = chain_schema(&a, n);
        let r = check_independence(
            &fd_with_conditions(&a, 2),
            &update_chain(&a, 2),
            Some(&schema),
        );
        row("schema_rules", n, &r, machine);
    }
}

fn row(axis: &str, point: usize, r: &regtree_core::IndependenceAnalysis, machine: bool) {
    if machine {
        // Flat keys for scripts/bench_json.sh: counters land in BENCH_ic.json
        // next to the medians so the work done per sweep point is versioned
        // alongside the time it took.
        let m = &r.metrics;
        for (metric, value) in [
            ("states_interned", m.states_interned),
            ("transitions_fired", m.transitions_fired),
            ("guard_intersections", m.guard_intersections),
            ("dfa_steps", m.dfa_steps),
            ("frontier_pushes", m.frontier_pushes),
            ("explored_states", r.explored_states as u64),
            ("total_states", r.total_states as u64),
        ] {
            println!("counters/{axis}/{point}/{metric} {value}");
        }
        return;
    }
    println!(
        "{axis:<16} {point:>5} {:>10} {:>8}   {}",
        r.explored_states,
        r.total_states,
        if r.verdict.is_independent() {
            "independent"
        } else {
            "unknown"
        }
    );
}
