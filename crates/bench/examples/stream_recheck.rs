//! E14: streaming ingest and impact-scoped incremental rechecking vs the
//! reparse-and-recheck baseline, over a size ladder of exam sessions.
//!
//! Two comparisons, printed as flat `stream/<axis>/<point>/<metric>` lines
//! (integers) for `scripts/bench_json.sh` to fold into `BENCH_stream.json`:
//!
//! * `stream/ingest/*` — one-pass [`stream_document`] (document + label
//!   index fused into the parse) against the two-pass baseline
//!   (`parse_document`, then [`LabelIndex::build`]).
//! * `stream/recheck/*` — a stream of point edits applied through an
//!   [`IncrementalChecker`] over a [`VersionedDocument`] against the
//!   naive client loop: serialize, reparse, rebuild the index, recheck
//!   every FD from scratch. The checker's verdict must equal the
//!   reparsed verdict on every step (`parity_mismatches` must stay 0),
//!   and the per-update speedup at the largest point is the headline
//!   number the CI floor in `bench_json.sh` guards.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use regtree_alphabet::Alphabet;
use regtree_core::{
    check_fd, update_class_from_edges, Fd, FdBuilder, FdOutcome, IncrementalChecker, Update,
    UpdateOp,
};
use regtree_gen as gen;
use regtree_xml::{
    parse_document, stream_document, to_xml, LabelIndex, NullSink, VersionedDocument,
};

/// Candidates per session at each ladder point (×3 exams each).
const SIZES: &[usize] = &[50, 200, 800];
/// Point edits per ladder point.
const UPDATES: usize = 40;

/// FDs anchored on the per-candidate context, so a point edit inside one
/// candidate can be rechecked against that candidate alone.
fn candidate_fds(a: &Alphabet) -> Vec<Fd> {
    vec![
        FdBuilder::new(a.clone())
            .context("session/candidate")
            .condition("exam/discipline")
            .target("exam/rank")
            .build()
            .expect("discipline->rank builds"),
        FdBuilder::new(a.clone())
            .context("session/candidate")
            .condition("level")
            .target("firstJob-Year")
            .build()
            .expect("level->firstJob-Year builds"),
    ]
}

/// One point edit: a `FirstOnly` set_text on a rotating leaf kind, so each
/// update touches exactly one node of one candidate.
fn point_edit(a: &Alphabet, step: usize, rng: &mut SmallRng) -> Update {
    let class = |path: &str| update_class_from_edges(a, &[path]).expect("exam path parses");
    let op = match step % 3 {
        0 => (
            "session/candidate/exam/rank",
            rng.gen_range(1..50u32).to_string(),
        ),
        1 => (
            "session/candidate/level",
            ["A", "B", "C", "D", "E"][rng.gen_range(0..5usize)].to_string(),
        ),
        _ => (
            "session/candidate/firstJob-Year",
            (2009 + rng.gen_range(0..5u32)).to_string(),
        ),
    };
    Update::new(
        class(op.0),
        UpdateOp::FirstOnly(Box::new(UpdateOp::SetText(op.1))),
    )
}

fn main() {
    let a = gen::exam_alphabet();
    let fds = candidate_fds(&a);
    for &n in SIZES {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let doc = gen::generate_session(&a, n, 3, &mut rng);
        let xml = to_xml(&doc);

        // Ingest: fused single pass vs parse-then-index.
        let t = Instant::now();
        let (streamed, index) = stream_document(&a, &xml, &mut NullSink).expect("streams");
        let stream_ns = t.elapsed().as_nanos();
        let t = Instant::now();
        let parsed = parse_document(&a, &xml).expect("parses");
        let rebuilt = LabelIndex::build(&parsed);
        let two_pass_ns = t.elapsed().as_nanos();
        assert_eq!(to_xml(&streamed), to_xml(&parsed), "ingest parity");
        assert_eq!(index, rebuilt, "index parity");
        println!("stream/ingest/c{n}/nodes {}", parsed.len());
        println!("stream/ingest/c{n}/stream_ns {stream_ns}");
        println!("stream/ingest/c{n}/two_pass_ns {two_pass_ns}");

        // Recheck: incremental maintenance vs reparse-and-recheck.
        let mut vdoc = VersionedDocument::new(doc);
        let mut checker = IncrementalChecker::new(fds.clone(), &vdoc);
        assert!(checker.all_satisfied(), "generated sessions satisfy fds");
        let mut incremental_ns = 0u128;
        let mut reparse_ns = 0u128;
        let mut localized = 0u64;
        let mut full = 0u64;
        let mut reused = 0u64;
        let mut mismatches = 0u64;
        for step in 0..UPDATES {
            let update = point_edit(&a, step, &mut rng);
            let t = Instant::now();
            let report = checker
                .apply_and_recheck(&mut vdoc, &update)
                .expect("point edits apply");
            incremental_ns += t.elapsed().as_nanos();
            localized += report.metrics.rechecks_localized;
            full += report.metrics.rechecks_full;
            reused += report.metrics.verdicts_reused;

            let t = Instant::now();
            let reparsed = parse_document(&a, &to_xml(vdoc.doc())).expect("roundtrip");
            let _index = LabelIndex::build(&reparsed);
            let baseline: Vec<bool> = fds
                .iter()
                .map(|fd| check_fd(fd, &reparsed).is_ok())
                .collect();
            reparse_ns += t.elapsed().as_nanos();
            for (outcome, base) in report.outcomes.iter().zip(&baseline) {
                let inc = match outcome {
                    FdOutcome::Satisfied => true,
                    FdOutcome::Violated(_) => false,
                    other => panic!("ungoverned check came back {other:?}"),
                };
                if inc != *base {
                    mismatches += 1;
                }
            }
        }
        let per_inc = incremental_ns / UPDATES as u128;
        let per_rep = reparse_ns / UPDATES as u128;
        println!("stream/recheck/c{n}/updates {UPDATES}");
        println!("stream/recheck/c{n}/incremental_ns_per_update {per_inc}");
        println!("stream/recheck/c{n}/reparse_ns_per_update {per_rep}");
        println!(
            "stream/recheck/c{n}/speedup_x100 {}",
            per_rep * 100 / per_inc.max(1)
        );
        println!("stream/recheck/c{n}/rechecks_localized {localized}");
        println!("stream/recheck/c{n}/rechecks_full {full}");
        println!("stream/recheck/c{n}/verdicts_reused {reused}");
        println!("stream/recheck/c{n}/parity_mismatches {mismatches}");
    }
}
