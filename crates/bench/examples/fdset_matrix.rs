//! Prints the FD-set pruning table behind `BENCH_fdset.json`: for
//! `n ∈ {50, 100, 200}` synthetic FDs ([`regtree_bench::fdset_corpus`])
//! against the fixed update-class columns, how many matrix cells the
//! engine actually checked with and without FD-set reasoning
//! ([`regtree_core::Analyzer::matrix_pruned`] vs
//! [`regtree_core::Analyzer::matrix`]), how many rows were dropped as
//! implied, how many verdicts were reused through containment — and that
//! the two paths agree on every cell both computed (`parity_mismatches`
//! must be 0). Companion to `scripts/bench_json.sh`; the numbers land in
//! EXPERIMENTS.md.
//!
//! Modes: default is the human-readable table; `--counters` prints flat
//! `counters/fdset/<n>/<mode>/<metric>` rows for the JSON harness.

use std::time::Instant;

use regtree_bench::{fdset_classes, fdset_corpus};
use regtree_core::{Analyzer, CellProvenance, Fd, UpdateClass};

fn main() {
    let machine = std::env::args().any(|a| a == "--counters");
    if !machine {
        println!("n     mode       cells  implied  reused  mismatch   wall_ms");
    }
    for &n in &[50usize, 100, 200] {
        let a = regtree_alphabet::Alphabet::new();
        let fds = fdset_corpus(&a, n);
        let classes = fdset_classes(&a);
        let fd_refs: Vec<(&str, &Fd)> = fds.iter().map(|(s, f)| (s.as_str(), f)).collect();
        let class_refs: Vec<(&str, &UpdateClass)> =
            classes.iter().map(|(s, c)| (s.as_str(), c)).collect();

        // Fresh analyzers per mode so neither run rides the other's
        // pattern-compilation cache.
        let t0 = Instant::now();
        let plain = Analyzer::builder().build().matrix(&fd_refs, &class_refs);
        let plain_nanos = t0.elapsed().as_nanos();

        let t1 = Instant::now();
        let pruned = Analyzer::builder()
            .build()
            .matrix_pruned(&fd_refs, &class_refs);
        let pruned_nanos = t1.elapsed().as_nanos();

        let mut mismatches = 0usize;
        for (p, q) in plain.cells.iter().zip(&pruned.cells) {
            // Implied rows carry a placeholder verdict, not a computation.
            if matches!(q.provenance, CellProvenance::ImpliedRow { .. }) {
                continue;
            }
            if p.verdict.is_independent() != q.verdict.is_independent() {
                mismatches += 1;
            }
        }

        let total = n * classes.len();
        if machine {
            println!("counters/fdset/{n}/unpruned/cells_checked {total}");
            println!("counters/fdset/{n}/unpruned/wall_nanos {plain_nanos}");
            println!(
                "counters/fdset/{n}/pruned/cells_checked {}",
                pruned.computed_count()
            );
            println!(
                "counters/fdset/{n}/pruned/rows_implied {}",
                pruned.implied_row_count()
            );
            println!(
                "counters/fdset/{n}/pruned/verdicts_reused {}",
                pruned.reused_count()
            );
            println!("counters/fdset/{n}/pruned/wall_nanos {pruned_nanos}");
            println!("counters/fdset/{n}/pruned/parity_mismatches {mismatches}");
        } else {
            println!(
                "{n:<5} unpruned  {total:>6}        -       -         -  {:>8.2}",
                plain_nanos as f64 / 1e6
            );
            println!(
                "{n:<5} pruned    {:>6}  {:>7}  {:>6}  {mismatches:>8}  {:>8.2}",
                pruned.computed_count(),
                pruned.implied_row_count(),
                pruned.reused_count(),
                pruned_nanos as f64 / 1e6
            );
        }
        assert_eq!(mismatches, 0, "pruned/unpruned parity violated at n={n}");
    }
}
