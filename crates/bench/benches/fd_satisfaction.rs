//! E4 — Figures 4–5: FD satisfaction checking (Definition 5) on exam
//! sessions of growing size, for the path-style `fd1` and the
//! beyond-[8] `fd3`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::{session, CANDIDATE_COUNTS};
use regtree_core::satisfies;

fn bench_fd(c: &mut Criterion) {
    let a = regtree_gen::exam_alphabet();
    let fd1 = regtree_gen::fd1(&a);
    let fd2 = regtree_gen::fd2(&a);
    let fd3 = regtree_gen::fd3(&a);

    let mut group = c.benchmark_group("fd_satisfaction");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        group.bench_with_input(BenchmarkId::new("fd1_discipline_mark_rank", n), &doc, |b, d| {
            b.iter(|| assert!(satisfies(&fd1, d)))
        });
        group.bench_with_input(BenchmarkId::new("fd2_node_equality", n), &doc, |b, d| {
            b.iter(|| assert!(satisfies(&fd2, d)))
        });
    }
    group.finish();

    // fd3 relates every pair of exams per candidate: quadratic per
    // candidate, keep instances smaller.
    let mut g3 = c.benchmark_group("fd_satisfaction_fd3");
    g3.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[10usize, 50, 200] {
        let doc = session(&a, n);
        g3.bench_with_input(BenchmarkId::new("fd3_two_marks_level", n), &doc, |b, d| {
            b.iter(|| assert!(satisfies(&fd3, d)))
        });
    }
    g3.finish();
}

criterion_group!(benches, bench_fd);
criterion_main!(benches);
