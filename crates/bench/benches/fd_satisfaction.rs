//! E4 — Figures 4–5: FD satisfaction checking (Definition 5) on exam
//! sessions of growing size, for the path-style `fd1` and the
//! beyond-[8] `fd3`.
// Each iteration runs on a fresh `Analyzer` (`regtree_bench::fresh_*`):
// the automata are recompiled every call, which is the cost these timings
// have always measured. Reusing one cached `Analyzer` across iterations
// would change the workload and invalidate the committed baselines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::{session, CANDIDATE_COUNTS};
use regtree_core::{satisfies, Analyzer};
use regtree_pattern::{enumerate_mappings, enumerate_mappings_nfa};

fn bench_fd(c: &mut Criterion) {
    let a = regtree_gen::exam_alphabet();
    let fd1 = regtree_gen::fd1(&a);
    let fd2 = regtree_gen::fd2(&a);
    let fd3 = regtree_gen::fd3(&a);

    let mut group = c.benchmark_group("fd_satisfaction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        group.bench_with_input(
            BenchmarkId::new("fd1_discipline_mark_rank", n),
            &doc,
            |b, d| b.iter(|| assert!(satisfies(&fd1, d))),
        );
        group.bench_with_input(BenchmarkId::new("fd2_node_equality", n), &doc, |b, d| {
            b.iter(|| assert!(satisfies(&fd2, d)))
        });
    }
    group.finish();

    // Engine substrate of the check: Definition-5 verification is
    // dominated by mapping enumeration, so the DFA-vs-NFA engine ratio is
    // what the full check inherits.
    let mut ge = c.benchmark_group("fd_satisfaction_engines");
    ge.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[200usize, 1000] {
        let doc = session(&a, n);
        ge.bench_with_input(BenchmarkId::new("fd1_mappings_dfa", n), &doc, |b, d| {
            b.iter(|| enumerate_mappings(fd1.template(), d).len())
        });
        ge.bench_with_input(BenchmarkId::new("fd1_mappings_nfa", n), &doc, |b, d| {
            b.iter(|| enumerate_mappings_nfa(fd1.template(), d).len())
        });
    }
    ge.finish();

    // Batch maintenance: four FDs on one document, sequentially vs fanned
    // out over scoped worker threads (shared label index).
    let fds = vec![
        regtree_gen::fd1(&a),
        regtree_gen::fd2(&a),
        regtree_gen::fd4(&a),
        regtree_gen::fd5(&a),
    ];
    let mut gb = c.benchmark_group("fd_satisfaction_batch");
    gb.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[200usize, 1000] {
        let doc = session(&a, n);
        gb.bench_with_input(BenchmarkId::new("sequential_4fds", n), &doc, |b, d| {
            b.iter(|| fds.iter().filter(|fd| satisfies(fd, d)).count())
        });
        gb.bench_with_input(BenchmarkId::new("parallel_4fds", n), &doc, |b, d| {
            b.iter(|| {
                Analyzer::builder()
                    .build()
                    .check_fds(&fds, d)
                    .outcomes
                    .iter()
                    .filter(|o| o.is_satisfied())
                    .count()
            })
        });
    }
    gb.finish();

    // fd3 relates every pair of exams per candidate: quadratic per
    // candidate, keep instances smaller.
    let mut g3 = c.benchmark_group("fd_satisfaction_fd3");
    g3.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[10usize, 50, 200] {
        let doc = session(&a, n);
        g3.bench_with_input(BenchmarkId::new("fd3_two_marks_level", n), &doc, |b, d| {
            b.iter(|| assert!(satisfies(&fd3, d)))
        });
    }
    g3.finish();
}

criterion_group!(benches, bench_fd);
criterion_main!(benches);
