//! Substrate bench: the word-automata toolbox (Thompson construction,
//! subset construction, product, emptiness, minimization) that everything
//! above is built from.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_automata::{parse_regex, Dfa, LangSampler, Nfa};
use regtree_bench::rng;
use regtree_gen::random_proper_regex;

fn bench_automata(c: &mut Criterion) {
    let a = regtree_alphabet::Alphabet::with_labels(["p", "q", "r"]);
    let labels: Vec<_> = ["p", "q", "r"].iter().map(|l| a.intern(l)).collect();

    let mut group = c.benchmark_group("automata_ops");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for &size in &[8usize, 32, 128] {
        let mut r = rng();
        let regex = random_proper_regex(&labels, size, &mut r);
        let regex2 = random_proper_regex(&labels, size, &mut r);

        group.bench_with_input(BenchmarkId::new("thompson", size), &size, |b, _| {
            b.iter(|| Nfa::from_regex(&regex).num_states())
        });
        let nfa = Nfa::from_regex(&regex);
        let nfa2 = Nfa::from_regex(&regex2);
        group.bench_with_input(BenchmarkId::new("determinize", size), &size, |b, _| {
            b.iter(|| Dfa::from_nfa(&nfa, &[]).num_states())
        });
        let d1 = Dfa::from_nfa(&nfa, &[labels[0].0, labels[1].0, labels[2].0]);
        let d2 = Dfa::from_nfa(&nfa2, &[labels[0].0, labels[1].0, labels[2].0]);
        group.bench_with_input(
            BenchmarkId::new("product_emptiness", size),
            &size,
            |b, _| b.iter(|| d1.intersect(&d2).is_empty_language()),
        );
        group.bench_with_input(BenchmarkId::new("minimize", size), &size, |b, _| {
            b.iter(|| d1.minimize().num_states())
        });
        group.bench_with_input(BenchmarkId::new("sample_words", size), &size, |b, _| {
            let sampler = LangSampler::new(&nfa, &[]);
            let mut r = rng();
            b.iter(|| sampler.sample(&mut r, 16).map(|w| w.len()))
        });
    }

    // Membership throughput on a fixed mid-size machine.
    let fixed = parse_regex(&a, "(p|q)*/r/(p/q)+/r?").expect("parses");
    let nfa = Nfa::from_regex(&fixed);
    let dfa = Dfa::from_nfa(&nfa, &[]);
    let word: Vec<u32> = {
        let p = a.intern("p").0;
        let q = a.intern("q").0;
        let r = a.intern("r").0;
        let mut w = Vec::new();
        for _ in 0..200 {
            w.extend_from_slice(&[p, q]);
        }
        w.push(r);
        for _ in 0..100 {
            w.extend_from_slice(&[p, q]);
        }
        w
    };
    group.bench_function("nfa_membership_500", |b| b.iter(|| nfa.accepts(&word)));
    group.bench_function("dfa_membership_500", |b| b.iter(|| dfa.accepts(&word)));
    group.finish();
}

criterion_group!(benches, bench_automata);
criterion_main!(benches);
