//! E9 — Proposition 3: the independence criterion is polynomial. Four
//! one-dimensional sweeps, each growing exactly one parameter of the bound
//! `O(a_U a_FD² · |Σ|⁴ · |A_S| · |U|² · |FD|²)`:
//!
//! * `vs_fd_conditions` — number of FD conditions (grows `|FD|` and `a_FD`);
//! * `vs_update_depth` — update-template chain depth (grows `|U|`);
//! * `vs_alphabet` — filler labels (grows `|Σ|`);
//! * `vs_schema_rules` — schema rule count (grows `|A_S|`).
//!
//! Every axis is measured twice: `*_lazy` runs the on-the-fly product
//! emptiness (a fresh [`regtree_core::Analyzer`] per call), `*_eager` materializes the full
//! FD×U×bit×schema product first ([`check_independence_eager`]). The
//! absolute times are implementation-specific; what reproduces the paper's
//! claim is the *polynomial shape* of each curve, and what the lazy engine
//! adds is a constant-factor collapse that widens with `|A_S|` (see
//! EXPERIMENTS.md E9, which also records explored-vs-total state counts).
// Each iteration runs on a fresh `Analyzer` (`regtree_bench::fresh_*`):
// the automata are recompiled every call, which is the cost these timings
// have always measured. Reusing one cached `Analyzer` across iterations
// would change the workload and invalidate the committed baselines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::{
    chain_schema, fd_with_conditions, fresh_independence, padded_alphabet, update_chain,
};
use regtree_core::check_independence_eager;

fn bench_ic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ic_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // |FD| axis.
    for &k in &[1usize, 2, 4, 6] {
        let a = regtree_gen::exam_alphabet();
        let fd = fd_with_conditions(&a, k);
        let class = update_chain(&a, 2);
        group.bench_with_input(BenchmarkId::new("vs_fd_conditions_lazy", k), &k, |b, _| {
            b.iter(|| fresh_independence(&fd, &class, None).explored_states)
        });
        group.bench_with_input(BenchmarkId::new("vs_fd_conditions_eager", k), &k, |b, _| {
            b.iter(|| check_independence_eager(&fd, &class, None).ic_states)
        });
    }

    // |U| axis.
    for &depth in &[1usize, 3, 6, 9] {
        let a = regtree_gen::exam_alphabet();
        let fd = fd_with_conditions(&a, 2);
        let class = update_chain(&a, depth);
        group.bench_with_input(
            BenchmarkId::new("vs_update_depth_lazy", depth),
            &depth,
            |b, _| b.iter(|| fresh_independence(&fd, &class, None).explored_states),
        );
        group.bench_with_input(
            BenchmarkId::new("vs_update_depth_eager", depth),
            &depth,
            |b, _| b.iter(|| check_independence_eager(&fd, &class, None).ic_states),
        );
    }

    // |Σ| axis.
    for &extra in &[0usize, 50, 200, 800] {
        let a = padded_alphabet(extra);
        let fd = fd_with_conditions(&a, 2);
        let class = update_chain(&a, 2);
        group.bench_with_input(
            BenchmarkId::new("vs_alphabet_lazy", extra),
            &extra,
            |b, _| b.iter(|| fresh_independence(&fd, &class, None).explored_states),
        );
        group.bench_with_input(
            BenchmarkId::new("vs_alphabet_eager", extra),
            &extra,
            |b, _| b.iter(|| check_independence_eager(&fd, &class, None).ic_states),
        );
    }

    // |A_S| axis.
    for &rules in &[2usize, 8, 16, 32] {
        let a = regtree_gen::exam_alphabet();
        let fd = fd_with_conditions(&a, 2);
        let class = update_chain(&a, 2);
        let schema = chain_schema(&a, rules);
        group.bench_with_input(
            BenchmarkId::new("vs_schema_rules_lazy", rules),
            &rules,
            |b, _| b.iter(|| fresh_independence(&fd, &class, Some(&schema)).explored_states),
        );
        group.bench_with_input(
            BenchmarkId::new("vs_schema_rules_eager", rules),
            &rules,
            |b, _| b.iter(|| check_independence_eager(&fd, &class, Some(&schema)).automaton_size),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ic_scaling);
criterion_main!(benches);
