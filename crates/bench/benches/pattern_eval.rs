//! E2 — Figure 2: pattern evaluation (`R1`, `R2`) on exam sessions of
//! growing size, for both the mapping enumerator and the compiled
//! automaton (containment test).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::{session, CANDIDATE_COUNTS};
use regtree_pattern::compile_pattern;

fn bench_eval(c: &mut Criterion) {
    let a = regtree_gen::exam_alphabet();
    let r2 = regtree_gen::pattern_r2(&a);
    let r3 = regtree_gen::pattern_r3(&a);

    let mut group = c.benchmark_group("pattern_eval");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        // R2 scales linearly (per-candidate pairs); R1's quadratic blowup is
        // benchmarked separately on smaller instances below.
        group.bench_with_input(BenchmarkId::new("R2_same_candidate", n), &doc, |b, d| {
            b.iter(|| regtree_gen::pattern_r2(&a).evaluate(d).len())
        });
        group.bench_with_input(BenchmarkId::new("R3_monadic", n), &doc, |b, d| {
            b.iter(|| r3.evaluate(d).len())
        });
        let auto = compile_pattern(&r2, false);
        group.bench_with_input(BenchmarkId::new("R2_automaton_contains", n), &doc, |b, d| {
            b.iter(|| auto.accepts(d))
        });
    }
    group.finish();

    let mut quad = c.benchmark_group("pattern_eval_quadratic");
    quad.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[5usize, 10, 20, 40] {
        let doc = session(&a, n);
        quad.bench_with_input(BenchmarkId::new("R1_cross_candidate", n), &doc, |b, d| {
            b.iter(|| regtree_gen::pattern_r1(&a).evaluate(d).len())
        });
    }
    quad.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
