//! E2 — Figure 2: pattern evaluation (`R1`, `R2`) on exam sessions of
//! growing size, for both the mapping enumerator and the compiled
//! automaton (containment test); plus the DFA-vs-NFA engine comparison
//! (cached edge determinization + label-index pruning against the
//! state-set baseline).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::{session, CANDIDATE_COUNTS};
use regtree_pattern::{compile_pattern, enumerate_mappings, enumerate_mappings_nfa, evaluate_many};

fn bench_eval(c: &mut Criterion) {
    let a = regtree_gen::exam_alphabet();
    let r2 = regtree_gen::pattern_r2(&a);
    let r3 = regtree_gen::pattern_r3(&a);

    let mut group = c.benchmark_group("pattern_eval");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        // R2 scales linearly (per-candidate pairs); R1's quadratic blowup is
        // benchmarked separately on smaller instances below.
        group.bench_with_input(BenchmarkId::new("R2_same_candidate", n), &doc, |b, d| {
            b.iter(|| regtree_gen::pattern_r2(&a).evaluate(d).len())
        });
        group.bench_with_input(BenchmarkId::new("R3_monadic", n), &doc, |b, d| {
            b.iter(|| r3.evaluate(d).len())
        });
        let auto = compile_pattern(&r2, false);
        group.bench_with_input(
            BenchmarkId::new("R2_automaton_contains", n),
            &doc,
            |b, d| b.iter(|| auto.accepts(d)),
        );
    }
    group.finish();

    // Same enumeration, two engines: the production DFA engine (cached
    // edge determinization, label-index subtree pruning) against the NFA
    // state-set baseline it replaced.
    let mut engines = c.benchmark_group("pattern_eval_engines");
    engines
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        engines.bench_with_input(BenchmarkId::new("R2_dfa_indexed", n), &doc, |b, d| {
            b.iter(|| enumerate_mappings(r2.template(), d).len())
        });
        engines.bench_with_input(BenchmarkId::new("R2_nfa_baseline", n), &doc, |b, d| {
            b.iter(|| enumerate_mappings_nfa(r2.template(), d).len())
        });
        engines.bench_with_input(BenchmarkId::new("R3_dfa_indexed", n), &doc, |b, d| {
            b.iter(|| enumerate_mappings(r3.template(), d).len())
        });
        engines.bench_with_input(BenchmarkId::new("R3_nfa_baseline", n), &doc, |b, d| {
            b.iter(|| enumerate_mappings_nfa(r3.template(), d).len())
        });
    }
    engines.finish();

    // Batch API: R2+R3 on four documents at once, scoped worker threads.
    let mut batch = c.benchmark_group("pattern_eval_batch");
    batch
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let patterns = vec![regtree_gen::pattern_r2(&a), regtree_gen::pattern_r3(&a)];
    let docs: Vec<_> = CANDIDATE_COUNTS.iter().map(|&n| session(&a, n)).collect();
    batch.bench_function("evaluate_many_2x4", |b| {
        b.iter(|| evaluate_many(&patterns, &docs).len())
    });
    batch.bench_function("evaluate_sequential_2x4", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| patterns.iter().map(|p| p.evaluate(d).len()).sum::<usize>())
                .sum::<usize>()
        })
    });
    batch.finish();

    let mut quad = c.benchmark_group("pattern_eval_quadratic");
    quad.sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[5usize, 10, 20, 40] {
        let doc = session(&a, n);
        quad.bench_with_input(BenchmarkId::new("R1_cross_candidate", n), &doc, |b, d| {
            b.iter(|| regtree_gen::pattern_r1(&a).evaluate(d).len())
        });
    }
    quad.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
