//! E10 — the study the paper's conclusion asks for: “estimate how much
//! time it saves to launch the independence criterion instead of verifying
//! the functional dependency again.”
//!
//! Three maintenance strategies for `fd1` under a stream of level updates
//! (a class the criterion proves independent):
//!
//! * `revalidate_full`  — apply + full re-verification, per document size;
//! * `incremental`      — [14]-style stored-state recheck, per document size;
//! * `criterion_once`   — the IC, **independent of any document**.
//!
//! The expected shape: the first two grow with the document, the criterion
//! is flat — so a crossover exists past which the criterion wins for every
//! further update.
// Each iteration runs on a fresh `Analyzer` (`regtree_bench::fresh_*`):
// the automata are recompiled every call, which is the cost these timings
// have always measured. Reusing one cached `Analyzer` across iterations
// would change the workload and invalidate the committed baselines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::{
    fd_with_conditions, fresh_independence, fresh_matrix, session, update_chain, CANDIDATE_COUNTS,
};
use regtree_core::{
    check_independence_eager, revalidate_full, revalidate_full_many, RelevantSetChecker, Update,
    UpdateOp,
};

fn bench_strategies(c: &mut Criterion) {
    let a = regtree_gen::exam_alphabet();
    let fd1 = regtree_gen::fd1(&a);
    let schema = regtree_gen::exam_schema(&a);
    let class = regtree_core::UpdateClass::new(
        regtree_pattern::parse_corexpath(&a, "/session/candidate/level").expect("parses"),
    )
    .expect("leaf");
    let update = Update::new(class.clone(), UpdateOp::SetText("E".into()));

    let mut group = c.benchmark_group("ic_vs_revalidation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // The document-independent criterion (one point, not a curve).
    group.bench_function("criterion_once", |b| {
        b.iter(|| {
            let r = fresh_independence(&fd1, &class, Some(&schema));
            assert!(r.verdict.is_independent());
            r.automaton_size
        })
    });

    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        group.bench_with_input(BenchmarkId::new("revalidate_full", n), &doc, |b, d| {
            b.iter(|| revalidate_full(&fd1, &update, d).expect("applies").is_ok())
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &doc, |b, d| {
            // Snapshot once outside the timing loop (amortized across the
            // update stream), recheck inside.
            let checker = RelevantSetChecker::new(&fd1, d);
            b.iter(|| {
                let mut doc = d.clone();
                let mut ck = checker.clone();
                ck.recheck(&fd1, &update, &mut doc).expect("applies")
            })
        });
    }
    group.finish();

    // Maintaining several FDs at once: one apply, parallel re-checks.
    let fds = vec![
        regtree_gen::fd1(&a),
        regtree_gen::fd2(&a),
        regtree_gen::fd5(&a),
    ];
    let mut many = c.benchmark_group("ic_vs_revalidation_batch");
    many.sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[200usize, 1000] {
        let doc = session(&a, n);
        many.bench_with_input(
            BenchmarkId::new("revalidate_3fds_sequential", n),
            &doc,
            |b, d| {
                b.iter(|| {
                    fds.iter()
                        .filter(|fd| revalidate_full(fd, &update, d).expect("applies").is_ok())
                        .count()
                })
            },
        );
        many.bench_with_input(
            BenchmarkId::new("revalidate_3fds_parallel", n),
            &doc,
            |b, d| {
                b.iter(|| {
                    let mut doc = d.clone();
                    revalidate_full_many(&fds, &update, &mut doc)
                        .expect("applies")
                        .iter()
                        .filter(|r| r.is_ok())
                        .count()
                })
            },
        );
    }
    many.finish();

    // The scheduling-table deployment: a whole FD-set × class-set matrix.
    // The matrix shares schema/pattern compilation and the guard
    // partition across cells and runs them on worker threads; the eager
    // baseline pays the full per-cell pipeline.
    let fds: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&k| fd_with_conditions(&a, k))
        .collect();
    let classes: Vec<_> = [1usize, 3, 6]
        .iter()
        .map(|&d| update_chain(&a, d))
        .collect();
    let fd_refs: Vec<(&str, &regtree_core::Fd)> = fds.iter().map(|fd| ("fd", fd)).collect();
    let class_refs: Vec<(&str, &regtree_core::UpdateClass)> =
        classes.iter().map(|c| ("class", c)).collect();
    let mut matrix = c.benchmark_group("independence_matrix");
    matrix
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    matrix.bench_function("matrix_3x3_lazy_shared", |b| {
        b.iter(|| fresh_matrix(&fd_refs, &class_refs, Some(&schema)).independent_count())
    });
    matrix.bench_function("matrix_3x3_eager_cells", |b| {
        b.iter(|| {
            fds.iter()
                .flat_map(|fd| classes.iter().map(move |class| (fd, class)))
                .filter(|(fd, class)| {
                    check_independence_eager(fd, class, Some(&schema))
                        .verdict
                        .is_independent()
                })
                .count()
        })
    });
    matrix.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
