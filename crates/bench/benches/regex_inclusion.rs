//! E7 — Proposition 1: the problem the independence question embeds is
//! regular-expression inclusion (PSPACE-hard). This bench shows the
//! exponential determinization blow-up on the classical family
//! `η_n = (a|b)*·a·(a|b)ⁿ` (its minimal DFA has 2ⁿ⁺¹ states), compares the
//! classical and antichain engines, and contrasts both with the
//! *polynomial* IC running on reduction gadgets of the same size.
// Each iteration runs on a fresh `Analyzer` (`regtree_bench::fresh_*`):
// the automata are recompiled every call, which is the cost these timings
// have always measured. Reusing one cached `Analyzer` across iterations
// would change the workload and invalidate the committed baselines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_automata::{inclusion, parse_regex, Dfa, Nfa, Regex};
use regtree_bench::fresh_independence;
use regtree_core::{build_patterns, gadget_alphabet};

/// `(a|b)* a (a|b)^n` over the gadget labels B, D.
fn hard_regex(n: usize) -> String {
    let mut s = String::from("(B|D)*/B");
    for _ in 0..n {
        s.push_str("/(B|D)");
    }
    s
}

fn bench_inclusion(c: &mut Criterion) {
    let a = gadget_alphabet();
    let mut group = c.benchmark_group("regex_inclusion");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for &n in &[2usize, 4, 6, 8] {
        let eta = parse_regex(&a, &hard_regex(n)).expect("parses");
        let etap = parse_regex(&a, &format!("({})?", hard_regex(n))).expect("parses");

        // Exponential: full determinization of η_n.
        group.bench_with_input(BenchmarkId::new("determinize_blowup", n), &n, |b, _| {
            b.iter(|| {
                let d = Dfa::from_nfa(&Nfa::from_regex(&eta), &[]);
                d.minimize().num_states()
            })
        });
        // Classical inclusion via complement+product.
        group.bench_with_input(BenchmarkId::new("dfa_inclusion", n), &n, |b, _| {
            b.iter(|| {
                let da = Dfa::from_nfa(&Nfa::from_regex(&eta), &[]);
                let db = Dfa::from_nfa(&Nfa::from_regex(&etap), &[]);
                inclusion::dfa_included(&da, &db).is_ok()
            })
        });
        // Antichain inclusion (usually much better).
        group.bench_with_input(BenchmarkId::new("antichain_inclusion", n), &n, |b, _| {
            b.iter(|| {
                let na = Nfa::from_regex(&eta);
                let nb = Nfa::from_regex(&etap);
                inclusion::nfa_included(&na, &nb, &[]).is_ok()
            })
        });
        // The polynomial criterion on the corresponding reduction gadgets —
        // it does not decide inclusion, it answers the (weaker) sufficient
        // question in time polynomial in the same input.
        let eta_r: Regex = eta.clone();
        let etap_r: Regex = etap.clone();
        group.bench_with_input(BenchmarkId::new("ic_on_gadgets", n), &n, |b, _| {
            b.iter(|| {
                let (fd, class) = build_patterns(&a, &eta_r, &etap_r);
                fresh_independence(&fd, &class, None).ic_states
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inclusion);
criterion_main!(benches);
