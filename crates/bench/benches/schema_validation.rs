//! Substrate bench: bottom-up tree-automaton runs (`A_S` validation) on
//! growing documents — the workhorse inside every IC emptiness test.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use regtree_bench::{session, CANDIDATE_COUNTS};

fn bench_validation(c: &mut Criterion) {
    let a = regtree_gen::exam_alphabet();
    let schema = regtree_gen::exam_schema(&a);
    let automaton = schema.compile();

    let mut group = c.benchmark_group("schema_validation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        group.throughput(Throughput::Elements(doc.len() as u64));
        group.bench_with_input(BenchmarkId::new("hedge_run", n), &doc, |b, d| {
            b.iter(|| assert!(automaton.accepts(d)))
        });
        group.bench_with_input(BenchmarkId::new("validate_diagnostics", n), &doc, |b, d| {
            b.iter(|| schema.validate(d).is_ok())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
