//! E9 companion — pattern → tree-automaton compilation (the `A_R`
//! construction of Proposition 3) and CoreXPath translation costs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::rng;
use regtree_gen::random_pattern;
use regtree_pattern::{compile_pattern, parse_corexpath};

fn bench_compile(c: &mut Criterion) {
    let a = regtree_alphabet::Alphabet::with_labels(["p", "q", "r", "s"]);
    let labels: Vec<_> = ["p", "q", "r", "s"].iter().map(|l| a.intern(l)).collect();

    let mut group = c.benchmark_group("pattern_compile");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for &edges in &[2usize, 6, 12, 24] {
        let mut r = rng();
        let pattern = random_pattern(&a, &labels, edges, &mut r);
        group.bench_with_input(BenchmarkId::new("compile_plain", edges), &edges, |b, _| {
            b.iter(|| compile_pattern(&pattern, false).automaton.size())
        });
        group.bench_with_input(BenchmarkId::new("compile_marked", edges), &edges, |b, _| {
            b.iter(|| compile_pattern(&pattern, true).automaton.size())
        });
    }

    // CoreXPath translation.
    let xpaths = [
        "/a/b/c/d",
        "/a//b[c]/d",
        "/a/b[c and d]//e[f/g]",
        "/session/candidate[toBePassed]/level",
    ];
    for (i, xp) in xpaths.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("corexpath_translate", i), xp, |b, xp| {
            b.iter(|| parse_corexpath(&a, xp).expect("parses").size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
