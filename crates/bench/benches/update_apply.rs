//! Section 4 — executing updates: selection (pattern evaluation) plus
//! subtree replacement, on growing documents.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regtree_bench::{session, CANDIDATE_COUNTS};
use regtree_core::{Update, UpdateOp};
use regtree_xml::TreeSpec;

fn bench_updates(c: &mut Criterion) {
    let a = regtree_gen::exam_alphabet();
    let mut group = c.benchmark_group("update_apply");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &CANDIDATE_COUNTS {
        let doc = session(&a, n);
        let q1 = regtree_gen::update_q1(&a);
        group.bench_with_input(BenchmarkId::new("q1_decrease_levels", n), &doc, |b, d| {
            b.iter(|| q1.apply_cloned(d).expect("applies").len())
        });
        let q2 = regtree_gen::update_q2(&a);
        group.bench_with_input(BenchmarkId::new("q2_append_comment", n), &doc, |b, d| {
            b.iter(|| q2.apply_cloned(d).expect("applies").len())
        });
        let replace = Update::new(
            regtree_gen::update_class_u(&a),
            UpdateOp::Replace(TreeSpec::elem_named(&a, "level", vec![TreeSpec::text("E")])),
        );
        group.bench_with_input(
            BenchmarkId::new("replace_level_subtrees", n),
            &doc,
            |b, d| b.iter(|| replace.apply_cloned(d).expect("applies").len()),
        );
        group.bench_with_input(BenchmarkId::new("selection_only", n), &doc, |b, d| {
            b.iter(|| regtree_gen::update_class_u(&a).selected_nodes(d).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
