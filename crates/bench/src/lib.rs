//! Shared helpers for the `regtree` benchmark harness.
//!
//! Every bench regenerates one experiment of `EXPERIMENTS.md` (which maps
//! them back to the paper's figures and propositions). The helpers keep the
//! workloads identical across benches: deterministic seeds, the exam-session
//! generator of the running example, and the parameterized FD/update
//! families used by the Proposition 3 scaling study.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

use regtree_alphabet::Alphabet;
use regtree_core::{Fd, FdBuilder, UpdateClass};
use regtree_pattern::{RegularTreePattern, Template};
use regtree_xml::Document;

/// Deterministic RNG shared by all benches.
pub fn rng() -> SmallRng {
    SmallRng::seed_from_u64(0x2010_0322)
}

/// Document sizes (candidate counts) used by the document-scaling benches.
pub const CANDIDATE_COUNTS: [usize; 4] = [10, 50, 200, 1000];

/// An exam session with `n` candidates (3 exams each), deterministic.
pub fn session(a: &Alphabet, n: usize) -> Document {
    let mut r = rng();
    regtree_gen::generate_session(a, n, 3, &mut r)
}

/// An FD with `k` conditions over a chain alphabet: context `c`, conditions
/// `c/p0/v … c/p(k-1)/v`, target `c/t/v`. `|FD|` grows linearly with `k`.
pub fn fd_with_conditions(a: &Alphabet, k: usize) -> Fd {
    let mut b = FdBuilder::new(a.clone()).context("ctx");
    for i in 0..k {
        b = b.condition(&format!("p{i}/v"));
    }
    b.target("t/v").build().expect("fd builds")
}

/// An update class whose template is a chain of `depth` single-label edges
/// (distinct labels, so `|U|` grows linearly with `depth`).
pub fn update_chain(a: &Alphabet, depth: usize) -> UpdateClass {
    let mut t = Template::new(a.clone());
    let mut cur = t.root();
    for i in 0..depth.max(1) {
        cur = t.add_child_str(cur, &format!("u{i}")).expect("proper");
    }
    UpdateClass::new(RegularTreePattern::monadic(t, cur).expect("valid")).expect("leaf")
}

/// A DTD-like schema with `n` element rules (linear `|A_S|` growth); rule
/// `si` allows children `s(i+1)*`.
pub fn chain_schema(a: &Alphabet, n: usize) -> regtree_hedge::Schema {
    let mut text = String::from("root: s0*\n");
    for i in 0..n {
        if i + 1 < n {
            text.push_str(&format!("s{i}: s{}*\n", i + 1));
        } else {
            text.push_str(&format!("s{i}: EMPTY\n"));
        }
    }
    regtree_hedge::Schema::parse(a, &text).expect("schema parses")
}

/// An alphabet with `extra` filler labels beyond the exam vocabulary
/// (for the `|Σ|` axis of the Proposition 3 study).
pub fn padded_alphabet(extra: usize) -> Alphabet {
    let a = regtree_gen::exam_alphabet();
    for i in 0..extra {
        a.intern(&format!("filler{i}"));
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let a = regtree_gen::exam_alphabet();
        assert!(session(&a, 5).len() > 50);
        let fd = fd_with_conditions(&a, 3);
        assert_eq!(fd.conditions().len(), 3);
        let u = update_chain(&a, 4);
        assert!(u.size() > 0);
        let s = chain_schema(&a, 3);
        assert_eq!(s.rules().len(), 3);
        assert!(padded_alphabet(10).len() >= 21);
    }

    #[test]
    fn fd_size_grows_with_conditions() {
        let a = regtree_gen::exam_alphabet();
        let s1 = fd_with_conditions(&a, 1).size();
        let s8 = fd_with_conditions(&a, 8).size();
        assert!(s8 > s1);
    }
}
