//! Shared helpers for the `regtree` benchmark harness.
//!
//! Every bench regenerates one experiment of `EXPERIMENTS.md` (which maps
//! them back to the paper's figures and propositions). The helpers keep the
//! workloads identical across benches: deterministic seeds, the exam-session
//! generator of the running example, and the parameterized FD/update
//! families used by the Proposition 3 scaling study.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

use regtree_alphabet::Alphabet;
use regtree_core::{
    update_class_from_edges, Analyzer, Fd, FdBuilder, IndependenceAnalysis, IndependenceMatrix,
    PathFd, UpdateClass,
};
use regtree_hedge::Schema;
use regtree_pattern::{RegularTreePattern, Template};
use regtree_xml::Document;

/// Deterministic RNG shared by all benches.
pub fn rng() -> SmallRng {
    SmallRng::seed_from_u64(0x2010_0322)
}

/// Document sizes (candidate counts) used by the document-scaling benches.
pub const CANDIDATE_COUNTS: [usize; 4] = [10, 50, 200, 1000];

/// An exam session with `n` candidates (3 exams each), deterministic.
pub fn session(a: &Alphabet, n: usize) -> Document {
    let mut r = rng();
    regtree_gen::generate_session(a, n, 3, &mut r)
}

/// An FD with `k` conditions over a chain alphabet: context `c`, conditions
/// `c/p0/v … c/p(k-1)/v`, target `c/t/v`. `|FD|` grows linearly with `k`.
pub fn fd_with_conditions(a: &Alphabet, k: usize) -> Fd {
    let mut b = FdBuilder::new(a.clone()).context("ctx");
    for i in 0..k {
        b = b.condition(&format!("p{i}/v"));
    }
    b.target("t/v").build().expect("fd builds")
}

/// An update class whose template is a chain of `depth` single-label edges
/// (distinct labels, so `|U|` grows linearly with `depth`).
pub fn update_chain(a: &Alphabet, depth: usize) -> UpdateClass {
    let mut t = Template::new(a.clone());
    let mut cur = t.root();
    for i in 0..depth.max(1) {
        cur = t.add_child_str(cur, &format!("u{i}")).expect("proper");
    }
    UpdateClass::new(RegularTreePattern::monadic(t, cur).expect("valid")).expect("leaf")
}

/// A DTD-like schema with `n` element rules (linear `|A_S|` growth); rule
/// `si` allows children `s(i+1)*`.
pub fn chain_schema(a: &Alphabet, n: usize) -> regtree_hedge::Schema {
    let mut text = String::from("root: s0*\n");
    for i in 0..n {
        if i + 1 < n {
            text.push_str(&format!("s{i}: s{}*\n", i + 1));
        } else {
            text.push_str(&format!("s{i}: EMPTY\n"));
        }
    }
    regtree_hedge::Schema::parse(a, &text).expect("schema parses")
}

/// A synthetic path-FD corpus for the FD-set pruning study
/// (`BENCH_fdset.json`): groups of six FDs under a shared `/db` context,
/// each group `g{i}` contributing
///
/// 1. `wide`    — `/db : g{i}/d -> g{i}[N]` (kept; structurally *contains*
///    `narrow`, so its INDEPENDENT verdicts are reusable downward);
/// 2. `narrow`  — `/db : g{i}/d -> g{i}/r` (kept; reuse beneficiary);
/// 3. `aug`     — `/db : g{i}/d, g{i}/x -> g{i}/r` (augmentation of
///    `narrow`, dropped as implied);
/// 4. `chain1`  — `/db : g{i}/c/e -> g{i}/c[N]` (kept);
/// 5. `chain2`  — `/db : g{i}/c[N] -> g{i}/c/f` (kept);
/// 6. `goal`    — `/db : g{i}/c/e -> g{i}/c/f` (transitive consequence of
///    `chain1` + `chain2`, dropped as implied).
///
/// So a full group yields 2 implied rows in 6 (≈33% of matrix cells never
/// reach the engine) plus one containment pair among the kept rows. `n`
/// need not be a multiple of six; a truncated trailing group just keeps
/// whatever members it has.
pub fn fdset_corpus(a: &Alphabet, n: usize) -> Vec<(String, Fd)> {
    let mut out = Vec::with_capacity(n);
    let mut g = 0usize;
    while out.len() < n {
        let specs = [
            ("wide", format!("/db : g{g}/d -> g{g}[N]")),
            ("narrow", format!("/db : g{g}/d -> g{g}/r")),
            ("aug", format!("/db : g{g}/d, g{g}/x -> g{g}/r")),
            ("chain1", format!("/db : g{g}/c/e -> g{g}/c[N]")),
            ("chain2", format!("/db : g{g}/c[N] -> g{g}/c/f")),
            ("goal", format!("/db : g{g}/c/e -> g{g}/c/f")),
        ];
        for (tag, src) in specs {
            if out.len() == n {
                break;
            }
            let fd = PathFd::parse(a, &src)
                .expect("corpus FD parses")
                .to_fd(a)
                .expect("corpus FD factorizes");
            out.push((format!("g{g}-{tag}"), fd));
        }
        g += 1;
    }
    out
}

/// The update-class columns paired with [`fdset_corpus`]: monadic edits
/// touching a handful of early groups (so most rows are independent of
/// most columns, and containment reuse actually fires) plus the targets of
/// group 0 (so dependent cells exist too).
pub fn fdset_classes(a: &Alphabet) -> Vec<(String, UpdateClass)> {
    ["db/g0/d", "db/g0/r", "db/g1/c/e", "db/g2/x"]
        .iter()
        .map(|e| {
            let class = update_class_from_edges(a, &[e]).expect("valid edge path");
            (e.replace('/', "-"), class)
        })
        .collect()
}

/// An alphabet with `extra` filler labels beyond the exam vocabulary
/// (for the `|Σ|` axis of the Proposition 3 study).
pub fn padded_alphabet(extra: usize) -> Alphabet {
    let a = regtree_gen::exam_alphabet();
    for i in 0..extra {
        a.intern(&format!("filler{i}"));
    }
    a
}

/// The independence criterion on a **fresh** [`Analyzer`]: every automaton
/// is recompiled, which is the per-call cost the scaling benches have
/// always measured. (The caching `Analyzer` path would amortize
/// compilation across iterations and invalidate comparisons against the
/// committed baselines.)
pub fn fresh_independence(
    fd: &Fd,
    class: &UpdateClass,
    schema: Option<&Schema>,
) -> IndependenceAnalysis {
    let mut b = Analyzer::builder();
    if let Some(s) = schema {
        b = b.schema(s.clone());
    }
    b.build().independence(fd, class)
}

/// The batch matrix on a **fresh** [`Analyzer`]: each call pays schema and
/// pattern compilation once and shares it across cells — the workload of
/// the removed `analyze_matrix` free function.
pub fn fresh_matrix(
    fds: &[(&str, &Fd)],
    classes: &[(&str, &UpdateClass)],
    schema: Option<&Schema>,
) -> IndependenceMatrix {
    let mut b = Analyzer::builder();
    if let Some(s) = schema {
        b = b.schema(s.clone());
    }
    b.build().matrix(fds, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let a = regtree_gen::exam_alphabet();
        assert!(session(&a, 5).len() > 50);
        let fd = fd_with_conditions(&a, 3);
        assert_eq!(fd.conditions().len(), 3);
        let u = update_chain(&a, 4);
        assert!(u.size() > 0);
        let s = chain_schema(&a, 3);
        assert_eq!(s.rules().len(), 3);
        assert!(padded_alphabet(10).len() >= 21);
    }

    #[test]
    fn fdset_corpus_drops_a_third_of_each_full_group() {
        let a = Alphabet::new();
        let fds = fdset_corpus(&a, 12);
        assert_eq!(fds.len(), 12);
        let mut set = regtree_core::FdSet::new();
        for (name, fd) in &fds {
            set.push(name.clone(), fd.clone());
        }
        let min = set.minimize(&regtree_core::RunLimits::UNLIMITED);
        assert!(min.is_complete());
        // Two of six per group: aug and goal.
        assert_eq!(min.dropped.len(), 4);
        assert!(!fdset_classes(&a).is_empty());
    }

    #[test]
    fn fd_size_grows_with_conditions() {
        let a = regtree_gen::exam_alphabet();
        let s1 = fd_with_conditions(&a, 1).size();
        let s8 = fd_with_conditions(&a, 8).size();
        assert!(s8 > s1);
    }
}
