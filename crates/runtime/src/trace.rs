//! Structured tracing for the analysis engines.
//!
//! [`RunMetrics`](crate::RunMetrics) answers *how much* a run cost; this
//! module answers *where* and *when*. Engines emit two kinds of records
//! through a [`TraceHandle`]:
//!
//! * **spans** ([`SpanKind`]) — bracketed phases with wall-clock extent:
//!   pattern/schema compilation, the lazy IC product search, a hedge
//!   emptiness fixpoint, one FD document check, one matrix cell;
//! * **events** ([`EventKind`]) — instantaneous occurrences at the existing
//!   amortized budget sites: a state interned, a frontier push, a memo hit
//!   or miss, a guard-minterm intersection, a deadline/cancellation poll,
//!   a budget exhaustion.
//!
//! A [`Tracer`] is any sink for those records. Three are shipped:
//!
//! * [`NullTracer`] — the default; never invoked, because a disabled
//!   [`TraceHandle`] short-circuits on a null check before any dispatch;
//! * [`ChromeTraceSink`] — records everything and serializes to the
//!   Chrome-trace JSON consumed by `chrome://tracing` and Perfetto (or to
//!   a line-per-record JSONL variant);
//! * [`SummarySink`] — keeps only per-kind aggregates (span counts and
//!   total wall time, event counts), cheap enough to leave on in
//!   production.
//!
//! # Zero cost when disabled
//!
//! The handle stores `Option<Arc<dyn Tracer>>`; every emission site is an
//! inlined `if self.tracer.is_none() { return }`. The hooks reuse the
//! budget-poll sites the engines already pay for, so the disabled overhead
//! is one predictable branch per counter bump — within measurement noise
//! (verified against the committed `BENCH_ic.json` baseline).
//!
//! # Examples
//!
//! ```
//! use regtree_runtime::{Budget, EventKind, SpanKind, SummarySink, TraceHandle};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(SummarySink::new());
//! let trace = TraceHandle::new(sink.clone());
//! let mut budget = Budget::unlimited().with_trace(trace.clone());
//!
//! {
//!     let _span = trace.span(SpanKind::IcSearch, "fd1 × levels");
//!     budget.on_state().unwrap(); // emits EventKind::StateInterned
//! }
//!
//! let summary = sink.summary();
//! assert_eq!(summary.span(SpanKind::IcSearch).count, 1);
//! assert_eq!(summary.event_count(EventKind::StateInterned), 1);
//! assert_eq!(
//!     summary.event_count(EventKind::StateInterned),
//!     budget.metrics().states_interned,
//! );
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// The phase a [`Tracer`] span brackets.
///
/// # Examples
///
/// ```
/// use regtree_runtime::SpanKind;
/// assert_eq!(SpanKind::IcSearch.name(), "ic_search");
/// assert_eq!(SpanKind::ALL.len(), 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpanKind {
    /// Schema/pattern automaton compilation (the `Analyzer` cache fill).
    Compile,
    /// One lazy independence-criterion product search.
    IcSearch,
    /// One hedge-automaton emptiness fixpoint (realizability / witness).
    EmptinessFixpoint,
    /// One FD checked against one document.
    FdCheck,
    /// One cell of an FD × update-class independence matrix.
    MatrixCell,
    /// One streaming document ingest (parse + validate + index in one pass).
    Ingest,
    /// One update applied as a delta to a versioned document.
    DeltaApply,
    /// One FD-set partition into unaffected/localized/global after a delta.
    ScopeClassify,
}

impl SpanKind {
    /// Every span kind, in rendering order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Compile,
        SpanKind::IcSearch,
        SpanKind::EmptinessFixpoint,
        SpanKind::FdCheck,
        SpanKind::MatrixCell,
        SpanKind::Ingest,
        SpanKind::DeltaApply,
        SpanKind::ScopeClassify,
    ];

    /// Short machine-readable name (used by trace files and `bench_json.sh`).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compile => "compile",
            SpanKind::IcSearch => "ic_search",
            SpanKind::EmptinessFixpoint => "emptiness_fixpoint",
            SpanKind::FdCheck => "fd_check",
            SpanKind::MatrixCell => "matrix_cell",
            SpanKind::Ingest => "ingest",
            SpanKind::DeltaApply => "delta_apply",
            SpanKind::ScopeClassify => "scope_classify",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::Compile => 0,
            SpanKind::IcSearch => 1,
            SpanKind::EmptinessFixpoint => 2,
            SpanKind::FdCheck => 3,
            SpanKind::MatrixCell => 4,
            SpanKind::Ingest => 5,
            SpanKind::DeltaApply => 6,
            SpanKind::ScopeClassify => 7,
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instantaneous occurrence emitted at a budget site.
///
/// # Examples
///
/// ```
/// use regtree_runtime::EventKind;
/// assert_eq!(EventKind::MemoHit.name(), "memo_hit");
/// assert_eq!(EventKind::ALL.len(), 11);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// A product/tree state was interned ([`Budget::on_state`]).
    ///
    /// [`Budget::on_state`]: crate::Budget::on_state
    StateInterned,
    /// A worklist/frontier push ([`Budget::on_frontier_push`]).
    ///
    /// [`Budget::on_frontier_push`]: crate::Budget::on_frontier_push
    FrontierPush,
    /// A memoized result was reused ([`Budget::on_memo_hit`]).
    ///
    /// [`Budget::on_memo_hit`]: crate::Budget::on_memo_hit
    MemoHit,
    /// A new memo entry was created ([`Budget::on_memo_entry`]).
    ///
    /// [`Budget::on_memo_entry`]: crate::Budget::on_memo_entry
    MemoMiss,
    /// A guard intersection over label-partition minterms
    /// ([`Budget::on_guard_intersection`]).
    ///
    /// [`Budget::on_guard_intersection`]: crate::Budget::on_guard_intersection
    GuardIntersection,
    /// An unconditional deadline/cancellation poll ([`Budget::poll_now`]).
    ///
    /// [`Budget::poll_now`]: crate::Budget::poll_now
    BudgetPoll,
    /// A resource budget ran out; the run is about to stop with
    /// `Unknown { exhausted }`.
    Exhausted,
    /// A matrix cell's verdict was reused from a subsuming/subsumed row
    /// instead of being recomputed ([`Budget::on_verdict_reused`]).
    ///
    /// [`Budget::on_verdict_reused`]: crate::Budget::on_verdict_reused
    VerdictReused,
    /// An FD was classified *unaffected* by a delta: its verdict is carried
    /// forward without touching the document.
    ScopeUnaffected,
    /// An FD was classified *affected-localized*: only mappings through the
    /// dirty region are rechecked.
    ScopeLocalized,
    /// An FD was classified *affected-global*: the delta forces a full
    /// recheck.
    ScopeGlobal,
}

impl EventKind {
    /// Every event kind, in rendering order.
    pub const ALL: [EventKind; 11] = [
        EventKind::StateInterned,
        EventKind::FrontierPush,
        EventKind::MemoHit,
        EventKind::MemoMiss,
        EventKind::GuardIntersection,
        EventKind::BudgetPoll,
        EventKind::Exhausted,
        EventKind::VerdictReused,
        EventKind::ScopeUnaffected,
        EventKind::ScopeLocalized,
        EventKind::ScopeGlobal,
    ];

    /// Short machine-readable name (used by trace files).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::StateInterned => "state_interned",
            EventKind::FrontierPush => "frontier_push",
            EventKind::MemoHit => "memo_hit",
            EventKind::MemoMiss => "memo_miss",
            EventKind::GuardIntersection => "guard_intersection",
            EventKind::BudgetPoll => "budget_poll",
            EventKind::Exhausted => "exhausted",
            EventKind::VerdictReused => "verdict_reused",
            EventKind::ScopeUnaffected => "scope_unaffected",
            EventKind::ScopeLocalized => "scope_localized",
            EventKind::ScopeGlobal => "scope_global",
        }
    }

    fn index(self) -> usize {
        match self {
            EventKind::StateInterned => 0,
            EventKind::FrontierPush => 1,
            EventKind::MemoHit => 2,
            EventKind::MemoMiss => 3,
            EventKind::GuardIntersection => 4,
            EventKind::BudgetPoll => 5,
            EventKind::Exhausted => 6,
            EventKind::VerdictReused => 7,
            EventKind::ScopeUnaffected => 8,
            EventKind::ScopeLocalized => 9,
            EventKind::ScopeGlobal => 10,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifies one span across its begin/end pair.
///
/// Ids are allocated process-wide by [`TraceHandle::span`], so records from
/// concurrent matrix cells never collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpanId(pub u64);

/// A sink for trace records. Implementations must be thread-safe: matrix
/// analysis emits from scoped worker threads concurrently.
///
/// The caller allocates the [`SpanId`] and passes it to both `span_begin`
/// and `span_end`, so fan-out tracers (the CLI tees a [`ChromeTraceSink`]
/// and a [`SummarySink`]) need no id translation.
///
/// # Examples
///
/// A tracer that counts begun spans:
///
/// ```
/// use regtree_runtime::{EventKind, SpanId, SpanKind, TraceHandle, Tracer};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// #[derive(Default)]
/// struct Counting(AtomicU64);
/// impl Tracer for Counting {
///     fn span_begin(&self, _id: SpanId, _kind: SpanKind, _label: &str) {
///         self.0.fetch_add(1, Ordering::Relaxed);
///     }
///     fn span_end(&self, _id: SpanId, _kind: SpanKind) {}
///     fn event(&self, _kind: EventKind) {}
/// }
///
/// let sink = Arc::new(Counting::default());
/// let trace = TraceHandle::new(sink.clone());
/// drop(trace.span(SpanKind::Compile, "warm the cache"));
/// assert_eq!(sink.0.load(Ordering::Relaxed), 1);
/// ```
pub trait Tracer: Send + Sync {
    /// A span of kind `kind` begins now. `label` narrows the instance
    /// (e.g. `"fd1 × levels"` for a matrix cell).
    fn span_begin(&self, id: SpanId, kind: SpanKind, label: &str);

    /// The span opened under `id` ends now.
    fn span_end(&self, id: SpanId, kind: SpanKind);

    /// An instantaneous event of kind `kind` occurred.
    fn event(&self, kind: EventKind);
}

/// The do-nothing sink: attaching it is behaviorally identical to not
/// tracing at all (verified by the `ic_lazy_parity` proptest).
///
/// # Examples
///
/// ```
/// use regtree_runtime::{NullTracer, SpanKind, TraceHandle};
/// use std::sync::Arc;
///
/// let trace = TraceHandle::new(Arc::new(NullTracer));
/// let _span = trace.span(SpanKind::FdCheck, "fd1");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn span_begin(&self, _id: SpanId, _kind: SpanKind, _label: &str) {}
    fn span_end(&self, _id: SpanId, _kind: SpanKind) {}
    fn event(&self, _kind: EventKind) {}
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A cheaply clonable, possibly-disabled reference to a [`Tracer`].
///
/// This is what the engines actually hold (inside [`Budget`] and the
/// `Analyzer`): the `Option` means a disabled handle costs one predictable
/// null-check branch per emission site and allocates nothing.
///
/// [`Budget`]: crate::Budget
///
/// # Examples
///
/// ```
/// use regtree_runtime::{EventKind, SummarySink, TraceHandle};
/// use std::sync::Arc;
///
/// let disabled = TraceHandle::disabled();
/// assert!(!disabled.is_enabled());
/// disabled.event(EventKind::BudgetPoll); // no-op
///
/// let sink = Arc::new(SummarySink::new());
/// let enabled = TraceHandle::new(sink.clone());
/// enabled.event(EventKind::BudgetPoll);
/// assert_eq!(sink.summary().event_count(EventKind::BudgetPoll), 1);
/// ```
#[derive(Clone, Default)]
pub struct TraceHandle {
    tracer: Option<Arc<dyn Tracer>>,
}

impl TraceHandle {
    /// The disabled handle (every emission is a no-op).
    pub fn disabled() -> TraceHandle {
        TraceHandle { tracer: None }
    }

    /// A handle that forwards every record to `tracer`.
    pub fn new(tracer: Arc<dyn Tracer>) -> TraceHandle {
        TraceHandle {
            tracer: Some(tracer),
        }
    }

    /// Is a sink attached?
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Emits an instantaneous event (no-op when disabled).
    #[inline]
    pub fn event(&self, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.event(kind);
        }
    }

    /// Opens a span; it ends when the returned guard drops.
    ///
    /// When disabled this allocates nothing and returns an inert guard.
    #[inline]
    pub fn span(&self, kind: SpanKind, label: &str) -> SpanGuard {
        match &self.tracer {
            None => SpanGuard { open: None },
            Some(t) => {
                let id = SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed));
                t.span_begin(id, kind, label);
                SpanGuard {
                    open: Some((Arc::clone(t), id, kind)),
                }
            }
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII guard returned by [`TraceHandle::span`]; emits the matching
/// `span_end` when dropped, so spans stay balanced on every exit path
/// (including early returns on budget exhaustion).
#[must_use = "the span ends when this guard drops"]
pub struct SpanGuard {
    open: Option<(Arc<dyn Tracer>, SpanId, SpanKind)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tracer, id, kind)) = self.open.take() {
            tracer.span_end(id, kind);
        }
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("enabled", &self.open.is_some())
            .finish()
    }
}

/// On-disk layout written by [`ChromeTraceSink::save_to`].
///
/// # Examples
///
/// ```
/// use regtree_runtime::TraceFormat;
/// assert_eq!(TraceFormat::from_name("chrome"), Some(TraceFormat::Chrome));
/// assert_eq!(TraceFormat::from_name("jsonl"), Some(TraceFormat::Jsonl));
/// assert_eq!(TraceFormat::from_name("xml"), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceFormat {
    /// One JSON document: `{"traceEvents": [...]}` — the Trace Event
    /// Format loaded by `chrome://tracing` and Perfetto.
    Chrome,
    /// One JSON object per line (easier to stream/grep).
    Jsonl,
}

impl TraceFormat {
    /// Parses the CLI spelling (`"chrome"` / `"jsonl"`).
    pub fn from_name(name: &str) -> Option<TraceFormat> {
        match name {
            "chrome" => Some(TraceFormat::Chrome),
            "jsonl" => Some(TraceFormat::Jsonl),
            _ => None,
        }
    }
}

/// One record captured by [`ChromeTraceSink`].
struct ChromeRecord {
    /// Trace Event Format phase: `'B'`egin, `'E'`nd, or `'i'`nstant.
    ph: char,
    ts_micros: u64,
    tid: u32,
    name: Cow<'static, str>,
    cat: &'static str,
}

#[derive(Default)]
struct ChromeInner {
    records: Vec<ChromeRecord>,
    tids: HashMap<ThreadId, u32>,
}

impl ChromeInner {
    fn tid(&mut self) -> u32 {
        let next = self.tids.len() as u32 + 1;
        *self.tids.entry(std::thread::current().id()).or_insert(next)
    }
}

/// Records every span and event and serializes them in the [Trace Event
/// Format] understood by `chrome://tracing` and [Perfetto].
///
/// Spans become `B`/`E` pairs; events become thread-scoped instants.
/// Timestamps are microseconds since the sink was created; worker threads
/// get distinct `tid`s so matrix cells render as parallel tracks.
///
/// [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
/// [Perfetto]: https://ui.perfetto.dev
///
/// # Examples
///
/// ```
/// use regtree_runtime::{validate_json, ChromeTraceSink, SpanKind, TraceHandle};
/// use std::sync::Arc;
///
/// let sink = Arc::new(ChromeTraceSink::new());
/// let trace = TraceHandle::new(sink.clone());
/// drop(trace.span(SpanKind::Compile, "exam schema"));
///
/// let json = sink.to_chrome_json();
/// validate_json(&json).unwrap();
/// assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
/// ```
pub struct ChromeTraceSink {
    start: Instant,
    inner: Mutex<ChromeInner>,
}

impl ChromeTraceSink {
    /// An empty sink; timestamps count from now.
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink {
            start: Instant::now(),
            inner: Mutex::new(ChromeInner::default()),
        }
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// Has nothing been captured?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, ph: char, name: Cow<'static, str>, cat: &'static str) {
        let ts_micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock().unwrap();
        let tid = inner.tid();
        inner.records.push(ChromeRecord {
            ph,
            ts_micros,
            tid,
            name,
            cat,
        });
    }

    fn write_record(w: &mut impl Write, r: &ChromeRecord) -> io::Result<()> {
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            escape_json(&r.name),
            r.cat,
            r.ph,
            r.ts_micros,
            r.tid
        )?;
        if r.ph == 'i' {
            // Thread-scoped instant (renders as a tick on the emitting track).
            write!(w, ",\"s\":\"t\"")?;
        }
        write!(w, "}}")
    }

    /// Writes the capture as one Chrome-trace JSON document.
    pub fn write_chrome_json(&self, w: &mut impl Write) -> io::Result<()> {
        let inner = self.inner.lock().unwrap();
        write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        for (i, r) in inner.records.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            writeln!(w)?;
            Self::write_record(w, r)?;
        }
        write!(w, "\n]}}\n")
    }

    /// Writes the capture as JSONL: one record object per line.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        let inner = self.inner.lock().unwrap();
        for r in inner.records.iter() {
            Self::write_record(w, r)?;
            writeln!(w)?;
        }
        Ok(())
    }

    /// The Chrome-trace JSON document as a string.
    pub fn to_chrome_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome_json(&mut buf).expect("Vec write");
        String::from_utf8(buf).expect("trace output is UTF-8")
    }

    /// The JSONL rendering as a string.
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf).expect("Vec write");
        String::from_utf8(buf).expect("trace output is UTF-8")
    }

    /// Writes the capture to `path` in `format`.
    pub fn save_to(&self, path: impl AsRef<Path>, format: TraceFormat) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(file);
        match format {
            TraceFormat::Chrome => self.write_chrome_json(&mut w)?,
            TraceFormat::Jsonl => self.write_jsonl(&mut w)?,
        }
        w.flush()
    }
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        ChromeTraceSink::new()
    }
}

impl fmt::Debug for ChromeTraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChromeTraceSink")
            .field("records", &self.len())
            .finish()
    }
}

impl Tracer for ChromeTraceSink {
    fn span_begin(&self, _id: SpanId, kind: SpanKind, label: &str) {
        let name: Cow<'static, str> = if label.is_empty() {
            Cow::Borrowed(kind.name())
        } else {
            Cow::Owned(format!("{}: {label}", kind.name()))
        };
        self.push('B', name, "span");
    }

    fn span_end(&self, _id: SpanId, kind: SpanKind) {
        // The Trace Event Format matches B/E by nesting order per tid, so
        // the end record only needs to repeat the kind.
        self.push('E', Cow::Borrowed(kind.name()), "span");
    }

    fn event(&self, kind: EventKind) {
        self.push('i', Cow::Borrowed(kind.name()), "event");
    }
}

/// Aggregate statistics of one span kind, from a [`SummarySink`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many spans of this kind completed.
    pub count: u64,
    /// Total wall time across those spans, in nanoseconds. Concurrent
    /// spans (matrix cells on worker threads) accumulate CPU-track time,
    /// which can exceed elapsed wall time.
    pub total_nanos: u64,
}

#[derive(Default)]
struct SummaryInner {
    open: HashMap<u64, Instant>,
    spans: [SpanStats; SpanKind::ALL.len()],
    events: [u64; EventKind::ALL.len()],
}

/// An immutable snapshot of a [`SummarySink`].
///
/// # Examples
///
/// ```
/// use regtree_runtime::{EventKind, SpanKind, TraceSummary};
/// let summary = TraceSummary::default();
/// assert_eq!(summary.span(SpanKind::Compile).count, 0);
/// assert_eq!(summary.event_count(EventKind::MemoHit), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    spans: [SpanStats; SpanKind::ALL.len()],
    events: [u64; EventKind::ALL.len()],
}

impl TraceSummary {
    /// The aggregate for one span kind.
    pub fn span(&self, kind: SpanKind) -> SpanStats {
        self.spans[kind.index()]
    }

    /// How many events of `kind` were emitted.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        self.events[kind.index()]
    }

    /// Sum of all span counts (handy for "did anything run" checks).
    pub fn total_span_count(&self) -> u64 {
        self.spans.iter().map(|s| s.count).sum()
    }
}

impl fmt::Display for TraceSummary {
    /// Renders the per-phase table printed by `rtpcheck --stats-verbose`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "phase                 count   total wall")?;
        for kind in SpanKind::ALL {
            let s = self.span(kind);
            if s.count == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<20} {:>6}   {:>9.3} ms",
                kind.name(),
                s.count,
                s.total_nanos as f64 / 1e6
            )?;
        }
        let mut wrote_header = false;
        for kind in EventKind::ALL {
            let n = self.event_count(kind);
            if n == 0 {
                continue;
            }
            if !wrote_header {
                writeln!(f, "event                 count")?;
                wrote_header = true;
            }
            writeln!(f, "{:<20} {:>6}", kind.name(), n)?;
        }
        Ok(())
    }
}

/// Aggregating sink: per-[`SpanKind`] counts and total wall time plus
/// per-[`EventKind`] counts, with no per-record storage.
///
/// Its totals are definitionally consistent with [`RunMetrics`]: every
/// counter bump that a [`Budget`] records emits exactly one event here, so
/// e.g. `event_count(StateInterned)` equals the summed
/// `metrics.states_interned` of all runs traced through this sink.
///
/// [`RunMetrics`]: crate::RunMetrics
/// [`Budget`]: crate::Budget
///
/// # Examples
///
/// ```
/// use regtree_runtime::{EventKind, SpanKind, SummarySink, TraceHandle};
/// use std::sync::Arc;
///
/// let sink = Arc::new(SummarySink::new());
/// let trace = TraceHandle::new(sink.clone());
/// {
///     let _outer = trace.span(SpanKind::MatrixCell, "fd1 × levels");
///     trace.event(EventKind::FrontierPush);
/// }
/// let summary = sink.summary();
/// assert_eq!(summary.span(SpanKind::MatrixCell).count, 1);
/// assert_eq!(summary.event_count(EventKind::FrontierPush), 1);
/// ```
pub struct SummarySink {
    inner: Mutex<SummaryInner>,
}

impl SummarySink {
    /// An empty sink.
    pub fn new() -> SummarySink {
        SummarySink {
            inner: Mutex::new(SummaryInner::default()),
        }
    }

    /// Snapshots the aggregates collected so far. Spans still open are not
    /// included (their wall time is unknown until they end).
    pub fn summary(&self) -> TraceSummary {
        let inner = self.inner.lock().unwrap();
        TraceSummary {
            spans: inner.spans,
            events: inner.events,
        }
    }
}

impl Default for SummarySink {
    fn default() -> Self {
        SummarySink::new()
    }
}

impl fmt::Debug for SummarySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SummarySink").finish_non_exhaustive()
    }
}

impl Tracer for SummarySink {
    fn span_begin(&self, id: SpanId, _kind: SpanKind, _label: &str) {
        let now = Instant::now();
        self.inner.lock().unwrap().open.insert(id.0, now);
    }

    fn span_end(&self, id: SpanId, kind: SpanKind) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(started) = inner.open.remove(&id.0) {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let slot = &mut inner.spans[kind.index()];
            slot.count += 1;
            slot.total_nanos = slot.total_nanos.saturating_add(nanos);
        }
    }

    fn event(&self, kind: EventKind) {
        self.inner.lock().unwrap().events[kind.index()] += 1;
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `input` is one syntactically well-formed JSON value.
///
/// A dependency-free checker for tests and tooling around the trace sinks
/// (the workspace has no serde): it verifies structure, string escapes and
/// number syntax, and rejects trailing garbage. It does **not** build a
/// value tree.
///
/// # Examples
///
/// ```
/// use regtree_runtime::validate_json;
/// assert!(validate_json("{\"a\": [1, 2.5e3, null, \"x\\n\"]}").is_ok());
/// assert!(validate_json("{\"a\": }").is_err());
/// assert!(validate_json("[1] trailing").is_err());
/// ```
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        saw_digit = true;
    }
    if !saw_digit {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad fraction at byte {pos}", pos = *pos));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad exponent at byte {pos}", pos = *pos));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        h.event(EventKind::StateInterned);
        let g = h.span(SpanKind::Compile, "x");
        drop(g);
    }

    #[test]
    fn chrome_sink_balances_and_validates() {
        let sink = Arc::new(ChromeTraceSink::new());
        let h = TraceHandle::new(sink.clone());
        {
            let _outer = h.span(SpanKind::IcSearch, "outer");
            let _inner = h.span(SpanKind::EmptinessFixpoint, "");
            h.event(EventKind::FrontierPush);
        }
        assert_eq!(sink.len(), 5); // 2×B + 2×E + 1×i
        let json = sink.to_chrome_json();
        validate_json(&json).unwrap();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        let jsonl = sink.to_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        for line in jsonl.lines() {
            validate_json(line).unwrap();
        }
    }

    #[test]
    fn chrome_sink_escapes_labels() {
        let sink = Arc::new(ChromeTraceSink::new());
        let h = TraceHandle::new(sink.clone());
        drop(h.span(SpanKind::MatrixCell, "a\"b\\c\nd"));
        validate_json(&sink.to_chrome_json()).unwrap();
    }

    #[test]
    fn summary_sink_aggregates() {
        let sink = Arc::new(SummarySink::new());
        let h = TraceHandle::new(sink.clone());
        for _ in 0..3 {
            let _g = h.span(SpanKind::FdCheck, "fd");
            h.event(EventKind::MemoHit);
            h.event(EventKind::MemoMiss);
        }
        let s = sink.summary();
        assert_eq!(s.span(SpanKind::FdCheck).count, 3);
        assert_eq!(s.span(SpanKind::Compile).count, 0);
        assert_eq!(s.event_count(EventKind::MemoHit), 3);
        assert_eq!(s.event_count(EventKind::MemoMiss), 3);
        assert_eq!(s.total_span_count(), 3);
        let rendered = s.to_string();
        assert!(rendered.contains("fd_check"));
        assert!(rendered.contains("memo_hit"));
    }

    #[test]
    fn summary_sink_is_thread_safe() {
        let sink = Arc::new(SummarySink::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = TraceHandle::new(sink.clone());
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let _g = h.span(SpanKind::MatrixCell, "cell");
                        h.event(EventKind::StateInterned);
                    }
                });
            }
        });
        let s = sink.summary();
        assert_eq!(s.span(SpanKind::MatrixCell).count, 4000);
        assert_eq!(s.event_count(EventKind::StateInterned), 4000);
    }

    #[test]
    fn validate_json_accepts_and_rejects() {
        for good in [
            "null",
            "true",
            "-12.5e-3",
            "\"a\\u00e9b\"",
            "[]",
            "{}",
            "{\"k\": [1, {\"n\": null}]}",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "nul",
            "[1] 2",
            "{\"a\": 1,}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn trace_format_names() {
        assert_eq!(TraceFormat::from_name("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::from_name("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::from_name(""), None);
    }
}
