//! `regtree-runtime` — resource governance for the analysis engines.
//!
//! The independence criterion is PSPACE-hard in general (paper
//! Proposition 1), so a deployment that answers queries for arbitrary
//! FD/update/schema inputs must bound every fixpoint loop: otherwise one
//! adversarial (or merely large) instance hangs a worker or blows its
//! memory. This crate provides the small, dependency-free vocabulary the
//! whole workspace shares:
//!
//! * [`RunLimits`] — declarative budgets: a wall-clock deadline, caps on
//!   interned product states, memoized frontier/candidate entries, and
//!   worklist (frontier) pushes;
//! * [`CancelToken`] — cooperative cancellation, shared across threads, so
//!   batch callers can abort remaining matrix cells early;
//! * [`RunMetrics`] — the counters every analysis reports as a first-class
//!   output (states interned, transitions fired, guard-minterm
//!   intersections, DFA steps, frontier pushes, per-phase wall time);
//! * [`Budget`] — the per-run governor the engines consult cooperatively:
//!   each counting call is a couple of integer compares, and the deadline /
//!   cancellation flags are polled on an amortized tick so the hot loops
//!   pay essentially nothing when limits are unlimited.
//!
//! A run that exhausts a budget reports *which* resource ran out via
//! [`Resource`]; engines translate that into a graceful
//! `Verdict::Unknown { exhausted }` instead of a wrong answer or a hang.
//!
//! The [`trace`] module adds the event-level counterpart: a [`Tracer`]
//! attached to a [`Budget`] (via [`TraceHandle`]) observes every counter
//! bump as a structured event and every engine phase as a span, at zero
//! cost when disabled.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod trace;

pub use trace::{
    validate_json, ChromeTraceSink, EventKind, NullTracer, SpanGuard, SpanId, SpanKind, SpanStats,
    SummarySink, TraceFormat, TraceHandle, TraceSummary, Tracer,
};

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The resource whose budget a run exhausted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum Resource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cap on interned product/tree states was reached.
    States,
    /// The cap on memoized entries (frontier tuples, candidate lists) was
    /// reached.
    Memo,
    /// The cap on worklist/frontier pushes was reached.
    Frontier,
    /// The caller cancelled the run via a [`CancelToken`].
    Cancelled,
}

impl Resource {
    /// Short machine-readable name (used by the CLI's JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Resource::Deadline => "deadline",
            Resource::States => "states",
            Resource::Memo => "memo",
            Resource::Frontier => "frontier",
            Resource::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Deadline => write!(f, "wall-clock deadline exceeded"),
            Resource::States => write!(f, "interned-state budget exhausted"),
            Resource::Memo => write!(f, "memo-entry budget exhausted"),
            Resource::Frontier => write!(f, "frontier-push budget exhausted"),
            Resource::Cancelled => write!(f, "cancelled by caller"),
        }
    }
}

/// Declarative resource budgets of one analysis run.
///
/// The default is *unlimited* — identical behavior to the ungoverned
/// engines. Limits compose: the first resource to run out decides the
/// [`Resource`] reported. In batch operations (matrix cells, FD batches)
/// the deadline is shared by the whole batch while the count caps apply to
/// each unit of work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunLimits {
    /// Wall-clock budget for the run (measured from the run's start).
    pub deadline: Option<Duration>,
    /// Maximum product/tree states interned during a search.
    pub max_states: Option<u64>,
    /// Maximum memoized entries (frontier tuples, candidate lists).
    pub max_memo: Option<u64>,
    /// Maximum worklist/frontier pushes.
    pub max_frontier: Option<u64>,
}

impl RunLimits {
    /// No limits: engines behave exactly like their ungoverned versions.
    pub const UNLIMITED: RunLimits = RunLimits {
        deadline: None,
        max_states: None,
        max_memo: None,
        max_frontier: None,
    };

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Caps the number of interned states.
    pub fn with_max_states(mut self, n: u64) -> Self {
        self.max_states = Some(n);
        self
    }

    /// Caps the number of memoized entries.
    pub fn with_max_memo(mut self, n: u64) -> Self {
        self.max_memo = Some(n);
        self
    }

    /// Caps the number of frontier pushes.
    pub fn with_max_frontier(mut self, n: u64) -> Self {
        self.max_frontier = Some(n);
        self
    }

    /// Are all limits absent?
    pub fn is_unlimited(&self) -> bool {
        *self == RunLimits::UNLIMITED
    }
}

/// Cooperative cancellation flag, cheap to clone and share across threads.
///
/// Engines poll the token on the same amortized tick as the deadline; a
/// cancelled run reports [`Resource::Cancelled`]. Cancellation is
/// *cooperative*: work in flight finishes its current slice (a few hundred
/// loop iterations) before observing the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Counters and wall times reported by a governed run.
///
/// All counters are cumulative over the run (for batch results, summed over
/// the units of work). Fields are plain `u64`s so callers can serialize
/// them without a serde dependency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Product/tree states interned (realized) by emptiness searches.
    pub states_interned: u64,
    /// Transition firings recorded (acceptances that realized a state or
    /// re-derived one).
    pub transitions_fired: u64,
    /// Guard intersections attempted over label-partition minterms.
    pub guard_intersections: u64,
    /// Deterministic edge-automaton steps taken by pattern evaluation.
    pub dfa_steps: u64,
    /// Worklist/frontier pushes across all incremental simulations.
    pub frontier_pushes: u64,
    /// Memoized entries created (frontier tuples, candidate lists).
    pub memo_entries: u64,
    /// Memoized results reused instead of recomputed.
    pub memo_hits: u64,
    /// Matrix-cell verdicts reused from a subsuming/subsumed row instead of
    /// being recomputed by the emptiness engine.
    pub verdicts_reused: u64,
    /// Update operations applied as in-place deltas to a versioned document
    /// (no full-tree clone).
    pub deltas_applied: u64,
    /// FD rechecks scoped to the dirty region of a delta (affected-localized).
    pub rechecks_localized: u64,
    /// FD rechecks that had to run over the whole document (affected-global).
    pub rechecks_full: u64,
    /// Wall time of the compile phase (schema/pattern automata), in ns.
    pub compile_nanos: u64,
    /// Wall time of the search/fixpoint phase, in ns.
    pub search_nanos: u64,
}

impl RunMetrics {
    /// Accumulates `other` into `self` (counters add, wall times add).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.states_interned += other.states_interned;
        self.transitions_fired += other.transitions_fired;
        self.guard_intersections += other.guard_intersections;
        self.dfa_steps += other.dfa_steps;
        self.frontier_pushes += other.frontier_pushes;
        self.memo_entries += other.memo_entries;
        self.memo_hits += other.memo_hits;
        self.verdicts_reused += other.verdicts_reused;
        self.deltas_applied += other.deltas_applied;
        self.rechecks_localized += other.rechecks_localized;
        self.rechecks_full += other.rechecks_full;
        self.compile_nanos += other.compile_nanos;
        self.search_nanos += other.search_nanos;
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states {} · transitions {} · guard∩ {} · dfa steps {} · frontier pushes {} · memo {}+{} hits · verdicts reused {} · deltas {} · rechecks {}loc+{}full · compile {:.3}ms · search {:.3}ms",
            self.states_interned,
            self.transitions_fired,
            self.guard_intersections,
            self.dfa_steps,
            self.frontier_pushes,
            self.memo_entries,
            self.memo_hits,
            self.verdicts_reused,
            self.deltas_applied,
            self.rechecks_localized,
            self.rechecks_full,
            self.compile_nanos as f64 / 1e6,
            self.search_nanos as f64 / 1e6,
        )
    }
}

/// How many cooperative ticks pass between deadline/cancellation polls.
/// Counting calls are pure integer compares; only every `POLL_MASK + 1`-th
/// tick touches `Instant::now()` or the atomic flag.
const POLL_MASK: u32 = 0xFF;

/// The per-run governor the engines consult cooperatively.
///
/// A `Budget` owns the run's [`RunMetrics`] and enforces its
/// [`RunLimits`]: each `on_*` call bumps the corresponding counter and
/// returns `Err(resource)` once a cap is crossed. Deadline and
/// cancellation are polled on an amortized tick (every 256 counting calls),
/// so governed hot loops stay within measurement noise of the ungoverned
/// ones.
#[derive(Debug)]
pub struct Budget {
    deadline_at: Option<Instant>,
    max_states: u64,
    max_memo: u64,
    max_frontier: u64,
    cancel: Option<CancelToken>,
    metrics: RunMetrics,
    trace: TraceHandle,
    tick: u32,
}

impl Budget {
    /// A governor for `limits`, with the deadline measured from now.
    pub fn new(limits: &RunLimits) -> Budget {
        Budget {
            deadline_at: limits.deadline.map(|d| Instant::now() + d),
            max_states: limits.max_states.unwrap_or(u64::MAX),
            max_memo: limits.max_memo.unwrap_or(u64::MAX),
            max_frontier: limits.max_frontier.unwrap_or(u64::MAX),
            cancel: None,
            metrics: RunMetrics::default(),
            trace: TraceHandle::disabled(),
            tick: 0,
        }
    }

    /// A governor with no limits (counters only).
    pub fn unlimited() -> Budget {
        Budget::new(&RunLimits::UNLIMITED)
    }

    /// Attaches a cancellation token (polled with the deadline).
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Overrides the absolute deadline instant. Batch drivers use this to
    /// share one deadline across many per-unit budgets.
    pub fn with_deadline_at(mut self, at: Option<Instant>) -> Budget {
        self.deadline_at = at;
        self
    }

    /// The absolute deadline instant, if any.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.deadline_at
    }

    /// Attaches a trace handle: every counter bump from here on also emits
    /// the corresponding [`EventKind`] to the handle's [`Tracer`].
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_runtime::{Budget, EventKind, SummarySink, TraceHandle};
    /// use std::sync::Arc;
    ///
    /// let sink = Arc::new(SummarySink::new());
    /// let mut budget = Budget::unlimited().with_trace(TraceHandle::new(sink.clone()));
    /// budget.on_frontier_push().unwrap();
    /// assert_eq!(sink.summary().event_count(EventKind::FrontierPush), 1);
    /// ```
    pub fn with_trace(mut self, trace: TraceHandle) -> Budget {
        self.trace = trace;
        self
    }

    /// The attached trace handle (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Read access to the metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Mutable access to the metrics (for phase wall-time stamps).
    pub fn metrics_mut(&mut self) -> &mut RunMetrics {
        &mut self.metrics
    }

    /// Consumes the governor, yielding the final metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    #[inline]
    fn poll(&mut self) -> Result<(), Resource> {
        self.tick = self.tick.wrapping_add(1);
        if self.tick & POLL_MASK != 0 {
            return Ok(());
        }
        self.poll_now()
    }

    /// Unconditionally polls the deadline and cancellation flag.
    #[inline]
    pub fn poll_now(&mut self) -> Result<(), Resource> {
        self.trace.event(EventKind::BudgetPoll);
        if let Some(t) = &self.cancel {
            if t.is_cancelled() {
                return Err(self.exhausted(Resource::Cancelled));
            }
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Err(self.exhausted(Resource::Deadline));
            }
        }
        Ok(())
    }

    /// Emits the exhaustion event and passes the resource through.
    #[inline]
    fn exhausted(&mut self, r: Resource) -> Resource {
        self.trace.event(EventKind::Exhausted);
        r
    }

    /// A cooperative checkpoint with no counter attached (loop headers).
    #[inline]
    pub fn checkpoint(&mut self) -> Result<(), Resource> {
        self.poll()
    }

    /// Records one interned state; errs when the state cap is crossed.
    #[inline]
    pub fn on_state(&mut self) -> Result<(), Resource> {
        self.metrics.states_interned += 1;
        self.trace.event(EventKind::StateInterned);
        if self.metrics.states_interned > self.max_states {
            return Err(self.exhausted(Resource::States));
        }
        self.poll()
    }

    /// Records one memoized entry; errs when the memo cap is crossed.
    #[inline]
    pub fn on_memo_entry(&mut self) -> Result<(), Resource> {
        self.metrics.memo_entries += 1;
        self.trace.event(EventKind::MemoMiss);
        if self.metrics.memo_entries > self.max_memo {
            return Err(self.exhausted(Resource::Memo));
        }
        self.poll()
    }

    /// Records one reused memoized result (counter only, never errs).
    #[inline]
    pub fn on_memo_hit(&mut self) {
        self.metrics.memo_hits += 1;
        self.trace.event(EventKind::MemoHit);
    }

    /// Records one frontier push; errs when the frontier cap is crossed.
    #[inline]
    pub fn on_frontier_push(&mut self) -> Result<(), Resource> {
        self.metrics.frontier_pushes += 1;
        self.trace.event(EventKind::FrontierPush);
        if self.metrics.frontier_pushes > self.max_frontier {
            return Err(self.exhausted(Resource::Frontier));
        }
        self.poll()
    }

    /// Records one matrix-cell verdict reused across subsumed rows instead
    /// of recomputed (counter only, never errs).
    #[inline]
    pub fn on_verdict_reused(&mut self) {
        self.metrics.verdicts_reused += 1;
        self.trace.event(EventKind::VerdictReused);
    }

    /// Records one transition firing (counter only, never errs).
    #[inline]
    pub fn on_transition(&mut self) {
        self.metrics.transitions_fired += 1;
    }

    /// Records one guard intersection attempt (counter only, never errs).
    #[inline]
    pub fn on_guard_intersection(&mut self) {
        self.metrics.guard_intersections += 1;
        self.trace.event(EventKind::GuardIntersection);
    }

    /// Records a batch of DFA steps, then polls (counter plus checkpoint).
    #[inline]
    pub fn on_dfa_steps(&mut self, n: u64) -> Result<(), Resource> {
        self.metrics.dfa_steps += n;
        self.poll()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// A tiny stopwatch for phase wall times.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Elapsed nanoseconds since `start`, saturated into a `u64`.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_errs() {
        let mut b = Budget::unlimited();
        for _ in 0..100_000 {
            b.on_state().unwrap();
            b.on_frontier_push().unwrap();
            b.on_memo_entry().unwrap();
            b.checkpoint().unwrap();
        }
        assert_eq!(b.metrics().states_interned, 100_000);
        assert_eq!(b.metrics().frontier_pushes, 100_000);
    }

    #[test]
    fn state_cap_trips() {
        let mut b = Budget::new(&RunLimits::default().with_max_states(3));
        b.on_state().unwrap();
        b.on_state().unwrap();
        b.on_state().unwrap();
        assert_eq!(b.on_state(), Err(Resource::States));
    }

    #[test]
    fn frontier_and_memo_caps_trip() {
        let mut b = Budget::new(&RunLimits::default().with_max_frontier(1).with_max_memo(1));
        b.on_frontier_push().unwrap();
        assert_eq!(b.on_frontier_push(), Err(Resource::Frontier));
        let mut b = Budget::new(&RunLimits::default().with_max_memo(1));
        b.on_memo_entry().unwrap();
        assert_eq!(b.on_memo_entry(), Err(Resource::Memo));
    }

    #[test]
    fn zero_deadline_trips_on_poll() {
        let mut b = Budget::new(&RunLimits::default().with_deadline(Duration::ZERO));
        assert_eq!(b.poll_now(), Err(Resource::Deadline));
        // Amortized polling observes it within one poll window.
        let mut b = Budget::new(&RunLimits::default().with_deadline(Duration::ZERO));
        let mut tripped = false;
        for _ in 0..=(POLL_MASK as usize + 1) {
            if b.checkpoint().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn cancellation_observed_across_clones() {
        let token = CancelToken::new();
        let mut b = Budget::unlimited().with_cancel(token.clone());
        assert!(b.poll_now().is_ok());
        token.cancel();
        assert_eq!(b.poll_now(), Err(Resource::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn budget_events_mirror_metrics() {
        use std::sync::Arc;
        let sink = Arc::new(SummarySink::new());
        let mut b = Budget::unlimited().with_trace(TraceHandle::new(sink.clone()));
        for _ in 0..10 {
            b.on_state().unwrap();
            b.on_frontier_push().unwrap();
            b.on_memo_entry().unwrap();
            b.on_guard_intersection();
        }
        b.on_memo_hit();
        b.on_memo_hit();
        b.on_verdict_reused();
        let s = sink.summary();
        let m = b.metrics();
        assert_eq!(s.event_count(EventKind::StateInterned), m.states_interned);
        assert_eq!(s.event_count(EventKind::FrontierPush), m.frontier_pushes);
        assert_eq!(s.event_count(EventKind::MemoMiss), m.memo_entries);
        assert_eq!(s.event_count(EventKind::MemoHit), m.memo_hits);
        assert_eq!(s.event_count(EventKind::VerdictReused), m.verdicts_reused);
        assert_eq!(
            s.event_count(EventKind::GuardIntersection),
            m.guard_intersections
        );
        assert_eq!(s.event_count(EventKind::Exhausted), 0);
    }

    #[test]
    fn exhaustion_emits_event() {
        use std::sync::Arc;
        let sink = Arc::new(SummarySink::new());
        let mut b = Budget::new(&RunLimits::default().with_max_states(1))
            .with_trace(TraceHandle::new(sink.clone()));
        b.on_state().unwrap();
        assert_eq!(b.on_state(), Err(Resource::States));
        assert_eq!(sink.summary().event_count(EventKind::Exhausted), 1);
    }

    #[test]
    fn metrics_merge_and_display() {
        let mut a = RunMetrics {
            states_interned: 1,
            dfa_steps: 2,
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            states_interned: 10,
            frontier_pushes: 5,
            ..RunMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.states_interned, 11);
        assert_eq!(a.frontier_pushes, 5);
        assert!(a.to_string().contains("states 11"));
    }

    #[test]
    fn limits_builders() {
        let l = RunLimits::default()
            .with_deadline_ms(5)
            .with_max_states(7)
            .with_max_frontier(9)
            .with_max_memo(11);
        assert_eq!(l.deadline, Some(Duration::from_millis(5)));
        assert_eq!(l.max_states, Some(7));
        assert_eq!(l.max_frontier, Some(9));
        assert_eq!(l.max_memo, Some(11));
        assert!(!l.is_unlimited());
        assert!(RunLimits::UNLIMITED.is_unlimited());
        assert!(RunLimits::default().is_unlimited());
    }
}
