//! Nondeterministic bottom-up unranked tree automata (hedge automata).
//!
//! The paper assumes schemas `S` are “given by some regular Bottom-Up tree
//! automaton `A_S`” and Proposition 3 builds further bottom-up automata from
//! the regular tree patterns `FD` and `U`. A [`HedgeAutomaton`] assigns
//! *states* to document nodes bottom-up: a transition `(guard, H, q)` lets a
//! node take state `q` when its label satisfies `guard` and the word of its
//! children's states belongs to the regular *horizontal language* `H`
//! (an [`Nfa`] whose letters are tree states). A document is accepted when
//! its root can take a final state.

use regtree_alphabet::{Alphabet, LabelKind, Symbol};
use regtree_automata::{Nfa, NfaBuilder};
use regtree_xml::{Document, NodeId};

/// Tree-automaton state (also used as a horizontal-NFA letter).
pub type TreeState = u32;

/// Label guard of a transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelGuard {
    /// Fires on exactly this label.
    Is(Symbol),
    /// Fires on any label.
    Any,
    /// Fires on any label except the listed ones.
    AnyExcept(Vec<Symbol>),
}

impl LabelGuard {
    /// Does the guard accept `label`?
    pub fn matches(&self, label: Symbol) -> bool {
        match self {
            LabelGuard::Is(s) => *s == label,
            LabelGuard::Any => true,
            LabelGuard::AnyExcept(not) => !not.contains(&label),
        }
    }

    /// Can the guard *only* accept attribute/text labels? Such nodes are
    /// leaves in well-formed documents, so a transition guarded this way can
    /// only ever fire with the empty child word.
    pub fn forces_leaf(&self, alphabet: &Alphabet) -> bool {
        self.forces_leaf_with(&alphabet.kind_reader())
    }

    /// [`LabelGuard::forces_leaf`] against an already-held kind lock, for
    /// loops classifying many guards.
    pub fn forces_leaf_with(&self, kinds: &regtree_alphabet::KindReader<'_>) -> bool {
        match self {
            LabelGuard::Is(s) => kinds.kind(*s) != LabelKind::Element,
            // Any/AnyExcept guards can always be satisfied by an element
            // label (fresh element labels can be interned at will).
            LabelGuard::Any | LabelGuard::AnyExcept(_) => false,
        }
    }

    /// The conjunction of two guards, when satisfiable (the single shared
    /// implementation used by every product construction).
    pub fn intersect(&self, other: &LabelGuard) -> Option<LabelGuard> {
        match (self, other) {
            (LabelGuard::Is(x), LabelGuard::Is(y)) => (x == y).then_some(LabelGuard::Is(*x)),
            (LabelGuard::Is(x), g) | (g, LabelGuard::Is(x)) => {
                g.matches(*x).then_some(LabelGuard::Is(*x))
            }
            (LabelGuard::Any, g) | (g, LabelGuard::Any) => Some(g.clone()),
            (LabelGuard::AnyExcept(n1), LabelGuard::AnyExcept(n2)) => {
                // Merge by sort + dedup: O((n+m) log (n+m)) instead of the
                // quadratic per-element `contains` scan.
                let mut n = Vec::with_capacity(n1.len() + n2.len());
                n.extend_from_slice(n1);
                n.extend_from_slice(n2);
                n.sort_unstable();
                n.dedup();
                Some(LabelGuard::AnyExcept(n))
            }
        }
    }
}

/// One bottom-up transition.
#[derive(Clone, Debug)]
pub struct HedgeTransition {
    /// Condition on the node label.
    pub guard: LabelGuard,
    /// Regular language over children state words.
    pub horizontal: Nfa,
    /// State assigned to the node.
    pub target: TreeState,
}

/// A nondeterministic bottom-up unranked tree automaton.
#[derive(Clone, Debug)]
pub struct HedgeAutomaton {
    num_states: usize,
    transitions: Vec<HedgeTransition>,
    finals: Vec<TreeState>,
}

impl HedgeAutomaton {
    /// Creates an automaton from parts.
    pub fn new(
        num_states: usize,
        transitions: Vec<HedgeTransition>,
        finals: Vec<TreeState>,
    ) -> HedgeAutomaton {
        debug_assert!(finals.iter().all(|&f| (f as usize) < num_states));
        debug_assert!(transitions.iter().all(|t| (t.target as usize) < num_states));
        HedgeAutomaton {
            num_states,
            transitions,
            finals,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The transition list.
    pub fn transitions(&self) -> &[HedgeTransition] {
        &self.transitions
    }

    /// The final (root-accepting) states.
    pub fn finals(&self) -> &[TreeState] {
        &self.finals
    }

    /// Size measure `|A|`: states plus the sizes of all horizontal automata.
    /// This is the quantity bounded in Proposition 3.
    pub fn size(&self) -> usize {
        self.num_states
            + self
                .transitions
                .iter()
                .map(|t| t.horizontal.num_states())
                .sum::<usize>()
    }

    /// Computes, bottom-up, the set of states each node can take.
    ///
    /// Returns a vector indexed by arena id; nodes outside the live tree get
    /// an empty set.
    pub fn run(&self, doc: &Document) -> Vec<Vec<TreeState>> {
        let mut states: Vec<Vec<TreeState>> = vec![Vec::new(); doc.arena_len()];
        // Post-order traversal.
        let order = doc.all_nodes();
        for &n in order.iter().rev() {
            states[n.index()] = self.states_of_node(doc, n, &states);
        }
        states
    }

    fn states_of_node(
        &self,
        doc: &Document,
        n: NodeId,
        states: &[Vec<TreeState>],
    ) -> Vec<TreeState> {
        let label = doc.label(n);
        let child_sets: Vec<&Vec<TreeState>> =
            doc.children(n).iter().map(|c| &states[c.index()]).collect();
        let mut out: Vec<TreeState> = Vec::new();
        'trans: for t in &self.transitions {
            if out.contains(&t.target) || !t.guard.matches(label) {
                continue;
            }
            // Simulate the horizontal NFA over the children, where each child
            // contributes its whole state set as alternative letters.
            let mut cur = t.horizontal.initial_set();
            for set in &child_sets {
                if set.is_empty() {
                    continue 'trans; // some child has no state: no run
                }
                cur = t.horizontal.step_multi(&cur, set);
                if cur.is_empty() {
                    continue 'trans;
                }
            }
            if t.horizontal.set_accepts(&cur) {
                out.push(t.target);
            }
        }
        out.sort_unstable();
        out
    }

    /// Does the automaton accept `doc`?
    pub fn accepts(&self, doc: &Document) -> bool {
        let states = self.run(doc);
        let root_states = &states[doc.root().index()];
        self.finals.iter().any(|f| root_states.contains(f))
    }

    /// Validates `doc`, reporting the shallowest node that could take no
    /// state (useful diagnostics for schema validation).
    pub fn validate(&self, doc: &Document) -> Result<(), ValidationError> {
        let states = self.run(doc);
        // Report the *origin* of a failure: a stateless node whose children
        // all carry states (ancestors of such a node are stateless too, but
        // only as a consequence).
        for n in doc.all_nodes() {
            if states[n.index()].is_empty()
                && doc
                    .children(n)
                    .iter()
                    .all(|c| !states[c.index()].is_empty())
            {
                return Err(ValidationError {
                    node: n,
                    position: doc.dewey_string(n),
                    label: doc.label_name(n).to_string(),
                    reason: "no automaton state assignable".into(),
                });
            }
        }
        let root_states = &states[doc.root().index()];
        if self.finals.iter().any(|f| root_states.contains(f)) {
            Ok(())
        } else {
            Err(ValidationError {
                node: doc.root(),
                position: doc.dewey_string(doc.root()),
                label: doc.label_name(doc.root()).to_string(),
                reason: "root state is not accepting".into(),
            })
        }
    }

    /// The automaton accepting every well-formed document (one state, final,
    /// reachable under any label with any children).
    pub fn universal() -> HedgeAutomaton {
        let mut b = NfaBuilder::new();
        let s = b.add_state();
        b.add_transition(s, regtree_automata::NfaLabel::Any, s);
        b.set_start(s);
        b.set_accept(s);
        HedgeAutomaton::new(
            1,
            vec![HedgeTransition {
                guard: LabelGuard::Any,
                horizontal: b.finish(),
                target: 0,
            }],
            vec![0],
        )
    }

    /// The automaton accepting nothing.
    pub fn empty() -> HedgeAutomaton {
        HedgeAutomaton::new(1, Vec::new(), vec![0])
    }
}

/// Validation failure with location diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError {
    /// Offending node.
    pub node: NodeId,
    /// Its Dewey position.
    pub position: String,
    /// Its label text.
    pub label: String,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "validation failed at {} (<{}>): {}",
            self.position, self.label, self.reason
        )
    }
}

impl std::error::Error for ValidationError {}

/// Helper building a horizontal NFA accepting exactly the empty word.
pub fn horizontal_epsilon() -> Nfa {
    let mut b = NfaBuilder::new();
    let s = b.add_state();
    b.set_start(s);
    b.set_accept(s);
    b.finish()
}

/// Helper building a horizontal NFA accepting `q*` for one state letter.
pub fn horizontal_star(q: TreeState) -> Nfa {
    let mut b = NfaBuilder::new();
    let s = b.add_state();
    b.add_transition(s, regtree_automata::NfaLabel::Sym(q), s);
    b.set_start(s);
    b.set_accept(s);
    b.finish()
}

/// Helper building `q0* q1 q0* q2 q0* … qk q0*`: the `realize` shape used by
/// pattern compilation (Section 5.3 of DESIGN.md), with `q0` the off-trace
/// state and `q1..qk` the required, ordered special children.
pub fn horizontal_interleaved(filler: TreeState, required: &[TreeState]) -> Nfa {
    let mut b = NfaBuilder::new();
    let start = b.add_state();
    b.add_transition(start, regtree_automata::NfaLabel::Sym(filler), start);
    let mut cur = start;
    for &q in required {
        let next = b.add_state();
        b.add_transition(cur, regtree_automata::NfaLabel::Sym(q), next);
        b.add_transition(next, regtree_automata::NfaLabel::Sym(filler), next);
        cur = next;
    }
    b.set_start(start);
    b.set_accept(cur);
    b.finish()
}

/// A reusable helper: the first element label of `alphabet` distinct from the
/// reserved root, interning `"elem"` when none exists. Witness-document
/// construction uses it to realize `Any` guards.
pub fn generic_element_label(alphabet: &Alphabet) -> Symbol {
    alphabet
        .symbols_of_kind(regtree_alphabet::LabelKind::Element)
        .into_iter()
        .find(|&s| s != Alphabet::ROOT)
        .unwrap_or_else(|| alphabet.intern("elem"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_automata::NfaLabel;
    use regtree_xml::parse_document;

    /// A tiny automaton: state 0 for leaves labeled `a`, state 1 for `b`
    /// nodes whose children are `a*`, final at a root containing exactly one
    /// `b`.
    fn sample(alpha: &Alphabet) -> HedgeAutomaton {
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let t_a = HedgeTransition {
            guard: LabelGuard::Is(a),
            horizontal: horizontal_epsilon(),
            target: 0,
        };
        let t_b = HedgeTransition {
            guard: LabelGuard::Is(b),
            horizontal: horizontal_star(0),
            target: 1,
        };
        let mut h = NfaBuilder::new();
        let s0 = h.add_state();
        let s1 = h.add_state();
        h.add_transition(s0, NfaLabel::Sym(1), s1);
        h.set_start(s0);
        h.set_accept(s1);
        let t_root = HedgeTransition {
            guard: LabelGuard::Is(Alphabet::ROOT),
            horizontal: h.finish(),
            target: 2,
        };
        HedgeAutomaton::new(3, vec![t_a, t_b, t_root], vec![2])
    }

    #[test]
    fn accepts_matching_documents() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        let good = parse_document(&alpha, "<b><a/><a/></b>").unwrap();
        assert!(m.accepts(&good));
        let empty_b = parse_document(&alpha, "<b/>").unwrap();
        assert!(m.accepts(&empty_b));
    }

    #[test]
    fn rejects_mismatching_documents() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        for bad in ["<a/>", "<b><b/></b>", "<b><a><a/></a></b>", "<c/>"] {
            let doc = parse_document(&alpha, bad).unwrap();
            assert!(!m.accepts(&doc), "should reject {bad}");
        }
    }

    #[test]
    fn validate_reports_offending_node() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        let doc = parse_document(&alpha, "<b><c/></b>").unwrap();
        let err = m.validate(&doc).unwrap_err();
        assert_eq!(err.label, "c");
        assert_eq!(err.position, "0.0");
    }

    #[test]
    fn universal_and_empty() {
        let alpha = Alphabet::new();
        let docs = ["<x/>", "<a><b><c/></b></a>", "<p q=\"1\">text</p>"];
        let uni = HedgeAutomaton::universal();
        let none = HedgeAutomaton::empty();
        for d in docs {
            let doc = parse_document(&alpha, d).unwrap();
            assert!(uni.accepts(&doc));
            assert!(!none.accepts(&doc));
        }
    }

    #[test]
    fn guards() {
        let a = Alphabet::new();
        let x = a.intern("x");
        let y = a.intern("y");
        assert!(LabelGuard::Is(x).matches(x));
        assert!(!LabelGuard::Is(x).matches(y));
        assert!(LabelGuard::Any.matches(x));
        assert!(LabelGuard::AnyExcept(vec![x]).matches(y));
        assert!(!LabelGuard::AnyExcept(vec![x]).matches(x));
    }

    #[test]
    fn interleaved_horizontal_language() {
        let h = horizontal_interleaved(0, &[1, 2]);
        assert!(h.accepts(&[1, 2]));
        assert!(h.accepts(&[0, 1, 0, 0, 2, 0]));
        assert!(!h.accepts(&[2, 1]));
        assert!(!h.accepts(&[1]));
        assert!(!h.accepts(&[1, 2, 1]));
        let empty_req = horizontal_interleaved(0, &[]);
        assert!(empty_req.accepts(&[]));
        assert!(empty_req.accepts(&[0, 0]));
        assert!(!empty_req.accepts(&[1]));
    }

    #[test]
    fn size_counts_horizontal_automata() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        assert!(m.size() > m.num_states());
    }

    #[test]
    fn nondeterministic_union_of_states() {
        // Two transitions assign different states to the same label.
        let alpha = Alphabet::new();
        let a = alpha.intern("a");
        let t1 = HedgeTransition {
            guard: LabelGuard::Is(a),
            horizontal: horizontal_epsilon(),
            target: 0,
        };
        let t2 = HedgeTransition {
            guard: LabelGuard::Any,
            horizontal: horizontal_epsilon(),
            target: 1,
        };
        let root = HedgeTransition {
            guard: LabelGuard::Is(Alphabet::ROOT),
            horizontal: horizontal_star(1),
            target: 2,
        };
        let m = HedgeAutomaton::new(3, vec![t1, t2, root], vec![2]);
        let doc = parse_document(&alpha, "<a/>").unwrap();
        let states = m.run(&doc);
        let a_node = doc.children(doc.root())[0];
        assert_eq!(states[a_node.index()], vec![0, 1]);
        assert!(m.accepts(&doc));
    }
}
