//! One-pass streaming validation against a bottom-up automaton.
//!
//! Bottom-up runs only ever need the states of a node's *children*, and a
//! streaming parse closes every child before it closes the parent — so the
//! automaton can run *during* ingest. [`StreamValidator`] plugs into the
//! [`regtree_xml::stream`] event stream and maintains, per open element, the
//! set of live transition runs (a horizontal-NFA frontier per guard-matching
//! transition). Memory is bounded by the open-element depth times the
//! automaton size, independent of document width.
//!
//! On a child's close event its state set is folded into every live parent
//! run; a node whose runs all die (or that matched no guard) is exactly a
//! batch-validation failure *origin* — a stateless node whose children all
//! carry states — and is reported immediately, aborting the parse. Failure
//! origins are pairwise incomparable (every ancestor of an origin has a
//! stateless child, hence is not itself an origin), and incomparable nodes
//! close in document order, so the first streaming error is the same node
//! [`HedgeAutomaton::validate`] would report after a full parse.

use std::sync::Arc;

use regtree_alphabet::Alphabet;
use regtree_automata::StateId;
use regtree_runtime::{SpanKind, TraceHandle};
use regtree_xml::stream::{stream_document_with, StreamError, StreamSink};
use regtree_xml::{Document, LabelIndex, NodeId, ParseOptions, XmlError};

use crate::automaton::{HedgeAutomaton, TreeState, ValidationError};

/// One live transition run at an open node: the transition's index and the
/// current frontier of its horizontal NFA after the children seen so far.
struct Run {
    transition: usize,
    frontier: Vec<StateId>,
}

/// Incremental bottom-up automaton run over a streaming parse.
///
/// Implements [`StreamSink`]; feed it to [`regtree_xml::stream_document`] or
/// use the [`stream_validated`] convenience wrapper. After a failed ingest,
/// [`StreamValidator::error`] holds the structured diagnostic.
pub struct StreamValidator {
    automaton: Arc<HedgeAutomaton>,
    /// One frame per open node (the reserved root included): its live runs.
    frames: Vec<Vec<Run>>,
    error: Option<ValidationError>,
}

impl StreamValidator {
    /// Creates a validator for one document ingest.
    pub fn new(automaton: Arc<HedgeAutomaton>) -> StreamValidator {
        StreamValidator {
            automaton,
            frames: Vec::new(),
            error: None,
        }
    }

    /// The structured error behind a `Sink` failure, if validation failed.
    pub fn error(&self) -> Option<&ValidationError> {
        self.error.as_ref()
    }

    /// Takes the structured error, if any.
    pub fn take_error(&mut self) -> Option<ValidationError> {
        self.error.take()
    }

    /// Maximum live frames (diagnostic: memory is O(depth × |A|)).
    pub fn open_depth(&self) -> usize {
        self.frames.len()
    }

    fn fail(&mut self, doc: &Document, node: NodeId, reason: &str) -> Result<(), String> {
        let err = ValidationError {
            node,
            position: doc.dewey_string(node),
            label: doc.label_name(node).to_string(),
            reason: reason.into(),
        };
        let msg = err.to_string();
        self.error = Some(err);
        Err(msg)
    }
}

impl StreamSink for StreamValidator {
    fn open(&mut self, doc: &Document, node: NodeId) -> Result<(), String> {
        let label = doc.label(node);
        let runs = self
            .automaton
            .transitions()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.guard.matches(label))
            .map(|(i, t)| Run {
                transition: i,
                frontier: t.horizontal.initial_set(),
            })
            .collect();
        self.frames.push(runs);
        Ok(())
    }

    fn close(&mut self, doc: &Document, node: NodeId) -> Result<(), String> {
        let runs = self.frames.pop().expect("close without matching open");
        let transitions = self.automaton.transitions();
        let mut states: Vec<TreeState> = runs
            .iter()
            .filter(|r| {
                transitions[r.transition]
                    .horizontal
                    .set_accepts(&r.frontier)
            })
            .map(|r| transitions[r.transition].target)
            .collect();
        states.sort_unstable();
        states.dedup();

        if let Some(parent_runs) = self.frames.last_mut() {
            if states.is_empty() {
                return self.fail(doc, node, "no automaton state assignable");
            }
            // Fold this child's state set into every live parent run; runs
            // whose frontier empties are dead and dropped.
            parent_runs.retain_mut(|r| {
                let h = &transitions[r.transition].horizontal;
                r.frontier = h.step_multi(&r.frontier, &states);
                !r.frontier.is_empty()
            });
            Ok(())
        } else {
            // Root close: end of document.
            if self.automaton.finals().iter().any(|f| states.contains(f)) {
                Ok(())
            } else if states.is_empty() && !doc.children(node).is_empty() {
                self.fail(doc, node, "no automaton state assignable")
            } else {
                self.fail(doc, node, "root state is not accepting")
            }
        }
    }
}

/// Why a validated streaming ingest failed.
#[derive(Clone, Debug)]
pub enum IngestError {
    /// The input was not well-formed XML.
    Xml(XmlError),
    /// The document is well-formed but not in the automaton's language.
    Invalid(ValidationError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Xml(e) => write!(f, "{e}"),
            IngestError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Parses, indexes and validates `src` in a single pass: the streaming
/// counterpart of `parse_document` + `LabelIndex::build` + `validate`.
pub fn stream_validated(
    automaton: Arc<HedgeAutomaton>,
    alphabet: &Alphabet,
    src: &str,
) -> Result<(Document, LabelIndex), IngestError> {
    stream_validated_with(automaton, alphabet, src, ParseOptions::default())
}

/// [`stream_validated_with`] wrapped in a [`SpanKind::Ingest`] trace span,
/// so profiles attribute the fused parse+validate+index pass as one phase.
pub fn stream_validated_traced(
    automaton: Arc<HedgeAutomaton>,
    alphabet: &Alphabet,
    src: &str,
    options: ParseOptions,
    trace: &TraceHandle,
) -> Result<(Document, LabelIndex), IngestError> {
    let _span = trace.span(SpanKind::Ingest, "");
    stream_validated_with(automaton, alphabet, src, options)
}

/// [`stream_validated`] with explicit parse options.
pub fn stream_validated_with(
    automaton: Arc<HedgeAutomaton>,
    alphabet: &Alphabet,
    src: &str,
    options: ParseOptions,
) -> Result<(Document, LabelIndex), IngestError> {
    let mut v = StreamValidator::new(automaton);
    match stream_document_with(alphabet, src, options, &mut v) {
        Ok(pair) => Ok(pair),
        Err(StreamError::Parse(e)) => Err(IngestError::Xml(e)),
        Err(StreamError::Sink { position, message }) => {
            Err(IngestError::Invalid(v.take_error().unwrap_or_else(|| {
                // Defensive: a sink error not raised through `fail`.
                ValidationError {
                    node: NodeId(0),
                    position: format!("byte {position}"),
                    label: "/".into(),
                    reason: message,
                }
            })))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn exam_schema(a: &Alphabet) -> Schema {
        Schema::parse(
            a,
            "root: session\n\
             session: candidate*\n\
             candidate: @IDN? exam*\n\
             exam: discipline rank?\n\
             discipline: #text\n\
             rank: #text\n",
        )
        .unwrap()
    }

    #[test]
    fn valid_documents_stream_through() {
        let a = Alphabet::new();
        let schema = exam_schema(&a);
        let src = "<session><candidate IDN=\"78\"><exam><discipline>math</discipline>\
                   <rank>1</rank></exam></candidate><candidate/></session>";
        let (doc, idx) = stream_validated(schema.compiled(), &a, src).unwrap();
        assert!(schema.validate(&doc).is_ok());
        assert_eq!(idx, LabelIndex::build(&doc));
        let batch = regtree_xml::parse_document(&a, src).unwrap();
        assert!(regtree_xml::value_eq(
            &doc,
            doc.root(),
            &batch,
            batch.root()
        ));
    }

    #[test]
    fn invalid_content_reports_batch_identical_origin() {
        let a = Alphabet::new();
        let schema = exam_schema(&a);
        // <rank> before <discipline> violates exam's content model.
        let src = "<session><candidate><exam><rank>1</rank>\
                   <discipline>math</discipline></exam></candidate></session>";
        let err = match stream_validated(schema.compiled(), &a, src) {
            Err(IngestError::Invalid(e)) => e,
            other => panic!("expected invalid, got {other:?}"),
        };
        let doc = regtree_xml::parse_document(&a, src).unwrap();
        let batch = schema.validate(&doc).unwrap_err();
        assert_eq!(err.position, batch.position);
        assert_eq!(err.label, batch.label);
        assert_eq!(err.reason, batch.reason);
    }

    #[test]
    fn unknown_label_fails_at_that_node() {
        let a = Alphabet::new();
        let schema = exam_schema(&a);
        let src = "<session><intruder/></session>";
        match stream_validated(schema.compiled(), &a, src) {
            Err(IngestError::Invalid(e)) => {
                assert_eq!(e.label, "intruder");
                assert_eq!(e.reason, "no automaton state assignable");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn root_model_violation_reports_root() {
        let a = Alphabet::new();
        let schema = exam_schema(&a);
        // Two top-level sessions: each session is fine, the root word is not,
        // so the root itself is the failure origin.
        let src = "<session/><session/>";
        let err = match stream_validated(schema.compiled(), &a, src) {
            Err(IngestError::Invalid(e)) => e,
            other => panic!("expected invalid, got {other:?}"),
        };
        assert_eq!(err.position, "ε");
        let doc = regtree_xml::parse_document(&a, src).unwrap();
        let batch = schema.validate(&doc).unwrap_err();
        assert_eq!(err.position, batch.position);
        assert_eq!(err.reason, batch.reason);
    }

    #[test]
    fn malformed_xml_surfaces_parse_error() {
        let a = Alphabet::new();
        let schema = exam_schema(&a);
        match stream_validated(schema.compiled(), &a, "<session><open></session>") {
            Err(IngestError::Xml(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn abort_is_prompt_and_memory_stays_bounded() {
        let a = Alphabet::new();
        let schema = exam_schema(&a);
        // Deep chain of bogus elements after one invalid node: the stream
        // aborts at the first origin without consuming the rest.
        let mut src = String::from("<session><intruder/>");
        for _ in 0..1000 {
            src.push_str("<candidate>");
        }
        let mut v = StreamValidator::new(schema.compiled());
        let res = regtree_xml::stream_document(&a, &src, &mut v);
        assert!(matches!(res, Err(StreamError::Sink { .. })));
        assert_eq!(
            v.error().map(|e| e.label.as_str()),
            Some("intruder"),
            "aborted at the first failure origin"
        );
    }
}
