//! Unranked bottom-up (hedge) tree automata for `regtree`.
//!
//! The paper's Proposition 3 works entirely with “regular Bottom-Up tree
//! automata”: the schema `S` is one (`A_S`), patterns compile to them, and
//! the independence criterion is an emptiness test on their product. This
//! crate provides that substrate:
//!
//! * [`HedgeAutomaton`] — nondeterministic bottom-up automata over unranked
//!   trees, with regular horizontal languages ([`regtree_automata::Nfa`]s
//!   whose letters are tree states);
//! * [`product`] — intersection (the `A_S × B` product of Proposition 3) and
//!   union;
//! * [`emptiness`] — the polynomial realizability fixpoint, extended with
//!   **witness-document extraction** so a nonempty IC language yields a
//!   concrete document;
//! * [`Schema`] — a DTD-like rule language compiled to automata.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod compiled;
pub mod emptiness;
pub mod partition;
pub mod product;
pub mod schema;
pub mod stream_validate;

pub use automaton::{
    generic_element_label, horizontal_epsilon, horizontal_interleaved, horizontal_star,
    HedgeAutomaton, HedgeTransition, LabelGuard, TreeState, ValidationError,
};
pub use compiled::{CompiledAutomaton, Csr, ANY_LETTER};
pub use emptiness::{
    is_empty_language, realizability, realizability_governed, witness_document,
    witness_document_governed, witness_label, witness_spec,
};
pub use partition::{iter_classes, GuardMask, GuardPartition};
pub use product::{intersect, intersect_with_encoding, union, PairEncoding};
pub use schema::{Schema, SchemaError};
pub use stream_validate::{
    stream_validated, stream_validated_traced, stream_validated_with, IngestError, StreamValidator,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regtree_alphabet::Alphabet;
    use regtree_xml::{document_from_specs, Document, TreeSpec};

    /// A fixed alphabet: a, b, c elements (symbols 2, 3, 4).
    fn alpha() -> Alphabet {
        Alphabet::with_labels(["a", "b", "c"])
    }

    /// Random small schema over {a, b, c}: every label gets a random content
    /// model drawn from a few shapes.
    fn arb_schema() -> impl Strategy<Value = Schema> {
        let model = prop_oneof![
            Just("EMPTY".to_string()),
            Just("a*".to_string()),
            Just("b?".to_string()),
            Just("(a|b)*".to_string()),
            Just("a b".to_string()),
            Just("c+".to_string()),
            Just("#text".to_string()),
        ];
        (
            model.clone(),
            model.clone(),
            model,
            prop_oneof![Just("a"), Just("b"), Just("a*"), Just("(a|b)+")],
        )
            .prop_map(|(ma, mb, mc, root)| {
                let a = alpha();
                let text = format!("root: {root}\na: {ma}\nb: {mb}\nc: {mc}\n");
                Schema::parse(&a, &text).expect("generated schema parses")
            })
    }

    /// Random document over {a, b, c} elements and text.
    fn arb_doc() -> impl Strategy<Value = Document> {
        let leaf = prop_oneof![
            (0u32..3).prop_map(|i| TreeSpec::elem(regtree_alphabet::Symbol(i + 2), vec![])),
            Just(TreeSpec::text("t")),
        ];
        let spec = leaf.prop_recursive(3, 24, 3, |inner| {
            ((0u32..3), prop::collection::vec(inner, 0..4))
                .prop_map(|(i, children)| TreeSpec::elem(regtree_alphabet::Symbol(i + 2), children))
        });
        prop::collection::vec(spec, 0..3).prop_map(|tops| document_from_specs(alpha(), &tops))
    }

    /// Reference implementation of schema acceptance by direct recursion.
    fn schema_accepts_ref(schema: &Schema, doc: &Document) -> bool {
        fn node_ok(schema: &Schema, doc: &Document, n: regtree_xml::NodeId) -> bool {
            use regtree_alphabet::LabelKind;
            match doc.kind(n) {
                LabelKind::Attribute | LabelKind::Text => doc.children(n).is_empty(),
                LabelKind::Element => {
                    let Some((_, model)) = schema.rules().iter().find(|(l, _)| *l == doc.label(n))
                    else {
                        return false;
                    };
                    let word: Vec<_> = doc.children(n).iter().map(|&c| doc.label(c)).collect();
                    model.matches(&word) && doc.children(n).iter().all(|&c| node_ok(schema, doc, c))
                }
            }
        }
        let word: Vec<_> = doc
            .children(doc.root())
            .iter()
            .map(|&c| doc.label(c))
            .collect();
        schema.root_model().matches(&word)
            && doc
                .children(doc.root())
                .iter()
                .all(|&c| node_ok(schema, doc, c))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The compiled automaton agrees with direct recursive validation.
        #[test]
        fn compiled_schema_agrees_with_reference(schema in arb_schema(), doc in arb_doc()) {
            let m = schema.compile();
            prop_assert_eq!(m.accepts(&doc), schema_accepts_ref(&schema, &doc));
        }

        /// Product automaton = language intersection on random docs.
        #[test]
        fn product_is_intersection(s1 in arb_schema(), s2 in arb_schema(), doc in arb_doc()) {
            let m1 = s1.compile();
            let m2 = s2.compile();
            let prod = intersect(&m1, &m2);
            prop_assert_eq!(prod.accepts(&doc), m1.accepts(&doc) && m2.accepts(&doc));
        }

        /// Union automaton = language union on random docs.
        #[test]
        fn union_is_union(s1 in arb_schema(), s2 in arb_schema(), doc in arb_doc()) {
            let m1 = s1.compile();
            let m2 = s2.compile();
            let u = union(&m1, &m2);
            prop_assert_eq!(u.accepts(&doc), m1.accepts(&doc) || m2.accepts(&doc));
        }

        /// Emptiness witnesses are genuine members; emptiness of the product
        /// is sound on sampled documents.
        #[test]
        fn emptiness_witnesses(s1 in arb_schema(), s2 in arb_schema(), doc in arb_doc()) {
            let a = alpha();
            let prod = intersect(&s1.compile(), &s2.compile());
            match witness_document(&prod, &a) {
                Some(w) => prop_assert!(prod.accepts(&w), "witness rejected"),
                None => prop_assert!(!prod.accepts(&doc), "empty language accepted a doc"),
            }
        }

        /// A schema's own witness validates against the schema.
        #[test]
        fn schema_witness_validates(schema in arb_schema()) {
            let a = alpha();
            let m = schema.compile();
            if let Some(w) = witness_document(&m, &a) {
                prop_assert!(schema.validate(&w).is_ok());
            }
        }
    }
}
