//! Arena/CSR compiled form of a [`HedgeAutomaton`] for the hot loops.
//!
//! The symbolic representation ([`HedgeAutomaton`], [`LabelGuard`],
//! [`Nfa`](regtree_automata::Nfa)) is built for construction and inspection: guards are enums with
//! heap-allocated exclusion lists, horizontal transitions live in per-state
//! `Vec`s mixing ε, symbol and wildcard edges. The product engines
//! (`emptiness`, the lazy IC search) spend their time firing exactly those
//! edges and intersecting exactly those guards, so a [`CompiledAutomaton`]
//! flattens everything once per analysis into index-based arenas:
//!
//! * the horizontal NFAs of *all* transitions are flattened into one global
//!   state space with two shared CSR tables (`u32` offsets, contiguous
//!   rows): ε edges, and a fused letter-step table whose rows hold symbol
//!   edges then wildcard edges ([`ANY_LETTER`]) — a handful of allocations
//!   per automaton, not per transition, and a frontier step scans exactly
//!   one contiguous slice per component;
//! * every guard is pre-rendered as a packed minterm bitmask over a
//!   [`GuardPartition`] (one contiguous `u64` arena, fixed stride), so a
//!   guard conjunction is a word-parallel `&` instead of a clone-and-dedup
//!   walk of symbol lists — the symbolic [`LabelGuard`] stays behind at the
//!   construction/API boundary;
//! * transitions are additionally grouped contiguously by target tree state
//!   (`transitions_targeting`) and by `Is`-guard class
//!   (`guard_class_candidates`) via counting sort, replacing per-use linear
//!   scans and hash-keyed candidate indexes.
//!
//! Masks are exact (not conservative) as long as `partition` covers the
//! automaton's guards — see the [`crate::partition`] module docs.

use regtree_alphabet::Alphabet;
use regtree_automata::{NfaLabel, StateId};

use crate::automaton::{HedgeAutomaton, LabelGuard, TreeState};
use crate::partition::GuardPartition;

/// The sentinel letter of wildcard entries in the fused horizontal step
/// table: a wildcard edge consumes every letter, so a step scan matches an
/// entry when its letter equals the wanted one *or* this sentinel. Real
/// letters are tree states and never reach `u32::MAX`.
pub const ANY_LETTER: u32 = u32::MAX;

/// A compressed-sparse-row table: `row(i)` is a contiguous slice, offsets
/// are `u32`.
#[derive(Clone, Debug, Default)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    items: Vec<T>,
}

impl<T> Csr<T> {
    /// Builds a table by pushing rows in order: `fill(i, row)` appends row
    /// `i`'s items.
    pub fn build(rows: usize, mut fill: impl FnMut(usize, &mut Vec<T>)) -> Csr<T> {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        let mut items = Vec::new();
        for i in 0..rows {
            fill(i, &mut items);
            offsets.push(u32::try_from(items.len()).expect("CSR table exceeds u32 offsets"));
        }
        Csr { offsets, items }
    }

    /// Wraps prebuilt parts: `offsets` must start at 0, be monotone, and
    /// end at `items.len()`.
    fn from_parts(offsets: Vec<u32>, items: Vec<T>) -> Csr<T> {
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(offsets.last().copied(), Some(items.len() as u32));
        Csr { offsets, items }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Row `i` as a contiguous slice (empty for out-of-range rows).
    pub fn row(&self, i: usize) -> &[T] {
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&a), Some(&b)) => &self.items[a as usize..b as usize],
            _ => &[],
        }
    }
}

/// The arena/CSR compiled form of a [`HedgeAutomaton`] relative to a guard
/// partition. See the [module docs](self).
///
/// Horizontal-NFA states of all transitions share one *global* numbering:
/// transition `i`'s states are contiguous, its start state is
/// [`horizontal_start`], and the edge accessors ([`h_eps_from`],
/// [`h_step_from`]) and [`h_is_accept`] take global ids, with edge targets
/// already rebased to global ids. Symbol-edge letters stay what they always
/// were: tree states of this automaton; wildcard edges carry [`ANY_LETTER`].
///
/// [`h_eps_from`]: CompiledAutomaton::h_eps_from
/// [`h_step_from`]: CompiledAutomaton::h_step_from
/// [`h_is_accept`]: CompiledAutomaton::h_is_accept
/// [`horizontal_start`]: CompiledAutomaton::horizontal_start
#[derive(Clone, Debug)]
pub struct CompiledAutomaton {
    num_states: usize,
    mask_words: usize,
    targets: Vec<TreeState>,
    /// Guard masks, one `mask_words` stride per transition.
    masks: Vec<u64>,
    root_match: Vec<bool>,
    leaf_only: Vec<bool>,
    /// Global start state of transition `i`'s horizontal NFA.
    h_start: Vec<StateId>,
    /// Accept bitset over global horizontal states.
    h_accept: Vec<u64>,
    h_eps: Csr<StateId>,
    /// Letter-consuming edges, one fused row per state: symbol edges first,
    /// then wildcard edges with [`ANY_LETTER`] as the letter — the hot loop
    /// scans a single slice per state.
    h_step: Csr<(u32, StateId)>,
    by_target: Csr<u32>,
    by_guard_class: Csr<u32>,
    wild: Vec<u32>,
    finals: Vec<u64>,
}

/// Counting sort of transition indices by a small integer key, as a CSR
/// table with `buckets` rows. Preserves original order within each bucket.
fn bucket_by(buckets: usize, keys: impl Iterator<Item = Option<usize>> + Clone) -> Csr<u32> {
    let mut offsets = vec![0u32; buckets + 1];
    let mut total = 0u32;
    for k in keys.clone().flatten() {
        offsets[k + 1] += 1;
        total += 1;
    }
    for b in 1..offsets.len() {
        offsets[b] += offsets[b - 1];
    }
    // Scatter using `offsets[k]` itself as the bucket cursor: afterwards
    // entry `k` holds bucket `k`'s *end*, i.e. the old `offsets[k + 1]`, so
    // one shift right restores the start offsets without a scratch copy.
    let mut items = vec![0u32; total as usize];
    for (i, k) in keys.enumerate() {
        if let Some(k) = k {
            items[offsets[k] as usize] = i as u32;
            offsets[k] += 1;
        }
    }
    offsets.copy_within(0..buckets, 1);
    offsets[0] = 0;
    Csr::from_parts(offsets, items)
}

impl CompiledAutomaton {
    /// Compiles `automaton` against `partition` (which should cover its
    /// guards for the masks to be exact; [`GuardPartition::from_automata`]
    /// over every automaton of the analysis guarantees that).
    pub fn compile(
        automaton: &HedgeAutomaton,
        partition: &GuardPartition,
        alphabet: &Alphabet,
    ) -> CompiledAutomaton {
        let transitions = automaton.transitions();
        let nt = transitions.len();
        let words = partition.mask_words();
        let mut masks = vec![0u64; nt * words];
        let mut targets = Vec::with_capacity(nt);
        let mut root_match = Vec::with_capacity(nt);
        let mut leaf_only = Vec::with_capacity(nt);
        // One pass flattens every horizontal NFA into the shared arenas.
        let total_h: usize = transitions.iter().map(|t| t.horizontal.num_states()).sum();
        let mut h_start = Vec::with_capacity(nt);
        let mut h_accept = vec![0u64; total_h.div_ceil(64).max(1)];
        let mut eps_off = Vec::with_capacity(total_h + 1);
        let mut step_off = Vec::with_capacity(total_h + 1);
        eps_off.push(0u32);
        step_off.push(0u32);
        let mut eps_items = Vec::new();
        let mut step_items: Vec<(u32, StateId)> = Vec::new();
        let kinds = alphabet.kind_reader();
        let mut base: u32 = 0;
        for (i, t) in transitions.iter().enumerate() {
            partition.mask_into(&t.guard, &mut masks[i * words..(i + 1) * words]);
            targets.push(t.target);
            root_match.push(t.guard.matches(Alphabet::ROOT));
            leaf_only.push(t.guard.forces_leaf_with(&kinds));
            let h = &t.horizontal;
            h_start.push(base + h.start());
            let n = h.num_states();
            for s in 0..n {
                let sid = s as StateId;
                if h.is_accept(sid) {
                    let g = base as usize + s;
                    h_accept[g / 64] |= 1u64 << (g % 64);
                }
                // Symbol edges first, wildcard edges appended last, so the
                // row keeps the fused symbol-then-ANY layout.
                for &(l, tgt) in h.transitions_from(sid) {
                    match l {
                        NfaLabel::Eps => eps_items.push(base + tgt),
                        NfaLabel::Sym(a) => step_items.push((a, base + tgt)),
                        NfaLabel::Any => {}
                    }
                }
                for &(l, tgt) in h.transitions_from(sid) {
                    if matches!(l, NfaLabel::Any) {
                        step_items.push((ANY_LETTER, base + tgt));
                    }
                }
                eps_off.push(eps_items.len() as u32);
                step_off.push(step_items.len() as u32);
            }
            base += n as u32;
        }
        drop(kinds);
        let num_states = automaton.num_states();
        let by_target = bucket_by(
            num_states,
            transitions.iter().map(|t| Some(t.target as usize)),
        );
        // `Is`-guard transitions bucket by their symbol's class; `Any` and
        // `AnyExcept` guards are candidates for every class.
        let by_guard_class = bucket_by(
            partition.num_classes(),
            transitions.iter().map(|t| match &t.guard {
                LabelGuard::Is(s) => Some(partition.class_of(*s)),
                LabelGuard::Any | LabelGuard::AnyExcept(_) => None,
            }),
        );
        let wild: Vec<u32> = transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.guard, LabelGuard::Is(_)))
            .map(|(i, _)| i as u32)
            .collect();
        let mut finals = vec![0u64; num_states.div_ceil(64).max(1)];
        for &f in automaton.finals() {
            finals[f as usize / 64] |= 1u64 << (f as usize % 64);
        }
        CompiledAutomaton {
            num_states,
            mask_words: words,
            targets,
            masks,
            root_match,
            leaf_only,
            h_start,
            h_accept,
            h_eps: Csr::from_parts(eps_off, eps_items),
            h_step: Csr::from_parts(step_off, step_items),
            by_target,
            by_guard_class,
            wild,
            finals,
        }
    }

    /// Number of tree states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.targets.len()
    }

    /// Words per guard mask.
    pub fn mask_words(&self) -> usize {
        self.mask_words
    }

    /// Target state of transition `i`.
    pub fn target(&self, i: usize) -> TreeState {
        self.targets[i]
    }

    /// Guard mask of transition `i` (a `mask_words` slice of the arena).
    pub fn mask(&self, i: usize) -> &[u64] {
        &self.masks[i * self.mask_words..(i + 1) * self.mask_words]
    }

    /// Does transition `i`'s guard match the reserved root label?
    pub fn guard_matches_root(&self, i: usize) -> bool {
        self.root_match[i]
    }

    /// Does transition `i`'s guard force a leaf node?
    pub fn forces_leaf(&self, i: usize) -> bool {
        self.leaf_only[i]
    }

    /// Global start state of transition `i`'s horizontal NFA.
    pub fn horizontal_start(&self, i: usize) -> StateId {
        self.h_start[i]
    }

    /// Is global horizontal state `s` accepting? Constant-time bitset probe.
    pub fn h_is_accept(&self, s: StateId) -> bool {
        let i = s as usize;
        self.h_accept
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// ε-edge targets (global) of global horizontal state `s`.
    pub fn h_eps_from(&self, s: StateId) -> &[StateId] {
        self.h_eps.row(s as usize)
    }

    /// Letter-consuming edges `(letter, global target)` of global horizontal
    /// state `s`: symbol edges first, then wildcard edges with
    /// [`ANY_LETTER`]. An entry matches letter `a` iff its letter is `a` or
    /// [`ANY_LETTER`].
    pub fn h_step_from(&self, s: StateId) -> &[(u32, StateId)] {
        self.h_step.row(s as usize)
    }

    /// Transition indices targeting state `q`, contiguous.
    pub fn transitions_targeting(&self, q: TreeState) -> &[u32] {
        self.by_target.row(q as usize)
    }

    /// Is `q` a final (root-accepting) state?
    pub fn is_final(&self, q: TreeState) -> bool {
        let i = q as usize;
        self.finals
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Transition indices whose guard is `Is(s)` with `s` in class `c`.
    pub fn guard_class_candidates(&self, c: usize) -> &[u32] {
        self.by_guard_class.row(c)
    }

    /// Transition indices with `Any`/`AnyExcept` guards (candidates for
    /// every class).
    pub fn wildcard_transitions(&self) -> &[u32] {
        &self.wild
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{horizontal_epsilon, horizontal_star, HedgeTransition};
    use regtree_automata::NfaBuilder;

    fn sample(alpha: &Alphabet) -> HedgeAutomaton {
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut h = NfaBuilder::new();
        let s0 = h.add_state();
        let s1 = h.add_state();
        h.add_transition(s0, NfaLabel::Eps, s1);
        h.add_transition(s0, NfaLabel::Sym(1), s1);
        h.add_transition(s1, NfaLabel::Any, s1);
        h.set_start(s0);
        h.set_accept(s1);
        HedgeAutomaton::new(
            3,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(a),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::AnyExcept(vec![b]),
                    horizontal: horizontal_star(0),
                    target: 1,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: h.finish(),
                    target: 2,
                },
            ],
            vec![2],
        )
    }

    #[test]
    fn csr_rows_round_trip() {
        let c: Csr<u32> = Csr::build(3, |i, row| {
            for k in 0..i {
                row.push(k as u32);
            }
        });
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(0), &[] as &[u32]);
        assert_eq!(c.row(1), &[0]);
        assert_eq!(c.row(2), &[0, 1]);
        assert_eq!(c.row(99), &[] as &[u32]);
    }

    #[test]
    fn flattened_horizontals_split_edge_kinds() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        let part = GuardPartition::from_automata([&m]);
        let c = CompiledAutomaton::compile(&m, &part, &alpha);
        // Transition 0: 1 ε-state NFA; transition 1: 1-state star over
        // letter 0; transition 2: the hand-built 2-state NFA.
        let b2 = c.horizontal_start(2);
        assert_eq!(c.h_eps_from(b2), &[b2 + 1]);
        assert_eq!(c.h_step_from(b2), &[(1, b2 + 1)]);
        assert_eq!(c.h_step_from(b2 + 1), &[(ANY_LETTER, b2 + 1)]);
        assert!(!c.h_is_accept(b2));
        assert!(c.h_is_accept(b2 + 1));
        // The star NFA of transition 1 loops on letter 0 in its own row.
        let b1 = c.horizontal_start(1);
        assert_eq!(c.h_step_from(b1), &[(0, b1)]);
        assert!(c.h_is_accept(b1));
    }

    #[test]
    fn compiled_flags_and_groupings_match_symbolic_form() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        let part = GuardPartition::from_automata([&m]);
        let c = CompiledAutomaton::compile(&m, &part, &alpha);
        assert_eq!(c.num_states(), 3);
        assert_eq!(c.num_transitions(), 3);
        for (i, t) in m.transitions().iter().enumerate() {
            assert_eq!(c.target(i), t.target);
            assert_eq!(c.guard_matches_root(i), t.guard.matches(Alphabet::ROOT));
            assert_eq!(c.forces_leaf(i), t.guard.forces_leaf(&alpha));
            assert_eq!(c.mask(i), part.mask(&t.guard).words());
        }
        assert!(c.is_final(2));
        assert!(!c.is_final(0));
        assert_eq!(c.transitions_targeting(1), &[1]);
        assert_eq!(c.transitions_targeting(2), &[2]);
        let a = alpha.intern("a");
        assert_eq!(c.guard_class_candidates(part.class_of(a)), &[0]);
        assert_eq!(c.wildcard_transitions(), &[1]);
    }
}
