//! Emptiness testing with witness-document extraction.
//!
//! The independence criterion IC (paper Proposition 2/3) reduces to the
//! emptiness of the language `L` of a product hedge automaton. The classical
//! fixpoint — a state is *realizable* once some transition can fire using
//! only realizable child states — runs in polynomial time; we additionally
//! record, per state, a firing so that a concrete **witness document** can be
//! rebuilt whenever the language is nonempty. Witnesses make a failed
//! independence check actionable: they exhibit a document on which an update
//! may interact with the FD.
//!
//! The fixpoint is *worklist-driven and incremental*: every transition keeps
//! a frontier of horizontal-NFA states reachable over the realized letters
//! seen so far, NFA edges blocked on a not-yet-realized letter are indexed in
//! a waiting list keyed by that letter, and realizing a state advances
//! exactly the frontiers waiting on it. No horizontal automaton is ever
//! re-simulated from scratch, and [`witness_document`] exits the moment an
//! accepting root firing appears. Each frontier records a first-reach
//! back-pointer per NFA state, from which the accepted child word is
//! reconstructed.
//!
//! Well-formedness of witnesses is respected: a transition guarded by an
//! attribute/text label can only fire with an empty child word (those nodes
//! are leaves carrying a placeholder value).

use regtree_alphabet::{Alphabet, LabelKind, Symbol};
use regtree_automata::{NfaLabel, StateId};
use regtree_runtime::{Budget, Resource, SpanKind};
use regtree_xml::{Document, TreeSpec};

use crate::automaton::{generic_element_label, HedgeAutomaton, LabelGuard, TreeState};

/// Per-state firing recorded during the fixpoint: which transition fired and
/// with which word of (already realizable) child states.
#[derive(Clone, Debug)]
struct Firing {
    transition: usize,
    child_states: Vec<TreeState>,
}

/// Result of the realizability analysis.
pub struct Realizability {
    firings: Vec<Option<Firing>>,
    realizable: Vec<bool>,
    /// Realized states in realization order; each state appears exactly once.
    order: Vec<TreeState>,
}

impl Realizability {
    /// Which states are realizable at some well-formed node? Returned in
    /// realization order, without duplicates and without allocating.
    pub fn realizable_states(&self) -> &[TreeState] {
        &self.order
    }

    /// Is `q` realizable? Constant-time bitset probe.
    pub fn is_realizable(&self, q: TreeState) -> bool {
        self.realizable.get(q as usize).copied().unwrap_or(false)
    }
}

/// Incremental simulation of one transition's horizontal NFA over the
/// realized letters seen so far.
struct Sim {
    /// NFA states reached using realized letters only.
    reached: Vec<bool>,
    /// First-reach back-pointer: `(consumed letter, predecessor)`, with the
    /// letter `None` for ε-moves; `None` at the NFA start state. Never
    /// overwritten, so pred chains form a tree rooted at the start state.
    pred: Vec<Option<(Option<TreeState>, StateId)>>,
    /// The transition can contribute nothing further.
    dead: bool,
    /// Targets a final state under a root-matching guard: its acceptances
    /// decide language-level emptiness.
    root_final: bool,
}

/// One pending "NFA state reached" event.
struct Reach {
    sim: usize,
    state: StateId,
    pred: Option<(Option<TreeState>, StateId)>,
}

struct Engine<'a> {
    automaton: &'a HedgeAutomaton,
    sims: Vec<Sim>,
    firings: Vec<Option<Firing>>,
    realizable: Vec<bool>,
    order: Vec<TreeState>,
    /// Letter → NFA edges blocked on it: `(sim, from, to)`. Dense waiting
    /// lists indexed by tree state; letters outside the automaton's state
    /// range (sentinel fillers) can never realize, so their edges are
    /// dropped on arrival instead of parked forever.
    waiting_sym: Vec<Vec<(usize, StateId, StateId)>>,
    /// Wildcard edges blocked on the *first* realized letter (an `Any` edge
    /// can consume any realized letter, so only emptiness of the realized set
    /// blocks it).
    waiting_any: Vec<(usize, StateId, StateId)>,
    stack: Vec<Reach>,
    /// First accepted root firing: `(transition, child word)`.
    root_word: Option<(usize, Vec<TreeState>)>,
}

impl<'a> Engine<'a> {
    fn new(automaton: &'a HedgeAutomaton) -> Engine<'a> {
        let n = automaton.num_states();
        Engine {
            automaton,
            sims: Vec::with_capacity(automaton.transitions().len()),
            firings: vec![None; n],
            realizable: vec![false; n],
            order: Vec::new(),
            waiting_sym: vec![Vec::new(); n],
            waiting_any: Vec::new(),
            stack: Vec::new(),
            root_word: None,
        }
    }

    /// Runs the fixpoint under `budget`. With `stop_at_root`, stops as soon
    /// as a root-final transition accepts (the realizability data stays
    /// sufficient to expand every letter of the accepted word into a witness
    /// subtree). An `Err` means the budget ran out mid-fixpoint: the
    /// realizability data computed so far is sound but incomplete, so no
    /// emptiness verdict may be drawn from it.
    fn run(
        &mut self,
        alphabet: &Alphabet,
        stop_at_root: bool,
        budget: &mut Budget,
    ) -> Result<(), Resource> {
        let transitions = self.automaton.transitions();
        for (ti, t) in transitions.iter().enumerate() {
            let root_final =
                self.automaton.finals().contains(&t.target) && t.guard.matches(Alphabet::ROOT);
            let nh = t.horizontal.num_states();
            self.sims.push(Sim {
                reached: vec![false; nh],
                pred: vec![None; nh],
                dead: false,
                root_final,
            });
            if t.guard.forces_leaf(alphabet) {
                // Attribute/text nodes are leaves: ε is the only candidate
                // child word, checked once; the frontier never advances.
                if t.horizontal.accepts(&[]) {
                    self.on_accept(ti, Vec::new(), budget)?;
                }
                self.sims[ti].dead = true;
            } else {
                self.stack.push(Reach {
                    sim: ti,
                    state: t.horizontal.start(),
                    pred: None,
                });
            }
            while let Some(r) = self.stack.pop() {
                if stop_at_root && self.root_word.is_some() {
                    return Ok(());
                }
                budget.on_frontier_push()?;
                self.expand(r, budget)?;
            }
            if stop_at_root && self.root_word.is_some() {
                return Ok(());
            }
        }
        Ok(())
    }

    fn expand(&mut self, r: Reach, budget: &mut Budget) -> Result<(), Resource> {
        let automaton = self.automaton;
        let t = &automaton.transitions()[r.sim];
        let target_realized = self.realizable[t.target as usize];
        let accepted_word = {
            let sim = &mut self.sims[r.sim];
            // A sim whose target is realized contributes nothing further —
            // unless it is root-final and a root word is still wanted.
            if sim.dead || (target_realized && (!sim.root_final || self.root_word.is_some())) {
                sim.dead = true;
                return Ok(());
            }
            if sim.reached[r.state as usize] {
                return Ok(());
            }
            sim.reached[r.state as usize] = true;
            sim.pred[r.state as usize] = r.pred;
            t.horizontal
                .is_accept(r.state)
                .then(|| word_to(sim, r.state))
        };
        let first_letter = self.order.first().copied();
        for &(label, to) in t.horizontal.transitions_from(r.state) {
            match label {
                NfaLabel::Eps => self.stack.push(Reach {
                    sim: r.sim,
                    state: to,
                    pred: Some((None, r.state)),
                }),
                NfaLabel::Sym(x) => {
                    // Letters may name states the automaton does not have
                    // (e.g. sentinel fillers); those simply never realize.
                    if self.realizable.get(x as usize).copied().unwrap_or(false) {
                        self.stack.push(Reach {
                            sim: r.sim,
                            state: to,
                            pred: Some((Some(x), r.state)),
                        });
                    } else if let Some(waiting) = self.waiting_sym.get_mut(x as usize) {
                        waiting.push((r.sim, r.state, to));
                    }
                }
                NfaLabel::Any => match first_letter {
                    Some(w) => self.stack.push(Reach {
                        sim: r.sim,
                        state: to,
                        pred: Some((Some(w), r.state)),
                    }),
                    None => self.waiting_any.push((r.sim, r.state, to)),
                },
            }
        }
        if let Some(word) = accepted_word {
            self.on_accept(r.sim, word, budget)?;
        }
        Ok(())
    }

    fn on_accept(
        &mut self,
        ti: usize,
        mut word: Vec<TreeState>,
        budget: &mut Budget,
    ) -> Result<(), Resource> {
        budget.on_transition();
        let target = self.automaton.transitions()[ti].target;
        let needs_firing = !self.realizable[target as usize];
        if self.sims[ti].root_final && self.root_word.is_none() {
            // The clone is only paid when the word must double as a firing.
            let w = if needs_firing {
                word.clone()
            } else {
                std::mem::take(&mut word)
            };
            self.root_word = Some((ti, w));
        }
        if needs_firing {
            self.realize(
                target,
                Firing {
                    transition: ti,
                    child_states: word,
                },
                budget,
            )?;
        }
        Ok(())
    }

    fn realize(
        &mut self,
        q: TreeState,
        firing: Firing,
        budget: &mut Budget,
    ) -> Result<(), Resource> {
        budget.on_state()?;
        // Invariant (and regression guard): each state enters `order` at most
        // once, no matter how many transitions target it.
        assert!(
            !self.realizable[q as usize],
            "state {q} pushed to the realized list twice"
        );
        self.realizable[q as usize] = true;
        self.firings[q as usize] = Some(firing);
        if self.order.is_empty() {
            for (si, from, to) in std::mem::take(&mut self.waiting_any) {
                self.stack.push(Reach {
                    sim: si,
                    state: to,
                    pred: Some((Some(q), from)),
                });
            }
        }
        self.order.push(q);
        for (si, from, to) in std::mem::take(&mut self.waiting_sym[q as usize]) {
            self.stack.push(Reach {
                sim: si,
                state: to,
                pred: Some((Some(q), from)),
            });
        }
        Ok(())
    }

    fn finish(self) -> (Realizability, Option<(usize, Vec<TreeState>)>) {
        (
            Realizability {
                firings: self.firings,
                realizable: self.realizable,
                order: self.order,
            },
            self.root_word,
        )
    }
}

/// Reconstructs the accepted word from the first-reach pred chain ending at
/// `state`. Pred chains point strictly toward earlier-reached states, so the
/// walk terminates; every letter on it was realized before the acceptance.
fn word_to(sim: &Sim, state: StateId) -> Vec<TreeState> {
    let mut word = Vec::new();
    let mut cur = state;
    while let Some((letter, prev)) = sim.pred[cur as usize] {
        if let Some(l) = letter {
            word.push(l);
        }
        cur = prev;
    }
    word.reverse();
    word
}

/// Computes realizable states (the emptiness fixpoint of Proposition 3).
pub fn realizability(automaton: &HedgeAutomaton, alphabet: &Alphabet) -> Realizability {
    let mut budget = Budget::unlimited();
    realizability_governed(automaton, alphabet, &mut budget)
        .expect("unlimited budget cannot be exhausted")
}

/// [`realizability`] under a resource [`Budget`]. `Err` means the budget ran
/// out before the fixpoint completed; the partial data is discarded because
/// it proves nothing about unrealized states.
pub fn realizability_governed(
    automaton: &HedgeAutomaton,
    alphabet: &Alphabet,
    budget: &mut Budget,
) -> Result<Realizability, Resource> {
    let trace = budget.trace().clone();
    let _span = trace.span(SpanKind::EmptinessFixpoint, "realizability");
    let mut eng = Engine::new(automaton);
    eng.run(alphabet, false, budget)?;
    Ok(eng.finish().0)
}

/// Chooses a concrete label satisfying `guard` for witness construction,
/// always preferring an element label so the witness node may carry children.
pub fn witness_label(guard: &LabelGuard, alphabet: &Alphabet) -> Symbol {
    match guard {
        LabelGuard::Is(s) => *s,
        // An element label always keeps the witness well-formed whether or
        // not the node needs children.
        LabelGuard::Any => generic_element_label(alphabet),
        LabelGuard::AnyExcept(not) => {
            // Find an element label outside the exclusions, interning fresh
            // ones when the alphabet is exhausted.
            let candidates = alphabet.symbols_of_kind(LabelKind::Element);
            for s in candidates {
                if s != Alphabet::ROOT && !not.contains(&s) {
                    return s;
                }
            }
            for i in 0.. {
                let s = alphabet.intern(&format!("elem{i}"));
                if !not.contains(&s) {
                    return s;
                }
            }
            unreachable!("fresh labels are inexhaustible")
        }
    }
}

/// Builds a witness subtree realizing state `q`, or `None` when `q` is not
/// realizable.
pub fn witness_spec(
    automaton: &HedgeAutomaton,
    alphabet: &Alphabet,
    real: &Realizability,
    q: TreeState,
) -> Option<TreeSpec> {
    let firing = real.firings.get(q as usize)?.as_ref()?;
    let t = &automaton.transitions()[firing.transition];
    let label = witness_label(&t.guard, alphabet);
    match alphabet.kind(label) {
        LabelKind::Element => {
            let children = firing
                .child_states
                .iter()
                .map(|&c| witness_spec(automaton, alphabet, real, c))
                .collect::<Option<Vec<_>>>()?;
            Some(TreeSpec::elem(label, children))
        }
        LabelKind::Attribute => Some(TreeSpec::attr(label, "w")),
        LabelKind::Text => Some(TreeSpec::text("w")),
    }
}

/// Produces a document of the automaton's language, or `None` when it is
/// empty. The language-level check additionally requires a final state
/// reachable *at the reserved `/` root*; the fixpoint early-exits the moment
/// such a root firing accepts.
pub fn witness_document(automaton: &HedgeAutomaton, alphabet: &Alphabet) -> Option<Document> {
    let mut budget = Budget::unlimited();
    witness_document_governed(automaton, alphabet, &mut budget)
        .expect("unlimited budget cannot be exhausted")
}

/// [`witness_document`] under a resource [`Budget`]: `Ok(None)` proves the
/// language empty, `Ok(Some(doc))` exhibits a member, and `Err(resource)`
/// means the budget ran out before either could be established.
pub fn witness_document_governed(
    automaton: &HedgeAutomaton,
    alphabet: &Alphabet,
    budget: &mut Budget,
) -> Result<Option<Document>, Resource> {
    let trace = budget.trace().clone();
    let _span = trace.span(SpanKind::EmptinessFixpoint, "witness");
    let mut eng = Engine::new(automaton);
    eng.run(alphabet, true, budget)?;
    let (real, root_word) = eng.finish();
    let Some((_, word)) = root_word else {
        return Ok(None);
    };
    let mut doc = Document::new(alphabet.clone());
    for &c in &word {
        let spec = witness_spec(automaton, alphabet, &real, c)
            .expect("letters of an accepted word are realizable states");
        spec_attach(&mut doc, &spec);
    }
    debug_assert!(doc.check_well_formed().is_ok());
    Ok(Some(doc))
}

/// Appends `spec` under the document root.
fn spec_attach(doc: &mut Document, spec: &TreeSpec) -> regtree_xml::NodeId {
    regtree_xml::insert_child(doc, doc.root(), doc.children(doc.root()).len(), spec)
        .expect("witness specs are well-formed")
}

/// Is the document language of `automaton` empty?
pub fn is_empty_language(automaton: &HedgeAutomaton, alphabet: &Alphabet) -> bool {
    witness_document(automaton, alphabet).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{
        horizontal_epsilon, horizontal_interleaved, horizontal_star, HedgeTransition,
    };
    use regtree_automata::NfaBuilder;

    /// root '/' must contain one `b` whose children are `a*`.
    fn sample(alpha: &Alphabet) -> HedgeAutomaton {
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut h = NfaBuilder::new();
        let s0 = h.add_state();
        let s1 = h.add_state();
        h.add_transition(s0, NfaLabel::Sym(1), s1);
        h.set_start(s0);
        h.set_accept(s1);
        HedgeAutomaton::new(
            3,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(a),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(b),
                    horizontal: horizontal_star(0),
                    target: 1,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: h.finish(),
                    target: 2,
                },
            ],
            vec![2],
        )
    }

    #[test]
    fn witness_is_accepted() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        let doc = witness_document(&m, &alpha).expect("nonempty language");
        assert!(m.accepts(&doc));
        assert!(doc.check_well_formed().is_ok());
    }

    #[test]
    fn empty_automaton_has_no_witness() {
        let alpha = Alphabet::new();
        assert!(is_empty_language(&HedgeAutomaton::empty(), &alpha));
        assert!(!is_empty_language(&HedgeAutomaton::universal(), &alpha));
    }

    #[test]
    fn unrealizable_cycle_detected() {
        // State 0 requires a child in state 1; state 1 requires a child in
        // state 0: neither is realizable.
        let alpha = Alphabet::new();
        let x = alpha.intern("x");
        let m = HedgeAutomaton::new(
            3,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_interleaved(9999, &[1]),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_interleaved(9999, &[0]),
                    target: 1,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    // Root demands at least one state-0 child.
                    horizontal: horizontal_interleaved(0, &[0]),
                    target: 2,
                },
            ],
            vec![2],
        );
        // Note: horizontal_interleaved(9999, ..) uses a filler letter no
        // state ever takes, so the languages are effectively {1} and {0}.
        assert!(is_empty_language(&m, &alpha));
        let real = realizability(&m, &alpha);
        assert!(!real.is_realizable(0));
        assert!(!real.is_realizable(1));
        assert!(!real.is_realizable(2));
        assert!(real.realizable_states().is_empty());
    }

    #[test]
    fn leaf_guards_cannot_have_children() {
        // '@attr' nodes are leaves; requiring a child under them must be
        // unrealizable.
        let alpha = Alphabet::new();
        let at = alpha.intern("@attr");
        let x = alpha.intern("x");
        let m = HedgeAutomaton::new(
            3,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(at),
                    horizontal: horizontal_interleaved(0, &[0]), // needs ≥1 child
                    target: 1,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: horizontal_star(1),
                    target: 2,
                },
            ],
            vec![2],
        );
        let real = realizability(&m, &alpha);
        assert!(real.is_realizable(0));
        assert!(!real.is_realizable(1));
    }

    #[test]
    fn witness_respects_attribute_values() {
        let alpha = Alphabet::new();
        let at = alpha.intern("@id");
        let m = HedgeAutomaton::new(
            2,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(at),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: horizontal_interleaved(9999, &[0]),
                    target: 1,
                },
            ],
            vec![1],
        );
        // Root with a bare attribute child — unusual but well-formed.
        let doc = witness_document(&m, &alpha).unwrap();
        assert!(doc.check_well_formed().is_ok());
        let child = doc.children(doc.root())[0];
        assert_eq!(doc.value(child), Some("w"));
    }

    #[test]
    fn any_except_guard_picks_allowed_label() {
        let alpha = Alphabet::new();
        let x = alpha.intern("x");
        let m = HedgeAutomaton::new(
            2,
            vec![
                HedgeTransition {
                    guard: LabelGuard::AnyExcept(vec![x]),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: horizontal_interleaved(9999, &[0]),
                    target: 1,
                },
            ],
            vec![1],
        );
        let doc = witness_document(&m, &alpha).unwrap();
        let child = doc.children(doc.root())[0];
        assert_ne!(doc.label(child), x);
        assert!(m.accepts(&doc));
    }

    #[test]
    fn multi_transition_target_realized_once() {
        // Regression: several transitions target the same state and all can
        // fire; the state must enter the realized list exactly once (the
        // engine asserts this internally) and keep a single firing.
        let alpha = Alphabet::new();
        let x = alpha.intern("x");
        let y = alpha.intern("y");
        let z = alpha.intern("z");
        let m = HedgeAutomaton::new(
            2,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(y),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(z),
                    horizontal: horizontal_star(0),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: horizontal_interleaved(9999, &[0]),
                    target: 1,
                },
            ],
            vec![1],
        );
        let real = realizability(&m, &alpha);
        assert_eq!(real.realizable_states(), &[0, 1]);
        assert!(real.is_realizable(0));
        assert!(real.is_realizable(1));
        assert!(!real.is_realizable(7));
        let doc = witness_document(&m, &alpha).unwrap();
        assert!(m.accepts(&doc));
    }

    #[test]
    fn incremental_frontier_handles_chained_dependencies() {
        // A chain q0 <- q1 <- ... <- q9 where each q(i+1) needs a child in
        // state qi: the waiting-list index must wake each transition exactly
        // when its letter realizes.
        let alpha = Alphabet::new();
        let x = alpha.intern("x");
        let depth = 10u32;
        let mut transitions = vec![HedgeTransition {
            guard: LabelGuard::Is(x),
            horizontal: horizontal_epsilon(),
            target: 0,
        }];
        for q in 1..depth {
            transitions.push(HedgeTransition {
                guard: LabelGuard::Is(x),
                horizontal: horizontal_interleaved(9999, &[q - 1]),
                target: q,
            });
        }
        transitions.push(HedgeTransition {
            guard: LabelGuard::Is(Alphabet::ROOT),
            horizontal: horizontal_interleaved(9999, &[depth - 1]),
            target: depth,
        });
        let m = HedgeAutomaton::new(depth as usize + 1, transitions, vec![depth]);
        let real = realizability(&m, &alpha);
        for q in 0..=depth {
            assert!(real.is_realizable(q), "state {q} should be realizable");
        }
        let doc = witness_document(&m, &alpha).unwrap();
        assert!(m.accepts(&doc));
    }
}
