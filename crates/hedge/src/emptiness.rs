//! Emptiness testing with witness-document extraction.
//!
//! The independence criterion IC (paper Proposition 2/3) reduces to the
//! emptiness of the language `L` of a product hedge automaton. The classical
//! fixpoint — a state is *realizable* once some transition can fire using
//! only realizable child states — runs in polynomial time; we additionally
//! record, per state, a minimal firing so that a concrete **witness
//! document** can be rebuilt whenever the language is nonempty. Witnesses
//! make a failed independence check actionable: they exhibit a document on
//! which an update may interact with the FD.
//!
//! Well-formedness of witnesses is respected: a transition guarded by an
//! attribute/text label can only fire with an empty child word (those nodes
//! are leaves carrying a placeholder value).

use regtree_alphabet::{Alphabet, LabelKind, Symbol};
use regtree_xml::{Document, TreeSpec};

use crate::automaton::{generic_element_label, HedgeAutomaton, LabelGuard, TreeState};

/// Per-state firing recorded during the fixpoint: which transition fired and
/// with which word of (already realizable) child states.
#[derive(Clone, Debug)]
struct Firing {
    transition: usize,
    child_states: Vec<TreeState>,
}

/// Result of the realizability analysis.
pub struct Realizability {
    firings: Vec<Option<Firing>>,
}

impl Realizability {
    /// Which states are realizable at some well-formed node?
    pub fn realizable_states(&self) -> Vec<TreeState> {
        self.firings
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .map(|(i, _)| i as TreeState)
            .collect()
    }

    /// Is `q` realizable?
    pub fn is_realizable(&self, q: TreeState) -> bool {
        self.firings
            .get(q as usize)
            .map(|f| f.is_some())
            .unwrap_or(false)
    }
}

/// Computes realizable states (the emptiness fixpoint of Proposition 3).
pub fn realizability(automaton: &HedgeAutomaton, alphabet: &Alphabet) -> Realizability {
    let n = automaton.num_states();
    let mut firings: Vec<Option<Firing>> = vec![None; n];
    let mut realized: Vec<TreeState> = Vec::new();
    loop {
        let mut changed = false;
        for (ti, t) in automaton.transitions().iter().enumerate() {
            if firings[t.target as usize].is_some() {
                continue;
            }
            let leaf_only = guard_is_leaf_kind(&t.guard, alphabet);
            let word = if leaf_only {
                if t.horizontal.accepts(&[]) {
                    Some(Vec::new())
                } else {
                    None
                }
            } else {
                t.horizontal.shortest_accepted_over(&realized)
            };
            if let Some(w) = word {
                firings[t.target as usize] = Some(Firing {
                    transition: ti,
                    child_states: w,
                });
                realized.push(t.target);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Realizability { firings }
}

fn guard_is_leaf_kind(guard: &LabelGuard, alphabet: &Alphabet) -> bool {
    match guard {
        LabelGuard::Is(s) => alphabet.kind(*s) != LabelKind::Element,
        // Any/AnyExcept guards can always be satisfied by an element label
        // (fresh element labels can be interned at will).
        LabelGuard::Any | LabelGuard::AnyExcept(_) => false,
    }
}

fn pick_label(guard: &LabelGuard, alphabet: &Alphabet) -> Symbol {
    match guard {
        LabelGuard::Is(s) => *s,
        // An element label always keeps the witness well-formed whether or
        // not the node needs children.
        LabelGuard::Any => generic_element_label(alphabet),
        LabelGuard::AnyExcept(not) => {
            // Find an element label outside the exclusions, interning fresh
            // ones when the alphabet is exhausted.
            let candidates = alphabet.symbols_of_kind(LabelKind::Element);
            for s in candidates {
                if s != Alphabet::ROOT && !not.contains(&s) {
                    return s;
                }
            }
            for i in 0.. {
                let s = alphabet.intern(&format!("elem{i}"));
                if !not.contains(&s) {
                    return s;
                }
            }
            unreachable!("fresh labels are inexhaustible")
        }
    }
}

/// Builds a witness subtree realizing state `q`, or `None` when `q` is not
/// realizable.
pub fn witness_spec(
    automaton: &HedgeAutomaton,
    alphabet: &Alphabet,
    real: &Realizability,
    q: TreeState,
) -> Option<TreeSpec> {
    let firing = real.firings.get(q as usize)?.as_ref()?;
    let t = &automaton.transitions()[firing.transition];
    let label = pick_label(&t.guard, alphabet);
    match alphabet.kind(label) {
        LabelKind::Element => {
            let children = firing
                .child_states
                .iter()
                .map(|&c| witness_spec(automaton, alphabet, real, c))
                .collect::<Option<Vec<_>>>()?;
            Some(TreeSpec::elem(label, children))
        }
        LabelKind::Attribute => Some(TreeSpec::attr(label, "w")),
        LabelKind::Text => Some(TreeSpec::text("w")),
    }
}

/// Produces a document of the automaton's language, or `None` when it is
/// empty. The language-level check additionally requires a final state
/// reachable *at the reserved `/` root*.
pub fn witness_document(automaton: &HedgeAutomaton, alphabet: &Alphabet) -> Option<Document> {
    let real = realizability(automaton, alphabet);
    let realized = real.realizable_states();
    for t in automaton.transitions() {
        if !automaton.finals().contains(&t.target) || !t.guard.matches(Alphabet::ROOT) {
            continue;
        }
        let Some(word) = t.horizontal.shortest_accepted_over(&realized) else {
            continue;
        };
        let mut doc = Document::new(alphabet.clone());
        for &c in &word {
            let spec = witness_spec(automaton, alphabet, &real, c)
                .expect("letters of the shortest word are realizable states");
            spec_attach(&mut doc, &spec);
        }
        debug_assert!(doc.check_well_formed().is_ok());
        return Some(doc);
    }
    None
}

/// Appends `spec` under the document root.
fn spec_attach(doc: &mut Document, spec: &TreeSpec) -> regtree_xml::NodeId {
    regtree_xml::insert_child(doc, doc.root(), doc.children(doc.root()).len(), spec)
        .expect("witness specs are well-formed")
}

/// Is the document language of `automaton` empty?
pub fn is_empty_language(automaton: &HedgeAutomaton, alphabet: &Alphabet) -> bool {
    witness_document(automaton, alphabet).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{
        horizontal_epsilon, horizontal_interleaved, horizontal_star, HedgeTransition,
    };
    use regtree_automata::{NfaBuilder, NfaLabel};

    /// root '/' must contain one `b` whose children are `a*`.
    fn sample(alpha: &Alphabet) -> HedgeAutomaton {
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut h = NfaBuilder::new();
        let s0 = h.add_state();
        let s1 = h.add_state();
        h.add_transition(s0, NfaLabel::Sym(1), s1);
        h.set_start(s0);
        h.set_accept(s1);
        HedgeAutomaton::new(
            3,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(a),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(b),
                    horizontal: horizontal_star(0),
                    target: 1,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: h.finish(),
                    target: 2,
                },
            ],
            vec![2],
        )
    }

    #[test]
    fn witness_is_accepted() {
        let alpha = Alphabet::new();
        let m = sample(&alpha);
        let doc = witness_document(&m, &alpha).expect("nonempty language");
        assert!(m.accepts(&doc));
        assert!(doc.check_well_formed().is_ok());
    }

    #[test]
    fn empty_automaton_has_no_witness() {
        let alpha = Alphabet::new();
        assert!(is_empty_language(&HedgeAutomaton::empty(), &alpha));
        assert!(!is_empty_language(&HedgeAutomaton::universal(), &alpha));
    }

    #[test]
    fn unrealizable_cycle_detected() {
        // State 0 requires a child in state 1; state 1 requires a child in
        // state 0: neither is realizable.
        let alpha = Alphabet::new();
        let x = alpha.intern("x");
        let m = HedgeAutomaton::new(
            3,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_interleaved(9999, &[1]),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_interleaved(9999, &[0]),
                    target: 1,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    // Root demands at least one state-0 child.
                    horizontal: horizontal_interleaved(0, &[0]),
                    target: 2,
                },
            ],
            vec![2],
        );
        // Note: horizontal_interleaved(9999, ..) uses a filler letter no
        // state ever takes, so the languages are effectively {1} and {0}.
        assert!(is_empty_language(&m, &alpha));
        let real = realizability(&m, &alpha);
        assert!(!real.is_realizable(0));
        assert!(!real.is_realizable(1));
        assert!(!real.is_realizable(2));
    }

    #[test]
    fn leaf_guards_cannot_have_children() {
        // '@attr' nodes are leaves; requiring a child under them must be
        // unrealizable.
        let alpha = Alphabet::new();
        let at = alpha.intern("@attr");
        let x = alpha.intern("x");
        let m = HedgeAutomaton::new(
            3,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(at),
                    horizontal: horizontal_interleaved(0, &[0]), // needs ≥1 child
                    target: 1,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: horizontal_star(1),
                    target: 2,
                },
            ],
            vec![2],
        );
        let real = realizability(&m, &alpha);
        assert!(real.is_realizable(0));
        assert!(!real.is_realizable(1));
    }

    #[test]
    fn witness_respects_attribute_values() {
        let alpha = Alphabet::new();
        let at = alpha.intern("@id");
        let m = HedgeAutomaton::new(
            2,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(at),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: horizontal_interleaved(9999, &[0]),
                    target: 1,
                },
            ],
            vec![1],
        );
        // Root with a bare attribute child — unusual but well-formed.
        let doc = witness_document(&m, &alpha).unwrap();
        assert!(doc.check_well_formed().is_ok());
        let child = doc.children(doc.root())[0];
        assert_eq!(doc.value(child), Some("w"));
    }

    #[test]
    fn any_except_guard_picks_allowed_label() {
        let alpha = Alphabet::new();
        let x = alpha.intern("x");
        let m = HedgeAutomaton::new(
            2,
            vec![
                HedgeTransition {
                    guard: LabelGuard::AnyExcept(vec![x]),
                    horizontal: horizontal_epsilon(),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: horizontal_interleaved(9999, &[0]),
                    target: 1,
                },
            ],
            vec![1],
        );
        let doc = witness_document(&m, &alpha).unwrap();
        let child = doc.children(doc.root())[0];
        assert_ne!(doc.label(child), x);
        assert!(m.accepts(&doc));
    }
}
