//! Boolean combinations of hedge automata.
//!
//! Proposition 3 builds the IC automaton `A` as “a product automaton between
//! the automata `A_S` and `B`”. [`intersect`] implements that product for
//! arbitrary nondeterministic hedge automata; [`union`] is the disjoint sum.

use regtree_automata::{Nfa, NfaBuilder, NfaLabel};

use crate::automaton::{HedgeAutomaton, HedgeTransition, TreeState};

/// Pair-state encoding for products: `(qa, qb) -> qa * nb + qb`.
#[derive(Clone, Copy, Debug)]
pub struct PairEncoding {
    /// Number of states of the second automaton.
    pub nb: u32,
}

impl PairEncoding {
    /// Encodes a state pair.
    pub fn encode(&self, qa: TreeState, qb: TreeState) -> TreeState {
        qa * self.nb + qb
    }

    /// Decodes a product state.
    pub fn decode(&self, q: TreeState) -> (TreeState, TreeState) {
        (q / self.nb, q % self.nb)
    }
}

/// Product of two horizontal NFAs over pair-encoded letters: accepts a word
/// of encoded pairs iff the first projections are accepted by `ha` and the
/// second by `hb`.
fn horizontal_product(ha: &Nfa, hb: &Nfa, na: u32, enc: PairEncoding) -> Nfa {
    let sa_n = ha.num_states() as u32;
    let sb_n = hb.num_states() as u32;
    let mut b = NfaBuilder::new();
    for _ in 0..sa_n * sb_n {
        b.add_state();
    }
    let pid = |sa: u32, sb: u32| sa * sb_n + sb;
    for sa in 0..sa_n {
        for &(la, ta) in ha.transitions_from(sa) {
            if la == NfaLabel::Eps {
                for sb in 0..sb_n {
                    b.add_transition(pid(sa, sb), NfaLabel::Eps, pid(ta, sb));
                }
            }
        }
    }
    for sb in 0..sb_n {
        for &(lb, tb) in hb.transitions_from(sb) {
            if matches!(lb, NfaLabel::Eps) {
                for sa in 0..sa_n {
                    b.add_transition(pid(sa, sb), NfaLabel::Eps, pid(sa, tb));
                }
            }
        }
    }
    // Consuming moves: synchronize on pair letters.
    for sa in 0..sa_n {
        for &(la, ta) in ha.transitions_from(sa) {
            let qa_options: Vec<Option<u32>> = match la {
                NfaLabel::Eps => continue,
                NfaLabel::Sym(x) => vec![Some(x)],
                NfaLabel::Any => vec![None],
            };
            for sb in 0..sb_n {
                for &(lb, tb) in hb.transitions_from(sb) {
                    let qb_options: Vec<Option<u32>> = match lb {
                        NfaLabel::Eps => continue,
                        NfaLabel::Sym(y) => vec![Some(y)],
                        NfaLabel::Any => vec![None],
                    };
                    for &qa in &qa_options {
                        for &qb in &qb_options {
                            match (qa, qb) {
                                (Some(x), Some(y)) => {
                                    b.add_transition(
                                        pid(sa, sb),
                                        NfaLabel::Sym(enc.encode(x, y)),
                                        pid(ta, tb),
                                    );
                                }
                                (Some(x), None) => {
                                    for y in 0..enc.nb {
                                        b.add_transition(
                                            pid(sa, sb),
                                            NfaLabel::Sym(enc.encode(x, y)),
                                            pid(ta, tb),
                                        );
                                    }
                                }
                                (None, Some(y)) => {
                                    for x in 0..na {
                                        b.add_transition(
                                            pid(sa, sb),
                                            NfaLabel::Sym(enc.encode(x, y)),
                                            pid(ta, tb),
                                        );
                                    }
                                }
                                (None, None) => {
                                    // Any pair letter.
                                    b.add_transition(pid(sa, sb), NfaLabel::Any, pid(ta, tb));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    b.set_start(pid(ha.start(), hb.start()));
    for sa in 0..sa_n {
        if !ha.is_accept(sa) {
            continue;
        }
        for sb in 0..sb_n {
            if hb.is_accept(sb) {
                b.set_accept(pid(sa, sb));
            }
        }
    }
    b.finish()
}

/// Product automaton recognizing `L(a) ∩ L(b)`.
///
/// Also returns the [`PairEncoding`] so callers can interpret product states.
pub fn intersect_with_encoding(
    a: &HedgeAutomaton,
    b: &HedgeAutomaton,
) -> (HedgeAutomaton, PairEncoding) {
    let na = a.num_states() as u32;
    let nb = b.num_states() as u32;
    let enc = PairEncoding { nb };
    let mut transitions = Vec::new();
    for ta in a.transitions() {
        for tb in b.transitions() {
            let Some(guard) = ta.guard.intersect(&tb.guard) else {
                continue;
            };
            let horizontal = horizontal_product(&ta.horizontal, &tb.horizontal, na, enc);
            transitions.push(HedgeTransition {
                guard,
                horizontal,
                target: enc.encode(ta.target, tb.target),
            });
        }
    }
    let mut finals = Vec::new();
    for &fa in a.finals() {
        for &fb in b.finals() {
            finals.push(enc.encode(fa, fb));
        }
    }
    (
        HedgeAutomaton::new((na * nb) as usize, transitions, finals),
        enc,
    )
}

/// Product automaton recognizing `L(a) ∩ L(b)`.
pub fn intersect(a: &HedgeAutomaton, b: &HedgeAutomaton) -> HedgeAutomaton {
    intersect_with_encoding(a, b).0
}

/// Disjoint-sum automaton recognizing `L(a) ∪ L(b)`.
pub fn union(a: &HedgeAutomaton, b: &HedgeAutomaton) -> HedgeAutomaton {
    let na = a.num_states() as u32;
    let nb = b.num_states() as u32;
    // In the sum, a node may simultaneously carry states of both components;
    // wildcard horizontal letters must therefore be confined to the letters
    // of their own component before the state spaces are merged.
    let a_letters: Vec<u32> = (0..na).collect();
    let b_letters: Vec<u32> = (0..nb).collect();
    let mut transitions: Vec<HedgeTransition> = a
        .transitions()
        .iter()
        .map(|t| HedgeTransition {
            guard: t.guard.clone(),
            horizontal: t.horizontal.expand_any(&a_letters),
            target: t.target,
        })
        .collect();
    for tb in b.transitions() {
        transitions.push(HedgeTransition {
            guard: tb.guard.clone(),
            horizontal: tb.horizontal.expand_any(&b_letters).map_letters(|x| x + na),
            target: tb.target + na,
        });
    }
    let mut finals: Vec<TreeState> = a.finals().to_vec();
    finals.extend(b.finals().iter().map(|&f| f + na));
    HedgeAutomaton::new(a.num_states() + b.num_states(), transitions, finals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{horizontal_star, LabelGuard};
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    /// Accepts documents whose root children are all `x` (at least `min`).
    fn all_x(alpha: &Alphabet, min_one: bool) -> HedgeAutomaton {
        let x = alpha.intern("x");
        let mut h = NfaBuilder::new();
        let s0 = h.add_state();
        h.add_transition(s0, NfaLabel::Sym(0), s0);
        h.set_start(s0);
        if min_one {
            let s1 = h.add_state();
            h.add_transition(s0, NfaLabel::Sym(0), s1);
            h.add_transition(s1, NfaLabel::Sym(0), s1);
            h.set_accept(s1);
        } else {
            h.set_accept(s0);
        }
        HedgeAutomaton::new(
            2,
            vec![
                HedgeTransition {
                    guard: LabelGuard::Is(x),
                    horizontal: horizontal_star(9), // x nodes are leaves (9 unused)
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: h.finish(),
                    target: 1,
                },
            ],
            vec![1],
        )
    }

    /// Accepts documents with at most `max` root children (any labels).
    fn few_children(max: usize) -> HedgeAutomaton {
        let mut h = NfaBuilder::new();
        let mut states = vec![h.add_state()];
        for _ in 0..max {
            states.push(h.add_state());
        }
        for i in 0..max {
            h.add_transition(states[i], NfaLabel::Sym(0), states[i + 1]);
        }
        h.set_start(states[0]);
        for &s in &states {
            h.set_accept(s);
        }
        // Children take state 0 under any label; leaves only for simplicity:
        // allow arbitrary subtrees via Any + 0* horizontal.
        HedgeAutomaton::new(
            2,
            vec![
                HedgeTransition {
                    guard: LabelGuard::AnyExcept(vec![Alphabet::ROOT]),
                    horizontal: horizontal_star(0),
                    target: 0,
                },
                HedgeTransition {
                    guard: LabelGuard::Is(Alphabet::ROOT),
                    horizontal: h.finish(),
                    target: 1,
                },
            ],
            vec![1],
        )
    }

    #[test]
    fn intersection_semantics() {
        let alpha = Alphabet::new();
        let a = all_x(&alpha, true);
        let b = few_children(2);
        let prod = intersect(&a, &b);
        let cases = [
            ("<x/>", true),
            ("<x/><x/>", true),
            ("<x/><x/><x/>", false), // too many for b
            ("<y/>", false),         // not x for a
        ];
        for (src, expect) in cases {
            let doc = parse_document(&alpha, src).unwrap();
            assert_eq!(prod.accepts(&doc), expect, "{src}");
            assert_eq!(
                prod.accepts(&doc),
                a.accepts(&doc) && b.accepts(&doc),
                "product law on {src}"
            );
        }
    }

    #[test]
    fn empty_document_intersection() {
        let alpha = Alphabet::new();
        let a = all_x(&alpha, false);
        let b = few_children(1);
        let prod = intersect(&a, &b);
        let mut doc = regtree_xml::Document::new(alpha);
        let _ = &mut doc;
        assert!(prod.accepts(&doc));
    }

    #[test]
    fn union_semantics() {
        let alpha = Alphabet::new();
        let a = all_x(&alpha, true);
        let b = few_children(1);
        let u = union(&a, &b);
        for (src, _) in [
            ("<x/>", ()),
            ("<x/><x/>", ()),
            ("<y/>", ()),
            ("<y/><y/>", ()),
        ] {
            let doc = parse_document(&alpha, src).unwrap();
            assert_eq!(
                u.accepts(&doc),
                a.accepts(&doc) || b.accepts(&doc),
                "union law on {src}"
            );
        }
    }

    #[test]
    fn intersection_with_universal_is_identity() {
        let alpha = Alphabet::new();
        let a = all_x(&alpha, true);
        let uni = HedgeAutomaton::universal();
        let prod = intersect(&a, &uni);
        for src in ["<x/>", "<x/><y/>", "<y/>"] {
            let doc = parse_document(&alpha, src).unwrap();
            assert_eq!(prod.accepts(&doc), a.accepts(&doc), "{src}");
        }
    }

    #[test]
    fn pair_encoding_round_trip() {
        let enc = PairEncoding { nb: 7 };
        for qa in 0..5 {
            for qb in 0..7 {
                assert_eq!(enc.decode(enc.encode(qa, qb)), (qa, qb));
            }
        }
    }

    #[test]
    fn guard_intersection_table() {
        let a = Alphabet::new();
        let x = a.intern("x");
        let y = a.intern("y");
        assert_eq!(
            LabelGuard::Is(x).intersect(&LabelGuard::Is(x)),
            Some(LabelGuard::Is(x))
        );
        assert_eq!(LabelGuard::Is(x).intersect(&LabelGuard::Is(y)), None);
        assert_eq!(
            LabelGuard::Is(x).intersect(&LabelGuard::Any),
            Some(LabelGuard::Is(x))
        );
        assert_eq!(
            LabelGuard::AnyExcept(vec![x]).intersect(&LabelGuard::Is(x)),
            None
        );
        assert_eq!(
            LabelGuard::AnyExcept(vec![x]).intersect(&LabelGuard::Is(y)),
            Some(LabelGuard::Is(y))
        );
        match LabelGuard::AnyExcept(vec![x]).intersect(&LabelGuard::AnyExcept(vec![y])) {
            Some(LabelGuard::AnyExcept(n)) => {
                assert!(n.contains(&x) && n.contains(&y));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
