//! DTD-like schemas compiled to bottom-up tree automata.
//!
//! The paper assumes schemas are supplied as regular bottom-up tree automata
//! `A_S`. For ergonomics we provide a small declarative schema language —
//! one content-model rule per element label, with the content model an
//! arbitrary regular expression over child labels — compiled to a
//! [`HedgeAutomaton`] with one state per label:
//!
//! ```text
//! # The exam-session schema of the paper's running example
//! root: session
//! session: candidate*
//! candidate: @IDN exam+ level (toBePassed | firstJob-Year)
//! exam: @date discipline mark rank
//! discipline: #text
//! mark: #text
//! rank: #text
//! level: #text
//! toBePassed: discipline+
//! firstJob-Year: #text
//! ```
//!
//! Attribute labels and `#text` are implicit leaves; element labels used in
//! a content model must have their own rule.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use regtree_alphabet::{Alphabet, LabelKind, Symbol};
use regtree_automata::{parse_regex, Nfa, Regex};
use regtree_xml::Document;

use crate::automaton::{
    horizontal_epsilon, HedgeAutomaton, HedgeTransition, LabelGuard, TreeState,
};

/// A declarative schema: content-model rules per element label.
#[derive(Debug)]
pub struct Schema {
    alphabet: Alphabet,
    /// Content model of the document root (over top-level element labels).
    root: Regex,
    /// `(element label, content model over child labels)`.
    rules: Vec<(Symbol, Regex)>,
    /// Cache for [`Schema::compiled`], keyed by the alphabet length the
    /// automaton was compiled against (the implicit leaf transitions cover
    /// every interned attribute/text label, so alphabet growth invalidates).
    compiled: Mutex<Option<(usize, Arc<HedgeAutomaton>)>>,
}

impl Clone for Schema {
    fn clone(&self) -> Schema {
        Schema {
            alphabet: self.alphabet.clone(),
            root: self.root.clone(),
            rules: self.rules.clone(),
            compiled: Mutex::new(self.lock_compiled().clone()),
        }
    }
}

/// Error raised when loading or compiling a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Description.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema error: {}", self.message)
    }
}

impl std::error::Error for SchemaError {}

fn err(message: impl Into<String>) -> SchemaError {
    SchemaError {
        message: message.into(),
    }
}

impl Schema {
    /// Creates an empty schema accepting a root with content model `root`.
    pub fn new(alphabet: Alphabet, root: Regex) -> Schema {
        Schema {
            alphabet,
            root,
            rules: Vec::new(),
            compiled: Mutex::new(None),
        }
    }

    /// Adds (or replaces) the content model of an element label.
    pub fn set_rule(&mut self, label: Symbol, content: Regex) -> &mut Self {
        debug_assert_eq!(self.alphabet.kind(label), LabelKind::Element);
        if let Some(r) = self.rules.iter_mut().find(|(l, _)| *l == label) {
            r.1 = content;
        } else {
            self.rules.push((label, content));
        }
        *self.compiled.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        self
    }

    fn lock_compiled(&self) -> MutexGuard<'_, Option<(usize, Arc<HedgeAutomaton>)>> {
        self.compiled.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The schema's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The root content model.
    pub fn root_model(&self) -> &Regex {
        &self.root
    }

    /// The element rules.
    pub fn rules(&self) -> &[(Symbol, Regex)] {
        &self.rules
    }

    /// Parses the `label: content-model` text format (see module docs).
    pub fn parse(alphabet: &Alphabet, text: &str) -> Result<Schema, SchemaError> {
        let mut root: Option<Regex> = None;
        let mut rules: Vec<(Symbol, Regex)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((head, body)) = line.split_once(':') else {
                return Err(err(format!("line {}: expected 'label: model'", lineno + 1)));
            };
            let head = head.trim();
            let body = body.trim();
            let model = if body.is_empty() || body == "EMPTY" {
                Regex::Epsilon
            } else {
                parse_regex(alphabet, body)
                    .map_err(|e| err(format!("line {}: {}", lineno + 1, e)))?
            };
            if head == "root" {
                if root.is_some() {
                    return Err(err(format!("line {}: duplicate root rule", lineno + 1)));
                }
                root = Some(model);
            } else {
                let label = alphabet.intern(head);
                if alphabet.kind(label) != LabelKind::Element {
                    return Err(err(format!(
                        "line {}: rules only apply to element labels, got '{head}'",
                        lineno + 1
                    )));
                }
                if rules.iter().any(|(l, _)| *l == label) {
                    return Err(err(format!(
                        "line {}: duplicate rule for '{head}'",
                        lineno + 1
                    )));
                }
                rules.push((label, model));
            }
        }
        let root = root.ok_or_else(|| err("missing 'root:' rule"))?;
        Ok(Schema {
            alphabet: alphabet.clone(),
            root,
            rules,
            compiled: Mutex::new(None),
        })
    }

    /// Compiles to a bottom-up tree automaton `A_S`.
    ///
    /// States: one per alphabet symbol (`state = symbol index`) plus a final
    /// accept state for the `/` root. Content models become horizontal
    /// languages directly (a child in state *q* is exactly a child labeled
    /// with symbol *q*). Undeclared element labels simply have no transition:
    /// documents using them are rejected.
    pub fn compile(&self) -> HedgeAutomaton {
        let n_sym = self.alphabet.len();
        let accept: TreeState = n_sym as TreeState;
        let mut transitions = Vec::new();
        // Implicit leaf transitions for every attribute label and #text.
        let symbols = self.alphabet.symbols();
        let kinds = self.alphabet.kind_reader();
        for s in symbols {
            match kinds.kind(s) {
                LabelKind::Attribute | LabelKind::Text => {
                    transitions.push(HedgeTransition {
                        guard: LabelGuard::Is(s),
                        horizontal: horizontal_epsilon(),
                        target: s.0,
                    });
                }
                LabelKind::Element => {}
            }
        }
        drop(kinds);
        for (label, model) in &self.rules {
            transitions.push(HedgeTransition {
                guard: LabelGuard::Is(*label),
                horizontal: Nfa::from_regex(model),
                target: label.0,
            });
        }
        transitions.push(HedgeTransition {
            guard: LabelGuard::Is(Alphabet::ROOT),
            horizontal: Nfa::from_regex(&self.root),
            target: accept,
        });
        HedgeAutomaton::new(n_sym + 1, transitions, vec![accept])
    }

    /// The compiled automaton, built on first use and shared from then on:
    /// repeated analyses or validations against one schema reuse a single
    /// automaton instead of recompiling per call. The cache is invalidated
    /// by [`Schema::set_rule`] and by alphabet growth (newly interned
    /// attribute/text labels gain implicit leaf transitions on recompile).
    pub fn compiled(&self) -> Arc<HedgeAutomaton> {
        let len = self.alphabet.len();
        let mut slot = self.lock_compiled();
        match &*slot {
            Some((n, c)) if *n == len => c.clone(),
            _ => {
                let c = Arc::new(self.compile());
                *slot = Some((len, c.clone()));
                c
            }
        }
    }

    /// Convenience: validate a document against the compiled schema.
    pub fn validate(&self, doc: &Document) -> Result<(), crate::automaton::ValidationError> {
        self.compiled().validate(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_xml::parse_document;

    const EXAM_SCHEMA: &str = "\
# exam sessions\n\
root: session\n\
session: candidate*\n\
candidate: @IDN exam+ level (toBePassed | firstJob-Year)\n\
exam: @date discipline mark rank\n\
discipline: #text\n\
mark: #text\n\
rank: #text\n\
level: #text\n\
toBePassed: discipline+\n\
firstJob-Year: #text\n";

    fn candidate(idn: &str, extra: &str) -> String {
        format!(
            "<candidate IDN=\"{idn}\"><exam date=\"d1\"><discipline>math</discipline><mark>15</mark><rank>2</rank></exam><level>B</level>{extra}</candidate>"
        )
    }

    #[test]
    fn parses_and_validates() {
        let a = Alphabet::new();
        let schema = Schema::parse(&a, EXAM_SCHEMA).unwrap();
        let doc_src = format!(
            "<session>{}{}</session>",
            candidate("78", "<firstJob-Year>2010</firstJob-Year>"),
            candidate(
                "99",
                "<toBePassed><discipline>bio</discipline></toBePassed>"
            )
        );
        let doc = parse_document(&a, &doc_src).unwrap();
        schema.validate(&doc).unwrap();
    }

    #[test]
    fn rejects_missing_required_child() {
        let a = Alphabet::new();
        let schema = Schema::parse(&a, EXAM_SCHEMA).unwrap();
        // Candidate without level.
        let doc = parse_document(
            &a,
            "<session><candidate IDN=\"78\"><exam date=\"d\"><discipline>m</discipline><mark>1</mark><rank>1</rank></exam><firstJob-Year>2010</firstJob-Year></candidate></session>",
        )
        .unwrap();
        assert!(schema.validate(&doc).is_err());
    }

    #[test]
    fn rejects_undeclared_elements() {
        let a = Alphabet::new();
        let schema = Schema::parse(&a, EXAM_SCHEMA).unwrap();
        let doc = parse_document(&a, "<session><intruder/></session>").unwrap();
        assert!(schema.validate(&doc).is_err());
    }

    #[test]
    fn rejects_wrong_root() {
        let a = Alphabet::new();
        let schema = Schema::parse(&a, EXAM_SCHEMA).unwrap();
        let doc = parse_document(&a, &candidate("7", "<firstJob-Year>x</firstJob-Year>")).unwrap();
        assert!(schema.validate(&doc).is_err());
    }

    #[test]
    fn empty_content_model() {
        let a = Alphabet::new();
        let schema = Schema::parse(&a, "root: hollow\nhollow: EMPTY\n").unwrap();
        let ok = parse_document(&a, "<hollow/>").unwrap();
        schema.validate(&ok).unwrap();
        let bad = parse_document(&a, "<hollow><x/></hollow>").unwrap();
        assert!(schema.validate(&bad).is_err());
    }

    #[test]
    fn bounded_repetition_in_content_models() {
        let a = Alphabet::new();
        // A session must carry between 2 and 3 candidates, each with
        // exactly two exams — counting constraints straight in the schema.
        let schema = Schema::parse(
            &a,
            "root: session\nsession: candidate{2,3}\ncandidate: exam{2}\nexam: EMPTY\n",
        )
        .unwrap();
        let cand = "<candidate><exam/><exam/></candidate>";
        for (n, ok) in [(1, false), (2, true), (3, true), (4, false)] {
            let doc =
                parse_document(&a, &format!("<session>{}</session>", cand.repeat(n))).unwrap();
            assert_eq!(schema.validate(&doc).is_ok(), ok, "{n} candidates");
        }
        let bad = parse_document(&a, "<session><candidate><exam/></candidate><candidate><exam/><exam/></candidate></session>").unwrap();
        assert!(schema.validate(&bad).is_err());
    }

    #[test]
    fn parse_errors() {
        let a = Alphabet::new();
        assert!(Schema::parse(&a, "session: x\n").is_err()); // no root
        assert!(Schema::parse(&a, "root: x\nroot: y\n").is_err());
        assert!(Schema::parse(&a, "root: x\nx: (((\n").is_err());
        assert!(Schema::parse(&a, "root: x\n@attr: y\n").is_err());
        assert!(Schema::parse(&a, "root: x\nx: a\nx: b\n").is_err());
        assert!(Schema::parse(&a, "just a line\n").is_err());
    }

    #[test]
    fn programmatic_construction() {
        let a = Alphabet::new();
        let item = a.intern("item");
        let mut schema = Schema::new(a.clone(), Regex::Atom(item).star());
        schema.set_rule(item, Regex::Epsilon);
        let doc = parse_document(&a, "<item/><item/><item/>").unwrap();
        schema.validate(&doc).unwrap();
        // Replace the rule: items must now contain one text node.
        schema.set_rule(item, Regex::Atom(Alphabet::TEXT));
        assert!(schema.validate(&doc).is_err());
        let doc2 = parse_document(&a, "<item>hi</item>").unwrap();
        schema.validate(&doc2).unwrap();
    }

    #[test]
    fn compiled_size_reflects_rules() {
        let a = Alphabet::new();
        let schema = Schema::parse(&a, EXAM_SCHEMA).unwrap();
        let m = schema.compile();
        assert_eq!(m.num_states(), a.len() + 1);
        assert!(m.size() > m.num_states());
    }

    #[test]
    fn wildcard_content_model() {
        let a = Alphabet::new();
        let schema = Schema::parse(&a, "root: any\nany: _*\nleaf: EMPTY\n").unwrap();
        // `_*` admits any declared child labels.
        let ok = parse_document(&a, "<any><leaf/><leaf/></any>").unwrap();
        schema.validate(&ok).unwrap();
        // ... but children must themselves be declared.
        let bad = parse_document(&a, "<any><ghost/></any>").unwrap();
        assert!(schema.validate(&bad).is_err());
    }
}
