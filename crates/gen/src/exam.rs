//! The paper's running example: the exam-session document of Figure 1, the
//! patterns of Figures 2–3, the FDs of Figures 4–5, the update class of
//! Figure 6, and a scalable generator of FD-satisfying exam sessions.
//!
//! Conventions (fixed across the whole workspace): a `candidate` element's
//! children are `@IDN`, `exam*`, `level`, then `toBePassed` or
//! `firstJob-Year`; an `exam`'s children are `@date`, `discipline`, `mark`,
//! `rank`.

use rand::Rng;

use regtree_alphabet::Alphabet;
use regtree_core::{EqualityType, Fd, FdBuilder, Update, UpdateClass, UpdateOp};
use regtree_hedge::Schema;
use regtree_pattern::{RegularTreePattern, Template};
use regtree_xml::{Document, TreeSpec};

/// Interns every Figure 1 label.
pub fn exam_alphabet() -> Alphabet {
    Alphabet::with_labels([
        "session",
        "candidate",
        "@IDN",
        "exam",
        "@date",
        "discipline",
        "mark",
        "rank",
        "level",
        "toBePassed",
        "firstJob-Year",
    ])
}

/// The schema `Sc` of the running example (Example 6 requires each
/// candidate to have `toBePassed` XOR `firstJob-Year`).
pub const EXAM_SCHEMA: &str = "\
root: session
session: candidate*
candidate: @IDN exam+ level (toBePassed | firstJob-Year)
exam: @date discipline mark rank
discipline: #text
mark: #text
rank: #text
level: #text
toBePassed: discipline+
firstJob-Year: #text
";

/// Parses [`EXAM_SCHEMA`] over `alphabet`.
pub fn exam_schema(alphabet: &Alphabet) -> Schema {
    Schema::parse(alphabet, EXAM_SCHEMA).expect("the exam schema parses")
}

fn exam_spec(a: &Alphabet, date: &str, disc: &str, mark: &str, rank: &str) -> TreeSpec {
    TreeSpec::elem_named(
        a,
        "exam",
        vec![
            TreeSpec::attr_named(a, "@date", date),
            TreeSpec::elem_named(a, "discipline", vec![TreeSpec::text(disc)]),
            TreeSpec::elem_named(a, "mark", vec![TreeSpec::text(mark)]),
            TreeSpec::elem_named(a, "rank", vec![TreeSpec::text(rank)]),
        ],
    )
}

#[allow(clippy::too_many_arguments)]
fn candidate_spec(
    a: &Alphabet,
    idn: &str,
    exams: Vec<TreeSpec>,
    level: &str,
    to_be_passed: Option<&[&str]>,
    first_job_year: Option<&str>,
) -> TreeSpec {
    let mut children = vec![TreeSpec::attr_named(a, "@IDN", idn)];
    children.extend(exams);
    children.push(TreeSpec::elem_named(
        a,
        "level",
        vec![TreeSpec::text(level)],
    ));
    if let Some(disciplines) = to_be_passed {
        children.push(TreeSpec::elem_named(
            a,
            "toBePassed",
            disciplines
                .iter()
                .map(|d| TreeSpec::elem_named(a, "discipline", vec![TreeSpec::text(d)]))
                .collect(),
        ));
    }
    if let Some(year) = first_job_year {
        children.push(TreeSpec::elem_named(
            a,
            "firstJob-Year",
            vec![TreeSpec::text(year)],
        ));
    }
    TreeSpec::elem_named(a, "candidate", children)
}

/// The Figure 1 document: one session, two candidates with two exams each;
/// candidate 78 still has a discipline to pass, candidate 99 is graduated.
pub fn figure1_document(a: &Alphabet) -> Document {
    let session = TreeSpec::elem_named(
        a,
        "session",
        vec![
            candidate_spec(
                a,
                "78",
                vec![
                    exam_spec(a, "2009-06-02", "math", "15", "2"),
                    exam_spec(a, "2009-06-03", "physics", "8", "5"),
                ],
                "B",
                Some(&["physics"]),
                None,
            ),
            candidate_spec(
                a,
                "99",
                vec![
                    exam_spec(a, "2009-06-02", "math", "15", "2"),
                    exam_spec(a, "2009-06-04", "biology", "12", "1"),
                ],
                "A",
                None,
                Some("2010"),
            ),
        ],
    );
    regtree_xml::document_from_specs(a.clone(), &[session])
}

/// `R1` of Figure 2: pairs of exams taken by two **different** candidates.
pub fn pattern_r1(a: &Alphabet) -> RegularTreePattern {
    let mut t = Template::new(a.clone());
    let session = t.add_child_str(t.root(), "session").expect("proper");
    let e1 = t.add_child_str(session, "candidate/exam").expect("proper");
    let e2 = t.add_child_str(session, "candidate/exam").expect("proper");
    RegularTreePattern::new(t, vec![e1, e2]).expect("valid")
}

/// `R2` of Figure 2: pairs of exams taken by the **same** candidate.
pub fn pattern_r2(a: &Alphabet) -> RegularTreePattern {
    let mut t = Template::new(a.clone());
    let cand = t
        .add_child_str(t.root(), "session/candidate")
        .expect("proper");
    let e1 = t.add_child_str(cand, "exam").expect("proper");
    let e2 = t.add_child_str(cand, "exam").expect("proper");
    RegularTreePattern::new(t, vec![e1, e2]).expect("valid")
}

/// `R3` of Figure 3: level nodes of candidates with at least one exam
/// (exam branch *before* the level branch, matching document order).
pub fn pattern_r3(a: &Alphabet) -> RegularTreePattern {
    let mut t = Template::new(a.clone());
    let cand = t
        .add_child_str(t.root(), "session/candidate")
        .expect("proper");
    let _exam = t.add_child_str(cand, "exam").expect("proper");
    let level = t.add_child_str(cand, "level").expect("proper");
    RegularTreePattern::monadic(t, level).expect("valid")
}

/// `R4` of Figure 3: the same query with the sibling order flipped — empty
/// on Figure 1 because mappings must respect template order.
pub fn pattern_r4(a: &Alphabet) -> RegularTreePattern {
    let mut t = Template::new(a.clone());
    let cand = t
        .add_child_str(t.root(), "session/candidate")
        .expect("proper");
    let level = t.add_child_str(cand, "level").expect("proper");
    let _exam = t.add_child_str(cand, "exam").expect("proper");
    RegularTreePattern::monadic(t, level).expect("valid")
}

/// `fd1` (Figure 4): same discipline + same mark ⇒ same rank, per session.
pub fn fd1(a: &Alphabet) -> Fd {
    FdBuilder::new(a.clone())
        .context("session")
        .condition("candidate/exam/discipline")
        .condition("candidate/exam/mark")
        .target("candidate/exam/rank")
        .build()
        .expect("fd1 builds")
}

/// `fd2` (Figure 4): a candidate cannot take two different exams of the
/// same discipline at the same date (target `exam`, node equality).
pub fn fd2(a: &Alphabet) -> Fd {
    FdBuilder::new(a.clone())
        .context("session/candidate")
        .condition("exam/@date")
        .condition("exam/discipline")
        .target_with("exam", EqualityType::Node)
        .build()
        .expect("fd2 builds")
}

/// `fd3` (Figure 5): two candidates with the same marks in (at least) two
/// disciplines receive the same level. Inexpressible in \[8\]: the two
/// sibling `exam/mark` edges share the prefix `exam`.
pub fn fd3(a: &Alphabet) -> Fd {
    let mut t = Template::new(a.clone());
    let c = t.add_child_str(t.root(), "session").expect("proper");
    let cand = t.add_child_str(c, "candidate").expect("proper");
    let m1 = t.add_child_str(cand, "exam/mark").expect("proper");
    let m2 = t.add_child_str(cand, "exam/mark").expect("proper");
    let level = t.add_child_str(cand, "level").expect("proper");
    let pattern = RegularTreePattern::new(t, vec![m1, m2, level]).expect("valid");
    Fd::with_default_equality(pattern, c).expect("fd3 builds")
}

/// `fd4` (Figure 5): like `fd3` but restricted to candidates that still
/// have disciplines to pass. Inexpressible in \[8\]: the `toBePassed` leaf is
/// neither condition nor target.
pub fn fd4(a: &Alphabet) -> Fd {
    let mut t = Template::new(a.clone());
    let c = t.add_child_str(t.root(), "session").expect("proper");
    let cand = t.add_child_str(c, "candidate").expect("proper");
    let m1 = t.add_child_str(cand, "exam/mark").expect("proper");
    let m2 = t.add_child_str(cand, "exam/mark").expect("proper");
    let level = t.add_child_str(cand, "level").expect("proper");
    let _tbp = t.add_child_str(cand, "toBePassed").expect("proper");
    let pattern = RegularTreePattern::new(t, vec![m1, m2, level]).expect("valid");
    Fd::with_default_equality(pattern, c).expect("fd4 builds")
}

/// `fd5` (Figure 6): like `fd3` but restricted to *graduated* candidates
/// (those with a `firstJob-Year` child) — the FD of Example 6.
pub fn fd5(a: &Alphabet) -> Fd {
    let mut t = Template::new(a.clone());
    let c = t.add_child_str(t.root(), "session").expect("proper");
    let cand = t.add_child_str(c, "candidate").expect("proper");
    let m1 = t.add_child_str(cand, "exam/mark").expect("proper");
    let m2 = t.add_child_str(cand, "exam/mark").expect("proper");
    let level = t.add_child_str(cand, "level").expect("proper");
    let _fjy = t.add_child_str(cand, "firstJob-Year").expect("proper");
    let pattern = RegularTreePattern::new(t, vec![m1, m2, level]).expect("valid");
    Fd::with_default_equality(pattern, c).expect("fd5 builds")
}

/// The update class `U` of Figure 6/Example 4: the `level` nodes of
/// candidates that still have remaining exams to pass.
pub fn update_class_u(a: &Alphabet) -> UpdateClass {
    let mut t = Template::new(a.clone());
    let cand = t
        .add_child_str(t.root(), "session/candidate")
        .expect("proper");
    let level = t.add_child_str(cand, "level").expect("proper");
    let _tbp = t.add_child_str(cand, "toBePassed").expect("proper");
    UpdateClass::new(RegularTreePattern::monadic(t, level).expect("valid"))
        .expect("level is a leaf of T_U")
}

/// `q1` of Example 4: decrease the level to the level just below.
pub fn update_q1(a: &Alphabet) -> Update {
    Update::new(
        update_class_u(a),
        UpdateOp::MapText(std::sync::Arc::new(|old: &str| match old {
            "A" => "B".to_string(),
            "B" => "C".to_string(),
            "C" => "D".to_string(),
            _ => "E".to_string(),
        })),
    )
}

/// `q2` of Example 4: add a `comment` child to the level node.
pub fn update_q2(a: &Alphabet) -> Update {
    Update::new(
        update_class_u(a),
        UpdateOp::AppendChild(TreeSpec::elem_named(a, "comment", vec![])),
    )
}

/// Deterministic rank from `(discipline, mark)` so generated sessions
/// satisfy `fd1` by construction.
fn rank_of(discipline: &str, mark: u32) -> u32 {
    let h = discipline
        .bytes()
        .fold(7u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u32));
    (h ^ mark).wrapping_mul(2654435761) % 50 + 1
}

/// Deterministic level from the mark vector so generated sessions satisfy
/// `fd3`/`fd4`/`fd5` by construction.
fn level_of(marks: &[u32]) -> &'static str {
    let avg = marks.iter().sum::<u32>() / marks.len().max(1) as u32;
    match avg {
        16..=20 => "A",
        13..=15 => "B",
        10..=12 => "C",
        7..=9 => "D",
        _ => "E",
    }
}

const DISCIPLINES: &[&str] = &[
    "math",
    "physics",
    "biology",
    "history",
    "chemistry",
    "latin",
    "music",
    "geography",
];

/// Generates a schema-valid exam session with `n_candidates` candidates and
/// `exams_per_candidate` exams each, satisfying `fd1`–`fd5` by construction.
/// Size is roughly `n_candidates × (7 × exams_per_candidate + 5)` nodes.
pub fn generate_session<R: Rng>(
    a: &Alphabet,
    n_candidates: usize,
    exams_per_candidate: usize,
    rng: &mut R,
) -> Document {
    let exams_per_candidate = exams_per_candidate.clamp(1, DISCIPLINES.len());
    let mut candidates = Vec::with_capacity(n_candidates);
    for i in 0..n_candidates {
        let mut exams = Vec::with_capacity(exams_per_candidate);
        let mut marks = Vec::with_capacity(exams_per_candidate);
        let mut failed: Vec<&str> = Vec::new();
        // fd3 relates the level to *any* pair of marks, so a candidate's
        // marks must determine the level regardless of which pair a trace
        // picks: give each candidate one "ability" mark for all exams.
        let ability = rng.gen_range(0..=20u32);
        for (j, &disc) in DISCIPLINES.iter().take(exams_per_candidate).enumerate() {
            let mark = ability;
            marks.push(mark);
            if mark < 10 {
                failed.push(disc);
            }
            exams.push(exam_spec(
                a,
                &format!("2009-06-{:02}", (j % 28) + 1),
                disc,
                &mark.to_string(),
                &rank_of(disc, mark).to_string(),
            ));
        }
        // fd3/fd5 require the level to be a function of the mark vector.
        let level = level_of(&marks);
        let spec = if failed.is_empty() {
            candidate_spec(
                a,
                &format!("{}", 1000 + i),
                exams,
                level,
                None,
                Some("2010"),
            )
        } else {
            candidate_spec(
                a,
                &format!("{}", 1000 + i),
                exams,
                level,
                Some(&failed),
                None,
            )
        };
        candidates.push(spec);
    }
    let session = TreeSpec::elem_named(a, "session", candidates);
    regtree_xml::document_from_specs(a.clone(), &[session])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use regtree_core::satisfies;

    #[test]
    fn figure1_is_schema_valid() {
        let a = exam_alphabet();
        let doc = figure1_document(&a);
        exam_schema(&a).validate(&doc).unwrap();
        assert!(doc.check_well_formed().is_ok());
    }

    #[test]
    fn textual_fds_match_the_hand_built_fixtures() {
        // The \[8\]-expressible paper FDs written in the textual language
        // produce structurally identical patterns — hence identical
        // verdicts on every document. (fd3–fd5 need two structurally equal
        // sibling branches or unselected structural leaves, which the
        // path-style `ctx : conds -> target` line cannot name; they stay
        // hand-built.)
        let a = exam_alphabet();
        let pairs = [
            (
                fd1(&a),
                "/session : candidate/exam/discipline, candidate/exam/mark \
                 -> candidate/exam/rank",
            ),
            (
                fd2(&a),
                "/session/candidate : exam/@date, exam/discipline -> exam[N]",
            ),
        ];
        let doc = figure1_document(&a);
        let mut rng = SmallRng::seed_from_u64(11);
        let generated = generate_session(&a, 6, 3, &mut rng);
        for (built, text) in pairs {
            let parsed = regtree_core::parse_fd(&a, text).expect(text);
            assert_eq!(
                parsed.template().sketch(),
                built.template().sketch(),
                "template drift for {text}"
            );
            assert_eq!(parsed.pattern().selected(), built.pattern().selected());
            assert_eq!(parsed.context(), built.context());
            assert_eq!(parsed.target_equality(), built.target_equality());
            assert_eq!(satisfies(&parsed, &doc), satisfies(&built, &doc));
            assert_eq!(
                satisfies(&parsed, &generated),
                satisfies(&built, &generated)
            );
        }
    }

    #[test]
    fn figure1_satisfies_the_fds() {
        let a = exam_alphabet();
        let doc = figure1_document(&a);
        for (name, fd) in [
            ("fd1", fd1(&a)),
            ("fd2", fd2(&a)),
            ("fd3", fd3(&a)),
            ("fd4", fd4(&a)),
            ("fd5", fd5(&a)),
        ] {
            assert!(satisfies(&fd, &doc), "{name} must hold on Figure 1");
        }
    }

    #[test]
    fn generated_sessions_are_valid_and_satisfying() {
        let a = exam_alphabet();
        let mut rng = SmallRng::seed_from_u64(11);
        let doc = generate_session(&a, 20, 4, &mut rng);
        exam_schema(&a).validate(&doc).unwrap();
        for (name, fd) in [
            ("fd1", fd1(&a)),
            ("fd2", fd2(&a)),
            ("fd3", fd3(&a)),
            ("fd4", fd4(&a)),
            ("fd5", fd5(&a)),
        ] {
            assert!(satisfies(&fd, &doc), "{name} must hold on generated docs");
        }
    }

    #[test]
    fn generated_size_scales() {
        let a = exam_alphabet();
        let mut rng = SmallRng::seed_from_u64(5);
        let d1 = generate_session(&a, 10, 2, &mut rng);
        let d2 = generate_session(&a, 100, 2, &mut rng);
        assert!(d2.len() > 8 * d1.len());
    }

    #[test]
    fn class_u_on_figure1_selects_candidate78_level() {
        let a = exam_alphabet();
        let doc = figure1_document(&a);
        let nodes = update_class_u(&a).selected_nodes(&doc);
        assert_eq!(nodes.len(), 1, "only candidate 78 has toBePassed");
        assert_eq!(doc.label_name(nodes[0]).as_ref(), "level");
    }
}
