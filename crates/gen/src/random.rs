//! Randomized instance generators for fuzzing and soundness testing.
//!
//! * [`random_document`] — schema-conforming random documents, used by the
//!   IC soundness property tests (E8 of DESIGN.md): every document drawn
//!   here is `valid(S)` by construction;
//! * [`random_regex`] / [`random_pattern`] / [`random_update_class`] —
//!   random pattern-space instances for the Proposition 3 scaling benches;
//! * [`random_spec`] — random replacement subtrees for update payloads.

use rand::Rng;

use regtree_alphabet::{Alphabet, LabelKind, Symbol};
use regtree_automata::{LangSampler, Nfa, Regex};
use regtree_core::UpdateClass;
use regtree_hedge::Schema;
use regtree_pattern::lang::{Axis, EqTag, FdExpr, NameTest, Pattern, Predicate, RelPath, Step};
use regtree_pattern::{RegularTreePattern, Template};
use regtree_xml::{Document, TreeSpec};

/// Generates a random document conforming to `schema`.
///
/// Each element's child word is sampled from its content model; `breadth`
/// controls the target word length at the top levels, decaying with depth so
/// generation terminates.
pub fn random_document<R: Rng>(schema: &Schema, breadth: usize, rng: &mut R) -> Document {
    let alphabet = schema.alphabet().clone();
    let root_sampler = LangSampler::new(&Nfa::from_regex(schema.root_model()), &[]);
    let samplers: Vec<(Symbol, LangSampler)> = schema
        .rules()
        .iter()
        .map(|(label, model)| (*label, LangSampler::new(&Nfa::from_regex(model), &[])))
        .collect();

    let mut doc = Document::new(alphabet.clone());
    let word = root_sampler
        .sample(rng, breadth)
        .expect("root model nonempty");
    for letter in word {
        let spec = grow(&alphabet, &samplers, Symbol(letter), breadth, rng, 0);
        let root = doc.root();
        let len = doc.children(root).len();
        regtree_xml::insert_child(&mut doc, root, len, &spec)
            .expect("generated specs are well-formed");
    }
    doc
}

fn grow<R: Rng>(
    alphabet: &Alphabet,
    samplers: &[(Symbol, LangSampler)],
    label: Symbol,
    breadth: usize,
    rng: &mut R,
    depth: usize,
) -> TreeSpec {
    match alphabet.kind(label) {
        LabelKind::Attribute => TreeSpec::attr(label, &random_value(rng)),
        LabelKind::Text => TreeSpec::text(&random_value(rng)),
        LabelKind::Element => {
            let target = if depth > 6 { 0 } else { breadth / (depth + 1) };
            let word: Vec<u32> = samplers
                .iter()
                .find(|(l, _)| *l == label)
                .and_then(|(_, s)| s.sample(rng, target))
                .unwrap_or_default();
            let children = word
                .into_iter()
                .map(|l| grow(alphabet, samplers, Symbol(l), breadth, rng, depth + 1))
                .collect();
            TreeSpec::elem(label, children)
        }
    }
}

fn random_value<R: Rng>(rng: &mut R) -> String {
    let len = rng.gen_range(1..=3);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0..6u8)))
        .collect()
}

/// A random regex of roughly `size` AST nodes over `labels`.
pub fn random_regex<R: Rng>(labels: &[Symbol], size: usize, rng: &mut R) -> Regex {
    if size <= 1 || labels.is_empty() {
        return Regex::Atom(labels[rng.gen_range(0..labels.len())]);
    }
    match rng.gen_range(0..6) {
        0 => {
            let left = size / 2;
            Regex::seq([
                random_regex(labels, left.max(1), rng),
                random_regex(labels, (size - left).max(1), rng),
            ])
        }
        1 => {
            let left = size / 2;
            Regex::alt([
                random_regex(labels, left.max(1), rng),
                random_regex(labels, (size - left).max(1), rng),
            ])
        }
        2 => random_regex(labels, size - 1, rng).star(),
        3 => random_regex(labels, size - 1, rng).plus(),
        4 => random_regex(labels, size - 1, rng).opt(),
        _ => Regex::Atom(labels[rng.gen_range(0..labels.len())]),
    }
}

/// Like [`random_regex`] but guaranteed proper (usable as an edge).
pub fn random_proper_regex<R: Rng>(labels: &[Symbol], size: usize, rng: &mut R) -> Regex {
    let r = random_regex(labels, size, rng);
    if r.is_proper() {
        r
    } else {
        // Append a mandatory atom: `r · a` is proper whenever a is.
        Regex::seq([r, Regex::Atom(labels[rng.gen_range(0..labels.len())])])
    }
}

/// A random monadic pattern with `n_edges` edges over `labels`.
pub fn random_pattern<R: Rng>(
    alphabet: &Alphabet,
    labels: &[Symbol],
    n_edges: usize,
    rng: &mut R,
) -> RegularTreePattern {
    let mut t = Template::new(alphabet.clone());
    let mut nodes = vec![t.root()];
    for _ in 0..n_edges.max(1) {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let regex = random_proper_regex(labels, rng.gen_range(1..5), rng);
        let n = t.add_child(parent, regex).expect("proper by construction");
        nodes.push(n);
    }
    let selected = nodes[rng.gen_range(1..nodes.len())];
    RegularTreePattern::monadic(t, selected).expect("valid")
}

/// A random update class whose selected node is a leaf (retrying the
/// selection until the paper's restriction holds).
pub fn random_update_class<R: Rng>(
    alphabet: &Alphabet,
    labels: &[Symbol],
    n_edges: usize,
    rng: &mut R,
) -> UpdateClass {
    loop {
        let p = random_pattern(alphabet, labels, n_edges, rng);
        let sel = p.selected()[0];
        if p.template().is_leaf(sel) {
            return UpdateClass::new(p).expect("leaf selection");
        }
    }
}

/// A random textual-pattern AST over `names`.
///
/// The draw covers the whole grammar — both axes, wildcards, attribute and
/// text tests, existence/value/counting predicates, nesting up to `depth` —
/// and stays inside the canonical sub-language, so printing with
/// [`Pattern::to_text`] and re-parsing yields a structurally equal AST (the
/// round-trip property the tier-1 proptests check). Avoid the reserved
/// names `N` and `V` in the pool: a trailing `[N]`/`[V]` predicate would
/// re-parse as an FD equality annotation instead.
pub fn random_text_pattern<R: Rng>(names: &[&str], depth: usize, rng: &mut R) -> Pattern {
    let n_steps = rng.gen_range(1..=3);
    Pattern {
        steps: (0..n_steps)
            .map(|_| random_text_step(names, depth, rng))
            .collect(),
    }
}

/// A random textual-FD AST over `names`: like [`random_text_pattern`] for
/// every path, minus value tests (FD compilation rejects them), plus random
/// `[V]`/`[N]` equality tags. Also round-trips through
/// [`FdExpr::to_text`] and `parse_fd_expr`.
pub fn random_fd_expr<R: Rng>(names: &[&str], depth: usize, rng: &mut R) -> FdExpr {
    let mut context = random_text_pattern(names, depth, rng);
    strip_value_tests(&mut context.steps);
    let n_conditions = rng.gen_range(0..=2);
    let conditions = (0..n_conditions)
        .map(|_| (random_fd_relpath(names, depth, rng), random_eq(rng)))
        .collect();
    FdExpr {
        context,
        conditions,
        target: (random_fd_relpath(names, depth, rng), random_eq(rng)),
    }
}

fn random_eq<R: Rng>(rng: &mut R) -> EqTag {
    if rng.gen_bool(0.25) {
        EqTag::Node
    } else {
        EqTag::Value
    }
}

fn random_fd_relpath<R: Rng>(names: &[&str], depth: usize, rng: &mut R) -> RelPath {
    let mut p = random_text_relpath(names, depth, rng);
    strip_value_tests(&mut p.steps);
    p
}

fn strip_value_tests(steps: &mut [Step]) {
    for s in steps {
        s.predicates
            .retain(|p| !matches!(p, Predicate::ValueEq(..)));
        for p in &mut s.predicates {
            match p {
                Predicate::Exists(rp) | Predicate::AtLeast(_, rp) => {
                    strip_value_tests(&mut rp.steps)
                }
                Predicate::ValueEq(..) => unreachable!("retained above"),
            }
        }
    }
}

fn random_text_step<R: Rng>(names: &[&str], depth: usize, rng: &mut R) -> Step {
    let axis = if rng.gen_bool(0.25) {
        Axis::Descendant
    } else {
        Axis::Child
    };
    let pick = |rng: &mut R| names[rng.gen_range(0..names.len())].to_string();
    let test = match rng.gen_range(0..8) {
        0 => NameTest::Wildcard,
        1 => NameTest::Attribute(pick(rng)),
        2 => NameTest::Text,
        _ => NameTest::Name(pick(rng)),
    };
    let n_preds = if depth == 0 { 0 } else { rng.gen_range(0..=2) };
    let predicates = (0..n_preds)
        .map(|_| random_text_predicate(names, depth - 1, rng))
        .collect();
    Step {
        axis,
        test,
        predicates,
    }
}

fn random_text_relpath<R: Rng>(names: &[&str], depth: usize, rng: &mut R) -> RelPath {
    let n_steps = rng.gen_range(1..=2);
    RelPath {
        steps: (0..n_steps)
            .map(|_| random_text_step(names, depth, rng))
            .collect(),
    }
}

fn random_text_predicate<R: Rng>(names: &[&str], depth: usize, rng: &mut R) -> Predicate {
    let path = random_text_relpath(names, depth, rng);
    match rng.gen_range(0..4) {
        0 => {
            // Escapable characters keep the printer's string escaping honest.
            let value = match rng.gen_range(0..4) {
                0 => "a \"quoted\" value".to_string(),
                1 => "back\\slash".to_string(),
                _ => random_value(rng),
            };
            Predicate::ValueEq(path, value)
        }
        1 => Predicate::AtLeast(rng.gen_range(0..=3), path),
        _ => Predicate::Exists(path),
    }
}

/// A random well-formed subtree over `labels` (as an update payload).
pub fn random_spec<R: Rng>(
    alphabet: &Alphabet,
    labels: &[Symbol],
    size: usize,
    rng: &mut R,
) -> TreeSpec {
    let elements: Vec<Symbol> = labels
        .iter()
        .copied()
        .filter(|&l| alphabet.kind(l) == LabelKind::Element)
        .collect();
    if elements.is_empty() || size <= 1 {
        return TreeSpec::text(&random_value(rng));
    }
    let label = elements[rng.gen_range(0..elements.len())];
    let n_children = rng.gen_range(0..=3.min(size - 1));
    let children = (0..n_children)
        .map(|_| random_spec(alphabet, labels, size / (n_children + 1), rng))
        .collect();
    TreeSpec::elem(label, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_documents_conform_to_schema() {
        let a = Alphabet::new();
        let schema = Schema::parse(
            &a,
            "root: list\nlist: item*\nitem: @id name value?\nname: #text\nvalue: #text\n",
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for breadth in [0, 2, 8] {
            let doc = random_document(&schema, breadth, &mut rng);
            assert!(doc.check_well_formed().is_ok());
            schema.validate(&doc).unwrap();
        }
    }

    #[test]
    fn random_documents_conform_to_exam_schema() {
        let a = crate::exam::exam_alphabet();
        let schema = crate::exam::exam_schema(&a);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..5 {
            let doc = random_document(&schema, 4, &mut rng);
            schema.validate(&doc).unwrap();
        }
    }

    #[test]
    fn random_regexes_are_usable() {
        let a = Alphabet::with_labels(["x", "y", "z"]);
        let labels: Vec<Symbol> = ["x", "y", "z"].iter().map(|l| a.intern(l)).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        for size in [1, 3, 8] {
            let r = random_proper_regex(&labels, size, &mut rng);
            assert!(r.is_proper(), "{r:?}");
        }
    }

    #[test]
    fn random_patterns_evaluate() {
        let a = Alphabet::with_labels(["x", "y", "z"]);
        let labels: Vec<Symbol> = ["x", "y", "z"].iter().map(|l| a.intern(l)).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let schema = Schema::parse(&a, "root: x*\nx: (y|z)*\ny: z?\nz: EMPTY\n").unwrap();
        for _ in 0..10 {
            let p = random_pattern(&a, &labels, 3, &mut rng);
            let doc = random_document(&schema, 4, &mut rng);
            let _ = p.evaluate(&doc); // must not panic
        }
    }

    #[test]
    fn random_update_classes_have_leaf_selection() {
        let a = Alphabet::with_labels(["x", "y"]);
        let labels: Vec<Symbol> = ["x", "y"].iter().map(|l| a.intern(l)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            let u = random_update_class(&a, &labels, 3, &mut rng);
            let sel = u.pattern().selected()[0];
            assert!(u.template().is_leaf(sel));
        }
    }

    #[test]
    fn random_text_asts_round_trip_and_compile() {
        use regtree_pattern::lang::{parse_fd_expr, parse_pattern};
        let names = ["a", "b", "c", "d"];
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let p = random_text_pattern(&names, 2, &mut rng);
            let text = p.to_text();
            assert_eq!(parse_pattern(&text).expect(&text), p, "{text}");
            let a = Alphabet::new();
            p.compile(&a).expect(&text);

            let fd = random_fd_expr(&names, 2, &mut rng);
            let text = fd.to_text();
            assert_eq!(parse_fd_expr(&text).expect(&text), fd, "{text}");
        }
    }

    #[test]
    fn random_specs_are_well_formed() {
        let a = Alphabet::with_labels(["x", "y"]);
        let labels: Vec<Symbol> = ["x", "y"].iter().map(|l| a.intern(l)).collect();
        let mut rng = SmallRng::seed_from_u64(6);
        for size in [1, 4, 16] {
            let spec = random_spec(&a, &labels, size, &mut rng);
            assert!(spec.check(&a).is_ok());
        }
    }
}
