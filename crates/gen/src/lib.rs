//! Workload generators for the `regtree` reproduction.
//!
//! [`exam`] materializes every artifact of the paper's running example —
//! the Figure 1 document (exact and scaled), the schema `Sc`, the patterns
//! `R1–R4`, the dependencies `fd1–fd5` and the update class `U` with the
//! concrete updates `q1`/`q2`. [`random`] draws schema-valid documents and
//! random pattern-space instances for fuzzing and the scaling benchmarks.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod exam;
pub mod random;

pub use exam::{
    exam_alphabet, exam_schema, fd1, fd2, fd3, fd4, fd5, figure1_document, generate_session,
    pattern_r1, pattern_r2, pattern_r3, pattern_r4, update_class_u, update_q1, update_q2,
    EXAM_SCHEMA,
};
pub use random::{
    random_document, random_fd_expr, random_pattern, random_proper_regex, random_regex,
    random_spec, random_text_pattern, random_update_class,
};
