//! Concrete syntax for label regular expressions.
//!
//! Grammar (whitespace-insensitive; `/` and juxtaposition both concatenate,
//! mirroring the paper's path-style edge labels such as
//! `candidate/exam/discipline`):
//!
//! ```text
//! union   := concat ('|' concat)*
//! concat  := postfix (('/')? postfix)*
//! postfix := primary ('*' | '+' | '?' | repeat)*
//! repeat  := '{' NUMBER (',' NUMBER?)? '}'
//! primary := IDENT | QUOTED | '_' | '(' union ')'
//! IDENT   := [A-Za-z@#] [A-Za-z0-9_.@#-]*
//! QUOTED  := '\'' any* '\''
//! NUMBER  := [0-9]+
//! ```
//!
//! `_` is the single-label wildcard. Bounded repetition `r{n}` / `r{n,}` /
//! `r{n,m}` desugars through [`Regex::repeat`] into plain
//! concatenation/option/star, so the AST needs no counting variant.

use std::fmt;

use regtree_alphabet::Alphabet;

use crate::ast::Regex;

/// Error raised while parsing a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Wildcard,
    LParen,
    RParen,
    Star,
    Plus,
    Question,
    Pipe,
    Slash,
    /// `{min}` / `{min,}` / `{min,max}` — `max` is `None` when unbounded.
    Repeat(usize, Option<usize>),
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next_tok(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let b = self.bytes[self.pos];
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'?' => {
                self.pos += 1;
                Tok::Question
            }
            b'|' => {
                self.pos += 1;
                Tok::Pipe
            }
            b'/' => {
                self.pos += 1;
                Tok::Slash
            }
            b'{' => {
                self.pos += 1;
                let min = self.lex_number(start)?;
                self.skip_ws();
                let max = if self.pos < self.bytes.len() && self.bytes[self.pos] == b',' {
                    self.pos += 1;
                    self.skip_ws();
                    if self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                        Some(self.lex_number(start)?)
                    } else {
                        None
                    }
                } else {
                    Some(min)
                };
                self.skip_ws();
                if self.pos >= self.bytes.len() || self.bytes[self.pos] != b'}' {
                    return Err(ParseError {
                        position: start,
                        message: "unterminated repetition bound, expected '}'".into(),
                    });
                }
                self.pos += 1;
                if let Some(m) = max {
                    if m < min {
                        return Err(ParseError {
                            position: start,
                            message: format!("empty repetition range {{{min},{m}}}"),
                        });
                    }
                }
                Tok::Repeat(min, max)
            }
            b'\'' => {
                self.pos += 1;
                let lit_start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(ParseError {
                        position: start,
                        message: "unterminated quoted label".into(),
                    });
                }
                let name = self.src[lit_start..self.pos].to_string();
                self.pos += 1; // closing quote
                Tok::Ident(name)
            }
            b'_' => {
                // A lone underscore is the wildcard; an underscore starting a
                // longer identifier is part of that identifier.
                if self.pos + 1 < self.bytes.len() && is_ident_continue(self.bytes[self.pos + 1]) {
                    self.lex_ident()
                } else {
                    self.pos += 1;
                    Tok::Wildcard
                }
            }
            b if is_ident_start(b) => self.lex_ident(),
            other => {
                return Err(ParseError {
                    position: start,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        };
        Ok(Some((start, tok)))
    }

    fn lex_number(&mut self, err_at: usize) -> Result<usize, ParseError> {
        self.skip_ws();
        let digits_start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if digits_start == self.pos {
            return Err(ParseError {
                position: err_at,
                message: "expected a number in repetition bound".into(),
            });
        }
        self.src[digits_start..self.pos]
            .parse::<usize>()
            .map_err(|_| ParseError {
                position: err_at,
                message: "repetition bound out of range".into(),
            })
    }

    fn lex_ident(&mut self) -> Tok {
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        Tok::Ident(self.src[start..self.pos].to_string())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'@' || b == b'#' || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'@' | b'#')
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    cursor: usize,
    alphabet: &'a Alphabet,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.cursor).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.cursor)
            .map(|(p, _)| *p)
            .unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.cursor).map(|(_, t)| t.clone());
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos(),
            message: message.into(),
        }
    }

    fn union(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.concat()?];
        while matches!(self.peek(), Some(Tok::Pipe)) {
            self.bump();
            parts.push(self.concat()?);
        }
        Ok(Regex::alt(parts))
    }

    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.postfix()?];
        loop {
            match self.peek() {
                Some(Tok::Slash) => {
                    self.bump();
                    parts.push(self.postfix()?);
                }
                Some(Tok::Ident(_)) | Some(Tok::Wildcard) | Some(Tok::LParen) => {
                    parts.push(self.postfix()?);
                }
                _ => break,
            }
        }
        Ok(Regex::seq(parts))
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    r = r.star();
                }
                Some(Tok::Plus) => {
                    self.bump();
                    r = r.plus();
                }
                Some(Tok::Question) => {
                    self.bump();
                    r = r.opt();
                }
                Some(Tok::Repeat(min, max)) => {
                    let (min, max) = (*min, *max);
                    self.bump();
                    r = r.repeat(min, max);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn primary(&mut self) -> Result<Regex, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(Regex::Atom(self.alphabet.intern(&name))),
            Some(Tok::Wildcard) => Ok(Regex::AnyAtom),
            Some(Tok::LParen) => {
                let inner = self.union()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(self.err("expected ')'")),
                }
            }
            Some(tok) => Err(self.err(format!("unexpected token {tok:?}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parses `src` into a [`Regex`], interning labels in `alphabet`.
pub fn parse_regex(alphabet: &Alphabet, src: &str) -> Result<Regex, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next_tok()? {
        toks.push(t);
    }
    if toks.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "empty regular expression".into(),
        });
    }
    let mut p = Parser {
        toks,
        cursor: 0,
        alphabet,
        end: src.len(),
    };
    let r = p.union()?;
    if p.cursor != p.toks.len() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_alphabet::Symbol;

    fn w(a: &Alphabet, names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| a.intern(n)).collect()
    }

    #[test]
    fn parses_paper_style_path() {
        let a = Alphabet::new();
        let r = parse_regex(&a, "candidate/exam/discipline").unwrap();
        assert!(r.matches(&w(&a, &["candidate", "exam", "discipline"])));
        assert!(!r.matches(&w(&a, &["candidate", "exam"])));
    }

    #[test]
    fn juxtaposition_concatenates() {
        let a = Alphabet::new();
        let r = parse_regex(&a, "x y z").unwrap();
        assert!(r.matches(&w(&a, &["x", "y", "z"])));
    }

    #[test]
    fn union_and_star() {
        let a = Alphabet::new();
        let r = parse_regex(&a, "(A|B)*/C").unwrap();
        assert!(r.matches(&w(&a, &["C"])));
        assert!(r.matches(&w(&a, &["A", "B", "A", "C"])));
        assert!(!r.matches(&w(&a, &["A", "B"])));
    }

    #[test]
    fn wildcard_and_named_underscore() {
        let a = Alphabet::new();
        let r = parse_regex(&a, "_* / exam").unwrap();
        assert!(r.matches(&w(&a, &["whatever", "exam"])));
        let r2 = parse_regex(&a, "_foo").unwrap();
        assert_eq!(r2, Regex::Atom(a.intern("_foo")));
    }

    #[test]
    fn quoted_labels() {
        let a = Alphabet::new();
        let r = parse_regex(&a, "'first.Job-Year'").unwrap();
        assert_eq!(r, Regex::Atom(a.intern("first.Job-Year")));
    }

    #[test]
    fn postfix_operators() {
        let a = Alphabet::new();
        let r = parse_regex(&a, "x+ y?").unwrap();
        assert!(r.matches(&w(&a, &["x"])));
        assert!(r.matches(&w(&a, &["x", "x", "y"])));
        assert!(!r.matches(&w(&a, &["y"])));
    }

    #[test]
    fn attribute_labels() {
        let a = Alphabet::new();
        let r = parse_regex(&a, "candidate/@IDN").unwrap();
        assert!(r.matches(&w(&a, &["candidate", "@IDN"])));
    }

    #[test]
    fn error_positions() {
        let a = Alphabet::new();
        assert!(parse_regex(&a, "").is_err());
        assert!(parse_regex(&a, "(x").is_err());
        assert!(parse_regex(&a, "x)").is_err());
        assert!(parse_regex(&a, "x ^ y").is_err());
        assert!(parse_regex(&a, "'unterminated").is_err());
        assert!(parse_regex(&a, "*x").is_err());
    }

    #[test]
    fn bounded_repetition() {
        let a = Alphabet::new();
        let x = a.intern("x");
        let y = a.intern("y");
        let r = parse_regex(&a, "x{3}").unwrap();
        assert!(r.matches(&[x, x, x]));
        assert!(!r.matches(&[x, x]));
        assert!(!r.matches(&[x, x, x, x]));
        let r = parse_regex(&a, "x{1,3}").unwrap();
        for n in 0..5 {
            assert_eq!(
                r.matches(&vec![x; n]),
                (1..=3).contains(&n),
                "x{{1,3}} x^{n}"
            );
        }
        let r = parse_regex(&a, "x{2,}").unwrap();
        for n in 0..5 {
            assert_eq!(r.matches(&vec![x; n]), n >= 2, "x{{2,}} x^{n}");
        }
        // Grouped operand and whitespace inside the braces.
        let r = parse_regex(&a, "(x/y){ 2 , 2 }").unwrap();
        assert!(r.matches(&[x, y, x, y]));
        assert!(!r.matches(&[x, y]));
        // Desugared form is plain core AST: it reprints without braces and
        // still round-trips through the parser.
        let printed = r.display(&a).to_string();
        assert_eq!(parse_regex(&a, &printed).unwrap(), r);
        // Malformed bounds are rejected with the offset of the '{'.
        for bad in ["x{", "x{}", "x{2", "x{a}", "x{3,2}", "x{1,2,3}"] {
            let err = parse_regex(&a, bad).unwrap_err();
            assert_eq!(err.position, 1, "position for {bad:?}");
        }
    }

    #[test]
    fn display_parse_round_trip() {
        let a = Alphabet::new();
        for src in ["(x|y)*/z", "a/b/c", "x+", "_*/exam", "(a/b|c)?"] {
            let r = parse_regex(&a, src).unwrap();
            let printed = r.display(&a).to_string();
            let r2 = parse_regex(&a, &printed).unwrap();
            assert_eq!(r, r2, "round trip failed for {src} -> {printed}");
        }
    }
}
