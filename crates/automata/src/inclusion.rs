//! Regular-language inclusion checking.
//!
//! Inclusion of regular expressions is the PSPACE-hard problem the paper
//! reduces to update–FD independence (Proposition 1). Two engines:
//!
//! * [`dfa_included`] — classical determinize → complement → intersect →
//!   emptiness (worst-case exponential, returns a shortest counterexample);
//! * [`nfa_included`] — antichain-based forward search that avoids full
//!   determinization and is usually much faster in practice.
//!
//! Both return `Err(word)` with a concrete witness `word ∈ L(A) \ L(B)` when
//! inclusion fails, which downstream code turns into a concrete
//! FD-violating document (Figure 8 of the paper).

use std::collections::VecDeque;

use crate::ast::Regex;
use crate::dfa::Dfa;
use crate::nfa::{Letter, Nfa, StateId};

/// DFA-based inclusion test: `L(a) ⊆ L(b)`?
///
/// `Err(w)` carries a shortest word of `L(a) \ L(b)`.
pub fn dfa_included(a: &Dfa, b: &Dfa) -> Result<(), Vec<Letter>> {
    match a.difference(b).shortest_accepted() {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Convenience wrapper: inclusion of two regexes over a letter universe.
///
/// The universe must cover every letter relevant to wildcards; the letters
/// mentioned by the regexes themselves are always included.
pub fn regex_included(a: &Regex, b: &Regex, universe: &[Letter]) -> Result<(), Vec<Letter>> {
    let na = Nfa::from_regex(a);
    let nb = Nfa::from_regex(b);
    nfa_included(&na, &nb, universe)
}

/// Antichain-based inclusion test on NFAs: `L(a) ⊆ L(b)`?
///
/// Explores pairs `(p, S)` where `p` is a single (nondeterministic) state of
/// `a` and `S` the determinized state set of `b`, pruning any pair subsumed by
/// a visited pair with a smaller `S`. Returns a counterexample word on
/// failure.
pub fn nfa_included(a: &Nfa, b: &Nfa, universe: &[Letter]) -> Result<(), Vec<Letter>> {
    let mut letters = a.used_letters();
    for &l in b.used_letters().iter().chain(universe) {
        if !letters.contains(&l) {
            letters.push(l);
        }
    }
    if letters.is_empty() && (a.uses_wildcard() || b.uses_wildcard()) {
        letters.push(0);
    }
    letters.sort_unstable();
    letters.dedup();

    let mut nodes: Vec<Node> = Vec::new();
    // Antichain per a-state: list of (node index) whose b_set is minimal.
    let n_a = a.num_states();
    let mut frontier_sets: Vec<Vec<Vec<StateId>>> = vec![Vec::new(); n_a];

    let b_init = b.initial_set();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &p in &a.initial_set() {
        if subsumed(&frontier_sets[p as usize], &b_init) {
            continue;
        }
        insert(&mut frontier_sets[p as usize], b_init.clone());
        nodes.push(Node {
            p,
            b_set: b_init.clone(),
            parent: None,
        });
        queue.push_back(nodes.len() - 1);
    }

    while let Some(ni) = queue.pop_front() {
        let (p, b_set, word_start) = {
            let n = &nodes[ni];
            (n.p, n.b_set.clone(), ni)
        };
        if a.is_accept(p) && !b.set_accepts(&b_set) {
            return Err(reconstruct(&nodes, word_start));
        }
        for &l in &letters {
            let a_next = a.step(&[p], l);
            if a_next.is_empty() {
                continue;
            }
            let b_next = b.step(&b_set, l);
            for &p2 in &a_next {
                if subsumed(&frontier_sets[p2 as usize], &b_next) {
                    continue;
                }
                insert(&mut frontier_sets[p2 as usize], b_next.clone());
                nodes.push(Node {
                    p: p2,
                    b_set: b_next.clone(),
                    parent: Some((ni, l)),
                });
                queue.push_back(nodes.len() - 1);
            }
        }
    }
    Ok(())
}

/// Is `candidate` subsumed by an already-seen set (some seen ⊆ candidate)?
fn subsumed(seen: &[Vec<StateId>], candidate: &[StateId]) -> bool {
    seen.iter().any(|s| is_subset(s, candidate))
}

fn is_subset(small: &[StateId], big: &[StateId]) -> bool {
    // Both sorted.
    let mut bi = 0;
    'outer: for &x in small {
        while bi < big.len() {
            match big[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Keeps only minimal sets (drops supersets of the new set).
fn insert(seen: &mut Vec<Vec<StateId>>, set: Vec<StateId>) {
    seen.retain(|s| !is_subset(&set, s));
    seen.push(set);
}

/// Search node for witness reconstruction in [`nfa_included`].
struct Node {
    p: StateId,
    b_set: Vec<StateId>,
    parent: Option<(usize, Letter)>,
}

fn reconstruct(nodes: &[Node], mut cur: usize) -> Vec<Letter> {
    let mut word = Vec::new();
    while let Some((parent, l)) = nodes[cur].parent {
        word.push(l);
        cur = parent;
    }
    word.reverse();
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use regtree_alphabet::Alphabet;

    fn check(a_src: &str, b_src: &str) -> Result<(), Vec<Letter>> {
        let alpha = Alphabet::new();
        let ra = parse_regex(&alpha, a_src).unwrap();
        let rb = parse_regex(&alpha, b_src).unwrap();
        let anti = regex_included(&ra, &rb, &[]);
        // Cross-check both engines on every call.
        let na = Nfa::from_regex(&ra);
        let nb = Nfa::from_regex(&rb);
        let mut uni = na.used_letters();
        uni.extend(nb.used_letters());
        let da = Dfa::from_nfa(&na, &uni);
        let db = Dfa::from_nfa(&nb, &uni);
        let classic = dfa_included(&da, &db);
        assert_eq!(anti.is_ok(), classic.is_ok(), "{a_src} vs {b_src}");
        if let Err(w) = &anti {
            assert!(na.accepts(w), "witness not in L(a)");
            assert!(!nb.accepts(w), "witness in L(b)");
        }
        anti
    }

    #[test]
    fn trivial_inclusions() {
        assert!(check("x", "x").is_ok());
        assert!(check("x", "x|y").is_ok());
        assert!(check("x/y", "x/_").is_ok());
        assert!(check("x+", "x*").is_ok());
        assert!(check("(x/y)*", "(x|y)*").is_ok());
    }

    #[test]
    fn failing_inclusions_give_witnesses() {
        assert!(check("x|y", "x").is_err());
        assert!(check("x*", "x+").is_err());
        let w = check("x/x", "x").unwrap_err();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn empty_language_included_in_everything() {
        let alpha = Alphabet::new();
        let empty = Regex::Empty;
        let x = parse_regex(&alpha, "x").unwrap();
        assert!(regex_included(&empty, &x, &[]).is_ok());
        assert!(regex_included(&x, &empty, &[]).is_err());
    }

    #[test]
    fn wildcard_inclusion_depends_on_universe() {
        let alpha = Alphabet::new();
        let any = parse_regex(&alpha, "_").unwrap();
        let x = parse_regex(&alpha, "x").unwrap();
        let x_sym = alpha.intern("x").0;
        let y_sym = alpha.intern("y").0;
        // With universe {x}: _ ⊆ x holds.
        assert!(regex_included(&any, &x, &[x_sym]).is_ok());
        // With universe {x, y}: _ ⊄ x (y is a counterexample).
        let err = regex_included(&any, &x, &[x_sym, y_sym]).unwrap_err();
        assert_eq!(err, vec![y_sym]);
    }

    #[test]
    fn nontrivial_equivalence() {
        // (a|b)* == (a* b*)*
        assert!(check("(a|b)*", "(a*/b*)*").is_ok());
        assert!(check("(a*/b*)*", "(a|b)*").is_ok());
    }

    #[test]
    fn antichain_handles_larger_star_heights() {
        assert!(check("(a/b/c)+", "(a/(b|c)*)+").is_ok());
        assert!(check("(a/(b|c)*)+", "(a/b/c)+").is_err());
    }
}
