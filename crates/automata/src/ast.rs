//! Regular-expression abstract syntax over interned label symbols.
//!
//! Edge languages of regular tree templates (Definition 1 of the paper) are
//! *proper* regular expressions: their language must not contain the empty
//! word. [`Regex::is_proper`] checks that property.

use std::fmt;

use regtree_alphabet::{Alphabet, Symbol};

/// A regular expression over label symbols.
///
/// `AnyAtom` is the wildcard matching exactly one arbitrary label; it keeps
/// pattern edges like “any path of length ≥ 1” (`_+`) compact and independent
/// of the alphabet snapshot.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The language `{ε}`.
    Epsilon,
    /// A single label.
    Atom(Symbol),
    /// Any single label (wildcard `_`).
    AnyAtom,
    /// Concatenation, in order.
    Concat(Vec<Regex>),
    /// Union of alternatives.
    Union(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more repetitions.
    Plus(Box<Regex>),
    /// Zero or one occurrence.
    Opt(Box<Regex>),
}

impl Regex {
    /// A single-label atom.
    pub fn atom(sym: Symbol) -> Regex {
        Regex::Atom(sym)
    }

    /// Interns `name` in `alphabet` and returns its atom.
    pub fn label(alphabet: &Alphabet, name: &str) -> Regex {
        Regex::Atom(alphabet.intern(name))
    }

    /// Concatenation smart constructor: flattens, drops `ε`, propagates `∅`.
    pub fn seq<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Union smart constructor: flattens, drops `∅`, deduplicates.
    pub fn alt<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Union(inner) => {
                    for i in inner {
                        if !out.contains(&i) {
                            out.push(i);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Union(out),
        }
    }

    /// Kleene star smart constructor (`∅* = ε* = ε`, `(r*)* = r*`).
    pub fn star(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(r) => Regex::Star(r),
            Regex::Opt(r) => Regex::Star(r),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// `r+` smart constructor.
    pub fn plus(self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            p @ Regex::Plus(_) => p,
            Regex::Opt(r) => Regex::Star(r),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// `r?` smart constructor.
    pub fn opt(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            o @ Regex::Opt(_) => o,
            Regex::Plus(r) => Regex::Star(r),
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// Bounded repetition `r{min,max}` by expansion into the core AST.
    ///
    /// No new variant is introduced: the result is built from `Concat`,
    /// `Opt` and `Star`, so every downstream consumer (NFA construction,
    /// derivatives, display) handles it unchanged. `max = None` means
    /// unbounded (`r{min,}`); `max = Some(m)` with `m < min` yields the
    /// empty language. The expansion is `r … r` (`min` copies) followed by
    /// `r? … r?` (`max - min` copies) or `r*` when unbounded:
    ///
    /// * `r.repeat(0, Some(0))` = `ε`
    /// * `r.repeat(2, Some(2))` = `r/r`
    /// * `r.repeat(1, Some(3))` = `r/r?/r?`
    /// * `r.repeat(2, None)` = `r/r/r*`
    ///
    /// This is the compilation target for counting constraints in the
    /// textual pattern language (`[count(e) >= n]` repeats predicate
    /// branches; `e{n,m}` repeats along an edge word).
    pub fn repeat(self, min: usize, max: Option<usize>) -> Regex {
        if let Some(m) = max {
            if m < min {
                return Regex::Empty;
            }
        }
        let mut parts = Vec::new();
        for _ in 0..min {
            parts.push(self.clone());
        }
        match max {
            None => parts.push(self.star()),
            Some(m) => {
                for _ in min..m {
                    parts.push(self.clone().opt());
                }
            }
        }
        Regex::seq(parts)
    }

    /// Does the language contain the empty word?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Atom(_) | Regex::AnyAtom => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Plus(r) => r.nullable(),
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Union(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Is the language empty (no word at all)?
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Atom(_) | Regex::AnyAtom | Regex::Star(_) | Regex::Opt(_) => {
                false
            }
            Regex::Concat(parts) => parts.iter().any(Regex::is_empty_language),
            Regex::Union(parts) => parts.iter().all(Regex::is_empty_language),
            Regex::Plus(r) => r.is_empty_language(),
        }
    }

    /// A regular expression is *proper* when its language does not contain the
    /// empty word (Definition 1 requires edge expressions to be proper).
    pub fn is_proper(&self) -> bool {
        !self.nullable() && !self.is_empty_language()
    }

    /// Syntactic size: number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Atom(_) | Regex::AnyAtom => 1,
            Regex::Concat(parts) | Regex::Union(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => 1 + r.size(),
        }
    }

    /// Collects the distinct atoms mentioned by the expression.
    pub fn atoms(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Symbol>) {
        match self {
            Regex::Atom(s) => out.push(*s),
            Regex::Concat(parts) | Regex::Union(parts) => {
                for p in parts {
                    p.collect_atoms(out);
                }
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.collect_atoms(out),
            Regex::Empty | Regex::Epsilon | Regex::AnyAtom => {}
        }
    }

    /// True when the expression contains the wildcard atom.
    pub fn uses_wildcard(&self) -> bool {
        match self {
            Regex::AnyAtom => true,
            Regex::Concat(parts) | Regex::Union(parts) => parts.iter().any(Regex::uses_wildcard),
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.uses_wildcard(),
            Regex::Empty | Regex::Epsilon | Regex::Atom(_) => false,
        }
    }

    /// Brzozowski derivative with respect to one symbol.
    ///
    /// Used as an independent matcher to cross-check the NFA/DFA engines in
    /// property tests.
    pub fn derivative(&self, sym: Symbol) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Atom(a) => {
                if *a == sym {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::AnyAtom => Regex::Epsilon,
            Regex::Union(parts) => Regex::alt(parts.iter().map(|p| p.derivative(sym))),
            Regex::Concat(parts) => {
                // d(r1 r2 … ) = d(r1) r2 …  ∪  [r1 nullable] d(r2 r3 …)
                let Some((head, tail)) = parts.split_first() else {
                    return Regex::Empty;
                };
                let rest = Regex::seq(tail.iter().cloned());
                let first = Regex::seq([head.derivative(sym), rest.clone()]);
                if head.nullable() {
                    Regex::alt([first, rest.derivative(sym)])
                } else {
                    first
                }
            }
            Regex::Star(r) => Regex::seq([r.derivative(sym), r.as_ref().clone().star()]),
            Regex::Plus(r) => Regex::seq([r.derivative(sym), r.as_ref().clone().star()]),
            Regex::Opt(r) => r.derivative(sym),
        }
    }

    /// Membership test by iterated derivatives (reference implementation).
    pub fn matches(&self, word: &[Symbol]) -> bool {
        let mut cur = self.clone();
        for &sym in word {
            cur = cur.derivative(sym);
            if cur.is_empty_language() {
                return false;
            }
        }
        cur.nullable()
    }

    /// Pretty-prints the expression using the label names of `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> RegexDisplay<'a> {
        RegexDisplay {
            regex: self,
            alphabet,
        }
    }
}

/// Display adapter pairing a [`Regex`] with its [`Alphabet`].
pub struct RegexDisplay<'a> {
    regex: &'a Regex,
    alphabet: &'a Alphabet,
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_regex(self.regex, self.alphabet, f, 0)
    }
}

/// Precedence levels: 0 = union, 1 = concat, 2 = postfix/atom.
fn fmt_regex(r: &Regex, a: &Alphabet, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match r {
        Regex::Empty => write!(f, "∅"),
        Regex::Epsilon => write!(f, "ε"),
        Regex::AnyAtom => write!(f, "_"),
        Regex::Atom(s) => write!(f, "{}", a.name(*s)),
        Regex::Union(parts) => {
            let parens = prec > 0;
            if parens {
                write!(f, "(")?;
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, "|")?;
                }
                fmt_regex(p, a, f, 1)?;
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Concat(parts) => {
            let parens = prec > 1;
            if parens {
                write!(f, "(")?;
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, "/")?;
                }
                fmt_regex(p, a, f, 2)?;
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Star(r) => {
            fmt_regex(r, a, f, 2)?;
            write!(f, "*")
        }
        Regex::Plus(r) => {
            fmt_regex(r, a, f, 2)?;
            write!(f, "+")
        }
        Regex::Opt(r) => {
            fmt_regex(r, a, f, 2)?;
            write!(f, "?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(a: &Alphabet, names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| a.intern(n)).collect()
    }

    #[test]
    fn smart_constructors_normalize() {
        let a = Alphabet::new();
        let x = Regex::label(&a, "x");
        assert_eq!(Regex::seq([Regex::Epsilon, x.clone()]), x);
        assert_eq!(Regex::seq([x.clone(), Regex::Empty]), Regex::Empty);
        assert_eq!(Regex::alt([Regex::Empty, x.clone()]), x);
        assert_eq!(Regex::alt([x.clone(), x.clone()]), x);
        assert_eq!(Regex::Empty.star(), Regex::Epsilon);
        assert_eq!(x.clone().star().star(), x.clone().star());
        assert_eq!(x.clone().plus().opt(), x.star());
    }

    #[test]
    fn nullable_and_proper() {
        let a = Alphabet::new();
        let x = Regex::label(&a, "x");
        assert!(!x.nullable());
        assert!(x.is_proper());
        assert!(x.clone().star().nullable());
        assert!(!x.clone().star().is_proper());
        assert!(x.clone().plus().is_proper());
        assert!(!Regex::Empty.is_proper());
        assert!(!Regex::Epsilon.is_proper());
        let concat = Regex::seq([x.clone().opt(), x.star()]);
        assert!(concat.nullable());
    }

    #[test]
    fn empty_language_detection() {
        let a = Alphabet::new();
        let x = Regex::label(&a, "x");
        assert!(Regex::Concat(vec![x.clone(), Regex::Empty]).is_empty_language());
        assert!(Regex::Union(vec![Regex::Empty, Regex::Empty]).is_empty_language());
        assert!(!Regex::Union(vec![Regex::Empty, x]).is_empty_language());
    }

    #[test]
    fn derivative_matching_basics() {
        let a = Alphabet::new();
        let s = syms(&a, &["x", "y"]);
        let (x, y) = (s[0], s[1]);
        // (x y)* x
        let r = Regex::seq([
            Regex::seq([Regex::Atom(x), Regex::Atom(y)]).star(),
            Regex::Atom(x),
        ]);
        assert!(r.matches(&[x]));
        assert!(r.matches(&[x, y, x]));
        assert!(r.matches(&[x, y, x, y, x]));
        assert!(!r.matches(&[]));
        assert!(!r.matches(&[x, y]));
        assert!(!r.matches(&[y, x]));
    }

    #[test]
    fn wildcard_matches_any_single_label() {
        let a = Alphabet::new();
        let s = syms(&a, &["x", "y"]);
        let r = Regex::seq([Regex::AnyAtom.star(), Regex::Atom(s[1])]);
        assert!(r.matches(&[s[0], s[0], s[1]]));
        assert!(r.matches(&[s[1]]));
        assert!(!r.matches(&[s[1], s[0]]));
        assert!(r.uses_wildcard());
    }

    #[test]
    fn atoms_and_size() {
        let a = Alphabet::new();
        let s = syms(&a, &["x", "y"]);
        let r = Regex::alt([
            Regex::seq([Regex::Atom(s[0]), Regex::Atom(s[1])]),
            Regex::Atom(s[0]),
        ]);
        assert_eq!(r.atoms(), vec![s[0], s[1]]);
        assert!(r.size() >= 4);
    }

    #[test]
    fn display_round_readable() {
        let a = Alphabet::new();
        let x = Regex::label(&a, "x");
        let y = Regex::label(&a, "y");
        let r = Regex::seq([Regex::alt([x, y]).star(), Regex::label(&a, "z")]);
        assert_eq!(r.display(&a).to_string(), "(x|y)*/z");
    }

    #[test]
    fn repeat_expansion_semantics() {
        let a = Alphabet::new();
        let x = a.intern("x");
        let r = Regex::Atom(x);
        // r{min,max} matches x^k iff min <= k <= max.
        let cases: &[(usize, Option<usize>)] = &[
            (0, Some(0)),
            (0, Some(2)),
            (1, Some(1)),
            (1, Some(3)),
            (2, Some(2)),
            (2, None),
            (0, None),
            (5, Some(5)),
        ];
        for &(min, max) in cases {
            let rep = r.clone().repeat(min, max);
            for k in 0..8usize {
                let want = k >= min && max.map(|m| k <= m).unwrap_or(true);
                let w = vec![x; k];
                assert_eq!(rep.matches(&w), want, "x{{{min},{max:?}}} on x^{k}");
            }
        }
        // Degenerate bounds give the empty language / epsilon.
        assert_eq!(r.clone().repeat(3, Some(2)), Regex::Empty);
        assert_eq!(r.clone().repeat(0, Some(0)), Regex::Epsilon);
        // Properness: min >= 1 keeps a proper operand proper.
        assert!(r.clone().repeat(2, Some(4)).is_proper());
        assert!(!r.repeat(0, Some(4)).is_proper());
    }

    #[test]
    fn plus_equals_concat_star_semantics() {
        let a = Alphabet::new();
        let x = a.intern("x");
        let plus = Regex::Atom(x).plus();
        for n in 0..5 {
            let w = vec![x; n];
            assert_eq!(plus.matches(&w), n >= 1, "length {n}");
        }
    }
}
