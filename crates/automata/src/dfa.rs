//! Deterministic finite automata over an explicit letter universe.
//!
//! A [`Dfa`] is always *complete* over its universe (a sink state is added
//! when needed), which makes complementation a simple accept-flip — the key
//! step of the PSPACE-hard regular-expression inclusion test behind the
//! paper's Proposition 1.

use std::collections::{HashMap, VecDeque};

use crate::nfa::{Letter, Nfa, StateId};

/// A complete deterministic finite automaton.
#[derive(Clone, Debug)]
pub struct Dfa {
    /// Sorted letter universe; transitions are indexed by position here.
    letters: Vec<Letter>,
    /// `trans[s][li]` = successor of state `s` on `letters[li]`.
    trans: Vec<Vec<StateId>>,
    start: StateId,
    accept: Vec<bool>,
}

impl Dfa {
    /// Subset construction from `nfa`, complete over the union of `universe`
    /// and the letters the NFA mentions. Wildcard transitions expand to every
    /// universe letter.
    pub fn from_nfa(nfa: &Nfa, universe: &[Letter]) -> Dfa {
        let mut letters = nfa.used_letters();
        for &l in universe {
            if !letters.contains(&l) {
                letters.push(l);
            }
        }
        letters.sort_unstable();
        letters.dedup();

        let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
        let mut sets: Vec<Vec<StateId>> = Vec::new();
        let mut trans: Vec<Vec<StateId>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();

        let init = nfa.initial_set();
        index.insert(init.clone(), 0);
        sets.push(init);
        let mut queue: VecDeque<StateId> = VecDeque::new();
        queue.push_back(0);
        trans.push(vec![0; letters.len()]); // patched below
        accept.push(false);

        while let Some(s) = queue.pop_front() {
            let set = sets[s as usize].clone();
            accept[s as usize] = nfa.set_accepts(&set);
            for (li, &l) in letters.iter().enumerate() {
                let next = nfa.step(&set, l);
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = sets.len() as StateId;
                        index.insert(next.clone(), id);
                        sets.push(next);
                        trans.push(vec![0; letters.len()]);
                        accept.push(false);
                        queue.push_back(id);
                        id
                    }
                };
                trans[s as usize][li] = id;
            }
        }
        // Note: the empty subset, if reachable, acts as the (rejecting) sink.
        Dfa {
            letters,
            trans,
            start: 0,
            accept,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The sorted letter universe this automaton is complete over.
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// Whether state `s` accepts.
    pub fn is_accept(&self, s: StateId) -> bool {
        self.accept[s as usize]
    }

    fn letter_index(&self, l: Letter) -> Option<usize> {
        self.letters.binary_search(&l).ok()
    }

    /// Deterministic step; `None` when the letter is outside the universe.
    pub fn step(&self, s: StateId, l: Letter) -> Option<StateId> {
        let li = self.letter_index(l)?;
        Some(self.trans[s as usize][li])
    }

    /// Word membership. Letters outside the universe reject (with a debug
    /// assertion, since that usually indicates a construction mistake).
    pub fn accepts(&self, word: &[Letter]) -> bool {
        let mut cur = self.start;
        for &l in word {
            match self.step(cur, l) {
                Some(n) => cur = n,
                None => {
                    debug_assert!(false, "letter {l} outside DFA universe");
                    return false;
                }
            }
        }
        self.accept[cur as usize]
    }

    /// Complement over the same universe (valid because the DFA is complete).
    pub fn complement(&self) -> Dfa {
        let mut c = self.clone();
        for b in &mut c.accept {
            *b = !*b;
        }
        c
    }

    /// Product construction. `both` decides acceptance: intersection when
    /// `true`-`true` is required, union otherwise.
    fn product(&self, other: &Dfa, intersect: bool) -> Dfa {
        assert_eq!(
            self.letters, other.letters,
            "product requires identical letter universes"
        );
        let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut pairs: Vec<(StateId, StateId)> = Vec::new();
        let mut trans: Vec<Vec<StateId>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut queue = VecDeque::new();

        let start = (self.start, other.start);
        index.insert(start, 0);
        pairs.push(start);
        trans.push(vec![0; self.letters.len()]);
        accept.push(false);
        queue.push_back(0u32);

        while let Some(s) = queue.pop_front() {
            let (p, q) = pairs[s as usize];
            accept[s as usize] = if intersect {
                self.accept[p as usize] && other.accept[q as usize]
            } else {
                self.accept[p as usize] || other.accept[q as usize]
            };
            for li in 0..self.letters.len() {
                let np = self.trans[p as usize][li];
                let nq = other.trans[q as usize][li];
                let key = (np, nq);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = pairs.len() as StateId;
                        index.insert(key, id);
                        pairs.push(key);
                        trans.push(vec![0; self.letters.len()]);
                        accept.push(false);
                        queue.push_back(id);
                        id
                    }
                };
                trans[s as usize][li] = id;
            }
        }
        Dfa {
            letters: self.letters.clone(),
            trans,
            start: 0,
            accept,
        }
    }

    /// Language intersection.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, true)
    }

    /// Language union.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, false)
    }

    /// Language difference `self \ other`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.intersect(&other.complement())
    }

    /// Shortest accepted word, or `None` when the language is empty.
    pub fn shortest_accepted(&self) -> Option<Vec<Letter>> {
        let mut prev: Vec<Option<(StateId, Letter)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        let mut found = None;
        if self.accept[self.start as usize] {
            found = Some(self.start);
        }
        while found.is_none() {
            let Some(s) = queue.pop_front() else { break };
            for (li, &n) in self.trans[s as usize].iter().enumerate() {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    prev[n as usize] = Some((s, self.letters[li]));
                    if self.accept[n as usize] {
                        found = Some(n);
                        break;
                    }
                    queue.push_back(n);
                }
            }
        }
        let mut cur = found?;
        let mut word = Vec::new();
        while let Some((p, l)) = prev[cur as usize] {
            word.push(l);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Is the language empty?
    pub fn is_empty_language(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// Moore partition-refinement minimization.
    pub fn minimize(&self) -> Dfa {
        let n = self.num_states();
        // Initial partition: accepting vs rejecting.
        let mut class: Vec<u32> = self.accept.iter().map(|&a| a as u32).collect();
        let mut num_classes = 2;
        loop {
            // Signature of each state: (class, classes of successors).
            let mut sig_index: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut new_class = vec![0u32; n];
            for s in 0..n {
                let sig: Vec<u32> = self.trans[s].iter().map(|&t| class[t as usize]).collect();
                let key = (class[s], sig);
                let next_id = sig_index.len() as u32;
                let id = *sig_index.entry(key).or_insert(next_id);
                new_class[s] = id;
            }
            let new_num = sig_index.len() as u32;
            class = new_class;
            if new_num == num_classes {
                break;
            }
            num_classes = new_num;
        }
        let m = num_classes as usize;
        let mut trans = vec![vec![0u32; self.letters.len()]; m];
        let mut accept = vec![false; m];
        for s in 0..n {
            let c = class[s] as usize;
            accept[c] = self.accept[s];
            for li in 0..self.letters.len() {
                trans[c][li] = class[self.trans[s][li] as usize];
            }
        }
        Dfa {
            letters: self.letters.clone(),
            trans,
            start: class[self.start as usize],
            accept,
        }
    }

    /// Enumerates all accepted words of length at most `max_len`
    /// (tests/examples only — exponential in `max_len`).
    pub fn words_up_to(&self, max_len: usize) -> Vec<Vec<Letter>> {
        let mut out = Vec::new();
        let mut frontier: Vec<(StateId, Vec<Letter>)> = vec![(self.start, Vec::new())];
        if self.accept[self.start as usize] {
            out.push(Vec::new());
        }
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (s, w) in &frontier {
                for (li, &t) in self.trans[*s as usize].iter().enumerate() {
                    let mut w2 = w.clone();
                    w2.push(self.letters[li]);
                    if self.accept[t as usize] {
                        out.push(w2.clone());
                    }
                    next.push((t, w2));
                }
            }
            frontier = next;
        }
        out
    }
}

/// Sentinel for the dead (empty-subset) state of an [`EdgeDfa`].
pub const EDGE_DEAD: StateId = StateId::MAX;

/// A determinized edge automaton specialized for pattern evaluation.
///
/// Unlike [`Dfa`] it needs no letter universe up front: because NFA guards
/// are only `ε` / `Sym` / `Any`, every letter the NFA does not mention
/// behaves identically, so the transition table carries one column per
/// mentioned letter plus a single default ("other") column. The result is
/// exact for the *whole* (open-ended, interned-on-demand) label alphabet.
///
/// Extras used by the evaluator to prune document traversal:
///
/// * dead-state detection (`EDGE_DEAD`, plus states that can no longer
///   reach acceptance report [`EdgeDfa::is_live`] = false) cuts DFS
///   branches early;
/// * [`EdgeDfa::final_letters`] / [`EdgeDfa::other_final`] describe which
///   letters can ever *end* an accepted word — combined with a label index
///   this rules out whole documents or subtrees without walking them.
#[derive(Clone, Debug)]
pub struct EdgeDfa {
    /// Sorted concrete letters with explicit columns.
    letters: Vec<Letter>,
    /// Row-major table: `trans[s * (letters.len() + 1) + col]`; the last
    /// column is the default for letters not in `letters`. `EDGE_DEAD`
    /// encodes the empty subset.
    trans: Vec<StateId>,
    accept: Vec<bool>,
    /// `live[s]`: some accepting state is reachable from `s`.
    live: Vec<bool>,
    /// Sorted letters on which some transition enters an accepting state.
    final_letters: Vec<Letter>,
    /// Whether an unmentioned letter can enter an accepting state.
    other_final: bool,
}

impl EdgeDfa {
    /// Subset construction from `nfa`, capped at `max_states` subsets
    /// (`None` when the cap is exceeded — callers fall back to NFA-set
    /// simulation; with the tiny automata of template edges this does not
    /// happen in practice).
    pub fn from_nfa(nfa: &Nfa, max_states: usize) -> Option<EdgeDfa> {
        let letters = nfa.used_letters();
        let width = letters.len() + 1;

        // The "other" column: only wildcard transitions fire.
        let step_other = |closed: &[StateId]| -> Vec<StateId> {
            let mut next: Vec<StateId> = Vec::new();
            for &s in closed {
                for &(l, t) in nfa.transitions_from(s) {
                    if matches!(l, crate::nfa::NfaLabel::Any) {
                        next.push(t);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            nfa.eps_closure(&next)
        };

        let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
        let mut sets: Vec<Vec<StateId>> = Vec::new();
        let mut trans: Vec<StateId> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();

        let init = nfa.initial_set();
        if init.is_empty() {
            return None; // degenerate automaton; keep the NFA path
        }
        index.insert(init.clone(), 0);
        sets.push(init);
        trans.extend(std::iter::repeat(EDGE_DEAD).take(width));
        accept.push(false);
        let mut queue: VecDeque<StateId> = VecDeque::new();
        queue.push_back(0);

        while let Some(s) = queue.pop_front() {
            let set = sets[s as usize].clone();
            accept[s as usize] = nfa.set_accepts(&set);
            for col in 0..width {
                let next = if col < letters.len() {
                    nfa.step(&set, letters[col])
                } else {
                    step_other(&set)
                };
                if next.is_empty() {
                    continue; // stays EDGE_DEAD
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        if sets.len() >= max_states {
                            return None;
                        }
                        let id = sets.len() as StateId;
                        index.insert(next.clone(), id);
                        sets.push(next);
                        trans.extend(std::iter::repeat(EDGE_DEAD).take(width));
                        accept.push(false);
                        queue.push_back(id);
                        id
                    }
                };
                trans[s as usize * width + col] = id;
            }
        }
        for (s, set) in sets.iter().enumerate() {
            accept[s] = nfa.set_accepts(set);
        }

        // Liveness: reverse-reachability from accepting states.
        let n = sets.len();
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for s in 0..n {
            for col in 0..width {
                let t = trans[s * width + col];
                if t != EDGE_DEAD {
                    rev[t as usize].push(s as StateId);
                }
            }
        }
        let mut live = accept.clone();
        let mut stack: Vec<StateId> = (0..n as StateId).filter(|&s| accept[s as usize]).collect();
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    stack.push(p);
                }
            }
        }

        // Which letters can end an accepted word?
        let mut final_letters: Vec<Letter> = Vec::new();
        let mut other_final = false;
        for s in 0..n {
            for col in 0..width {
                let t = trans[s * width + col];
                if t != EDGE_DEAD && accept[t as usize] {
                    if col < letters.len() {
                        final_letters.push(letters[col]);
                    } else {
                        other_final = true;
                    }
                }
            }
        }
        final_letters.sort_unstable();
        final_letters.dedup();

        Some(EdgeDfa {
            letters,
            trans,
            accept,
            live,
            final_letters,
            other_final,
        })
    }

    /// The start state (always `0`; never `EDGE_DEAD`).
    #[inline]
    pub fn start(&self) -> StateId {
        0
    }

    /// Number of (live or not) subset states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// One transition; `EDGE_DEAD` in or out means the run died.
    #[inline]
    pub fn step(&self, s: StateId, letter: Letter) -> StateId {
        if s == EDGE_DEAD {
            return EDGE_DEAD;
        }
        let width = self.letters.len() + 1;
        let col = match self.letters.binary_search(&letter) {
            Ok(i) => i,
            Err(_) => self.letters.len(),
        };
        self.trans[s as usize * width + col]
    }

    /// Whether `s` is accepting (`EDGE_DEAD` never is).
    #[inline]
    pub fn is_accept(&self, s: StateId) -> bool {
        s != EDGE_DEAD && self.accept[s as usize]
    }

    /// Whether acceptance is still reachable from `s`.
    #[inline]
    pub fn is_live(&self, s: StateId) -> bool {
        s != EDGE_DEAD && self.live[s as usize]
    }

    /// Sorted letters that can end an accepted word.
    pub fn final_letters(&self) -> &[Letter] {
        &self.final_letters
    }

    /// True when a letter the NFA never mentions can end an accepted word
    /// (i.e. acceptance through a wildcard transition).
    pub fn other_final(&self) -> bool {
        self.other_final
    }

    /// Word membership (used by the parity tests).
    pub fn accepts(&self, word: &[Letter]) -> bool {
        let mut s = self.start();
        for &l in word {
            s = self.step(s, l);
            if s == EDGE_DEAD {
                return false;
            }
        }
        self.is_accept(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use regtree_alphabet::Alphabet;

    fn dfa(a: &Alphabet, src: &str, universe: &[&str]) -> Dfa {
        let uni: Vec<Letter> = universe.iter().map(|n| a.intern(n).0).collect();
        Dfa::from_nfa(&Nfa::from_regex(&parse_regex(a, src).unwrap()), &uni)
    }

    fn w(a: &Alphabet, names: &[&str]) -> Vec<Letter> {
        names.iter().map(|n| a.intern(n).0).collect()
    }

    #[test]
    fn subset_construction_membership() {
        let a = Alphabet::new();
        let d = dfa(&a, "(x|y)*/z", &["x", "y", "z"]);
        assert!(d.accepts(&w(&a, &["z"])));
        assert!(d.accepts(&w(&a, &["x", "y", "z"])));
        assert!(!d.accepts(&w(&a, &["x"])));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn complement_flips_membership() {
        let a = Alphabet::new();
        let d = dfa(&a, "x/y", &["x", "y"]);
        let c = d.complement();
        for word in [
            vec![],
            w(&a, &["x"]),
            w(&a, &["x", "y"]),
            w(&a, &["y", "x"]),
        ] {
            assert_eq!(d.accepts(&word), !c.accepts(&word));
        }
    }

    #[test]
    fn intersect_union_difference() {
        let a = Alphabet::new();
        let d1 = dfa(&a, "x*", &["x", "y"]);
        let d2 = dfa(&a, "x/x?", &["x", "y"]);
        let inter = d1.intersect(&d2);
        assert!(inter.accepts(&w(&a, &["x"])));
        assert!(inter.accepts(&w(&a, &["x", "x"])));
        assert!(!inter.accepts(&[]));
        let uni = d1.union(&d2);
        assert!(uni.accepts(&[]));
        let diff = d1.difference(&d2);
        assert!(diff.accepts(&[]));
        assert!(!diff.accepts(&w(&a, &["x"])));
        assert!(diff.accepts(&w(&a, &["x", "x", "x"])));
    }

    #[test]
    fn emptiness_and_witness() {
        let a = Alphabet::new();
        let d = dfa(&a, "x/y/z", &["x", "y", "z"]);
        assert_eq!(d.shortest_accepted().unwrap(), w(&a, &["x", "y", "z"]));
        let none = d.difference(&d);
        assert!(none.is_empty_language());
    }

    #[test]
    fn minimize_preserves_language() {
        let a = Alphabet::new();
        let d = dfa(&a, "(x|y)*/z/(x|y)*", &["x", "y", "z"]);
        let m = d.minimize();
        assert!(m.num_states() <= d.num_states());
        for word in d.words_up_to(4) {
            assert!(m.accepts(&word));
        }
        for word in m.words_up_to(4) {
            assert!(d.accepts(&word));
        }
    }

    #[test]
    fn wildcard_expands_over_universe() {
        let a = Alphabet::new();
        let d = dfa(&a, "_/end", &["p", "q", "end"]);
        assert!(d.accepts(&w(&a, &["p", "end"])));
        assert!(d.accepts(&w(&a, &["q", "end"])));
        assert!(d.accepts(&w(&a, &["end", "end"])));
        assert!(!d.accepts(&w(&a, &["end"])));
    }

    #[test]
    fn words_up_to_enumerates_exactly() {
        let a = Alphabet::new();
        let d = dfa(&a, "x/x?", &["x"]);
        let mut words = d.words_up_to(3);
        words.sort();
        assert_eq!(words, vec![w(&a, &["x"]), w(&a, &["x", "x"])]);
    }

    #[test]
    fn minimization_reaches_canonical_size() {
        let a = Alphabet::new();
        // Two syntactically different regexes with the same language minimize
        // to DFAs of equal size.
        let d1 = dfa(&a, "x/x* | x*/x", &["x"]).minimize();
        let d2 = dfa(&a, "x+", &["x"]).minimize();
        assert_eq!(d1.num_states(), d2.num_states());
    }

    fn edge(a: &Alphabet, src: &str) -> (crate::nfa::Nfa, EdgeDfa) {
        let n = crate::nfa::Nfa::from_regex(&crate::parser::parse_regex(a, src).unwrap());
        let d = EdgeDfa::from_nfa(&n, 4096).unwrap();
        (n, d)
    }

    #[test]
    fn edge_dfa_matches_nfa_on_short_words() {
        let a = Alphabet::new();
        let names = ["x", "y", "z"];
        let syms: Vec<Letter> = names.iter().map(|n| a.intern(n).0).collect();
        // An extra letter none of the regexes mention: exercises the
        // default ("other") column.
        let foreign = a.intern("foreign").0;
        let mut letters = syms;
        letters.push(foreign);
        for src in ["(x|y)*/z", "x+/y?", "_/x/_*", "(x/y)+", "_*/z"] {
            let (n, d) = edge(&a, src);
            let mut words: Vec<Vec<Letter>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &words {
                    for &l in &letters {
                        let mut w2 = w.clone();
                        w2.push(l);
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            for w in &words {
                assert_eq!(d.accepts(w), n.accepts(w), "{src} on {w:?}");
            }
        }
    }

    #[test]
    fn edge_dfa_liveness_and_final_letters() {
        let a = Alphabet::new();
        let (_, d) = edge(&a, "x/y");
        let (x, y, z) = (a.intern("x").0, a.intern("y").0, a.intern("z").0);
        assert!(d.is_live(d.start()));
        let after_x = d.step(d.start(), x);
        assert!(d.is_live(after_x) && !d.is_accept(after_x));
        assert_eq!(d.step(d.start(), z), EDGE_DEAD);
        assert!(d.is_accept(d.step(after_x, y)));
        // Only `y` can end an accepted word.
        assert_eq!(d.final_letters(), &[y]);
        assert!(!d.other_final());
        // Wildcard endings flip `other_final`.
        let (_, dw) = edge(&a, "x/_");
        assert!(dw.other_final());
    }
}
