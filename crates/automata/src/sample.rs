//! Random sampling of words from a regular language.
//!
//! Used to materialize witness documents (e.g. the Figure 8 construction
//! needs “a word `w ∈ L(η) \ L(η')`” and “any word `w' ∈ L(η')`”) and to
//! drive randomized soundness testing of the independence criterion.

use std::collections::VecDeque;

use rand::Rng;

use crate::dfa::Dfa;
use crate::nfa::{Letter, Nfa, StateId};

/// A sampler over the language of an automaton.
///
/// Internally determinizes once, then walks the DFA guided by the
/// distance-to-acceptance of every state so that every walk terminates in an
/// accepting state.
#[derive(Clone, Debug)]
pub struct LangSampler {
    dfa: Dfa,
    /// `dist[s]` = length of the shortest word accepted from `s`
    /// (`u32::MAX` when none exists).
    dist: Vec<u32>,
}

impl LangSampler {
    /// Builds a sampler; `universe` widens the alphabet for wildcards.
    pub fn new(nfa: &Nfa, universe: &[Letter]) -> LangSampler {
        let dfa = Dfa::from_nfa(nfa, universe);
        let dist = distances_to_accept(&dfa);
        LangSampler { dfa, dist }
    }

    /// Builds a sampler directly from a DFA.
    pub fn from_dfa(dfa: Dfa) -> LangSampler {
        let dist = distances_to_accept(&dfa);
        LangSampler { dfa, dist }
    }

    /// Is the language empty?
    pub fn is_empty_language(&self) -> bool {
        self.dist[self.dfa.start() as usize] == u32::MAX
    }

    /// Samples a word, aiming for (but not guaranteeing) length near
    /// `target_len`. Returns `None` iff the language is empty.
    pub fn sample<R: Rng>(&self, rng: &mut R, target_len: usize) -> Option<Vec<Letter>> {
        if self.is_empty_language() {
            return None;
        }
        let letters = self.dfa.letters().to_vec();
        let mut word = Vec::new();
        let mut cur = self.dfa.start();
        loop {
            // Stop as soon as we are accepting and have met the length budget.
            if self.dfa.is_accept(cur) && word.len() >= target_len {
                return Some(word);
            }
            // Candidate moves keeping acceptance reachable.
            let mut viable: Vec<(Letter, StateId)> = Vec::new();
            for &l in &letters {
                if let Some(n) = self.dfa.step(cur, l) {
                    if self.dist[n as usize] != u32::MAX {
                        viable.push((l, n));
                    }
                }
            }
            if viable.is_empty() {
                // cur must already accept (dist == 0) — finish here.
                debug_assert!(self.dfa.is_accept(cur));
                return Some(word);
            }
            // When past budget, prefer moves that shrink distance-to-accept.
            let pick = if word.len() >= target_len {
                let best = viable
                    .iter()
                    .map(|&(_, n)| self.dist[n as usize])
                    .min()
                    .expect("viable nonempty");
                let best_moves: Vec<_> = viable
                    .iter()
                    .copied()
                    .filter(|&(_, n)| self.dist[n as usize] == best)
                    .collect();
                best_moves[rng.gen_range(0..best_moves.len())]
            } else {
                viable[rng.gen_range(0..viable.len())]
            };
            word.push(pick.0);
            cur = pick.1;
            // Hard safety bound.
            if word.len() > target_len.saturating_mul(4) + 64 {
                // Force-finish via shortest path to acceptance.
                while !self.dfa.is_accept(cur) {
                    let (l, n) = self
                        .shortest_move(cur)
                        .expect("distance map promised acceptance");
                    word.push(l);
                    cur = n;
                }
                return Some(word);
            }
        }
    }

    fn shortest_move(&self, s: StateId) -> Option<(Letter, StateId)> {
        let d = self.dist[s as usize];
        if d == 0 || d == u32::MAX {
            return None;
        }
        for &l in self.dfa.letters() {
            if let Some(n) = self.dfa.step(s, l) {
                if self.dist[n as usize] == d - 1 {
                    return Some((l, n));
                }
            }
        }
        None
    }
}

/// Backward BFS from accepting states over the transition graph.
fn distances_to_accept(dfa: &Dfa) -> Vec<u32> {
    let n = dfa.num_states();
    // Reverse adjacency.
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for s in 0..n as StateId {
        for &l in dfa.letters() {
            if let Some(t) = dfa.step(s, l) {
                rev[t as usize].push(s);
            }
        }
    }
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for s in 0..n as StateId {
        if dfa.is_accept(s) {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        let d = dist[s as usize];
        for &p in &rev[s as usize] {
            if dist[p as usize] == u32::MAX {
                dist[p as usize] = d + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Regex;
    use crate::parser::parse_regex;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use regtree_alphabet::Alphabet;

    fn sampler(a: &Alphabet, src: &str) -> (LangSampler, Nfa) {
        let r = parse_regex(a, src).unwrap();
        let n = Nfa::from_regex(&r);
        (LangSampler::new(&n, &[]), n)
    }

    #[test]
    fn samples_are_members() {
        let a = Alphabet::new();
        let mut rng = SmallRng::seed_from_u64(7);
        for src in ["(x|y)*/z", "x+/y?", "(a/b)+|c"] {
            let (s, n) = sampler(&a, src);
            for len in [0usize, 1, 3, 8, 20] {
                let w = s.sample(&mut rng, len).unwrap();
                assert!(n.accepts(&w), "sample {w:?} not in L({src})");
            }
        }
    }

    #[test]
    fn empty_language_yields_none() {
        let s = LangSampler::new(&Nfa::from_regex(&Regex::Empty), &[]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(s.is_empty_language());
        assert!(s.sample(&mut rng, 3).is_none());
    }

    #[test]
    fn respects_target_length_roughly() {
        let a = Alphabet::new();
        let (s, _) = sampler(&a, "x*");
        let mut rng = SmallRng::seed_from_u64(42);
        let w = s.sample(&mut rng, 50).unwrap();
        assert!(
            w.len() >= 10,
            "expected a reasonably long sample, got {}",
            w.len()
        );
    }

    #[test]
    fn fixed_length_language() {
        let a = Alphabet::new();
        let (s, n) = sampler(&a, "x/y/z");
        let mut rng = SmallRng::seed_from_u64(3);
        for target in [0usize, 1, 5, 100] {
            let w = s.sample(&mut rng, target).unwrap();
            assert_eq!(w.len(), 3);
            assert!(n.accepts(&w));
        }
    }
}
