//! Word-level regular expressions and finite automata for `regtree`.
//!
//! Regular tree templates (Definition 1 of Gire & Idabal 2010) label every
//! edge with a *proper* regular expression over the label alphabet; the
//! paper's size and complexity bounds are stated in terms of the word
//! automata `A_e` associated to those expressions. This crate provides:
//!
//! * [`Regex`] — the expression AST with smart constructors, properness
//!   checks and a Brzozowski-derivative reference matcher;
//! * [`parse_regex`] — the concrete `candidate/exam/discipline`-style syntax;
//! * [`Nfa`] / [`NfaBuilder`] — Thompson automata plus a direct builder used
//!   for hedge-automaton horizontal languages;
//! * [`Dfa`] — complete DFAs with product/complement/minimization/emptiness;
//! * [`inclusion`] — the PSPACE-hard regex inclusion problem (classical and
//!   antichain engines) behind the paper's Proposition 1;
//! * [`LangSampler`] — random members of a regular language, used to
//!   materialize witness documents (Figure 8).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod dfa;
pub mod inclusion;
pub mod nfa;
pub mod parser;
pub mod sample;

pub use ast::Regex;
pub use dfa::{Dfa, EdgeDfa, EDGE_DEAD};
pub use nfa::{Letter, Nfa, NfaBuilder, NfaLabel, StateId};
pub use parser::{parse_regex, ParseError};
pub use sample::LangSampler;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regtree_alphabet::{Alphabet, Symbol};

    /// Strategy producing arbitrary regexes over `k` letters.
    fn arb_regex(k: u32) -> impl Strategy<Value = Regex> {
        let leaf = prop_oneof![
            (0..k).prop_map(|i| Regex::Atom(Symbol(i + 2))), // skip reserved
            Just(Regex::AnyAtom),
            Just(Regex::Epsilon),
        ];
        leaf.prop_recursive(4, 24, 3, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::seq),
                prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
                inner.clone().prop_map(Regex::star),
                inner.clone().prop_map(Regex::plus),
                inner.prop_map(Regex::opt),
            ]
        })
    }

    fn arb_word(k: u32) -> impl Strategy<Value = Vec<Symbol>> {
        prop::collection::vec((0..k).prop_map(|i| Symbol(i + 2)), 0..6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// NFA, DFA and derivative matchers agree on membership.
        #[test]
        fn engines_agree(r in arb_regex(3), w in arb_word(3)) {
            let nfa = Nfa::from_regex(&r);
            let universe: Vec<Letter> = (2..5).collect();
            let dfa = Dfa::from_nfa(&nfa, &universe);
            let letters: Vec<Letter> = w.iter().map(|s| s.0).collect();
            let by_deriv = r.matches(&w);
            prop_assert_eq!(nfa.accepts(&letters), by_deriv);
            prop_assert_eq!(dfa.accepts(&letters), by_deriv);
        }

        /// Minimization preserves membership.
        #[test]
        fn minimize_preserves(r in arb_regex(3), w in arb_word(3)) {
            let universe: Vec<Letter> = (2..5).collect();
            let dfa = Dfa::from_nfa(&Nfa::from_regex(&r), &universe);
            let min = dfa.minimize();
            let letters: Vec<Letter> = w.iter().map(|s| s.0).collect();
            prop_assert_eq!(dfa.accepts(&letters), min.accepts(&letters));
        }

        /// Complement is an involution and flips membership.
        #[test]
        fn complement_laws(r in arb_regex(3), w in arb_word(3)) {
            let universe: Vec<Letter> = (2..5).collect();
            let dfa = Dfa::from_nfa(&Nfa::from_regex(&r), &universe);
            let letters: Vec<Letter> = w.iter().map(|s| s.0).collect();
            let comp = dfa.complement();
            prop_assert_eq!(dfa.accepts(&letters), !comp.accepts(&letters));
            prop_assert_eq!(comp.complement().accepts(&letters), dfa.accepts(&letters));
        }

        /// Product automata implement boolean language operations.
        #[test]
        fn product_laws(r1 in arb_regex(3), r2 in arb_regex(3), w in arb_word(3)) {
            let universe: Vec<Letter> = (2..5).collect();
            let d1 = Dfa::from_nfa(&Nfa::from_regex(&r1), &universe);
            let d2 = Dfa::from_nfa(&Nfa::from_regex(&r2), &universe);
            let letters: Vec<Letter> = w.iter().map(|s| s.0).collect();
            let (m1, m2) = (d1.accepts(&letters), d2.accepts(&letters));
            prop_assert_eq!(d1.intersect(&d2).accepts(&letters), m1 && m2);
            prop_assert_eq!(d1.union(&d2).accepts(&letters), m1 || m2);
            prop_assert_eq!(d1.difference(&d2).accepts(&letters), m1 && !m2);
        }

        /// Antichain and classical inclusion agree; witnesses are genuine.
        #[test]
        fn inclusion_engines_agree(r1 in arb_regex(2), r2 in arb_regex(2)) {
            let universe: Vec<Letter> = (2..4).collect();
            let n1 = Nfa::from_regex(&r1);
            let n2 = Nfa::from_regex(&r2);
            let anti = inclusion::nfa_included(&n1, &n2, &universe);
            let d1 = Dfa::from_nfa(&n1, &universe);
            let d2 = Dfa::from_nfa(&n2, &universe);
            let classic = inclusion::dfa_included(&d1, &d2);
            prop_assert_eq!(anti.is_ok(), classic.is_ok());
            if let Err(w) = anti {
                prop_assert!(n1.accepts(&w));
                prop_assert!(!n2.accepts(&w));
            }
        }

        /// Sampled words are language members.
        #[test]
        fn samples_are_members(r in arb_regex(3), seed in any::<u64>(), len in 0usize..12) {
            use rand::SeedableRng;
            let nfa = Nfa::from_regex(&r);
            let universe: Vec<Letter> = (2..5).collect();
            let sampler = LangSampler::new(&nfa, &universe);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            match sampler.sample(&mut rng, len) {
                Some(w) => prop_assert!(nfa.accepts(&w)),
                None => prop_assert!(nfa.is_empty_language()),
            }
        }

        /// `is_proper` is exactly “does not accept the empty word, and accepts
        /// something”.
        #[test]
        fn properness_semantics(r in arb_regex(3)) {
            let nfa = Nfa::from_regex(&r);
            let accepts_eps = nfa.accepts(&[]);
            let nonempty = !nfa.is_empty_language();
            prop_assert_eq!(r.is_proper(), !accepts_eps && nonempty);
        }

        /// Printing then reparsing preserves the language.
        #[test]
        fn display_reparse_preserves_language(r in arb_regex(3), w in arb_word(3)) {
            let a = Alphabet::with_labels(["l0", "l1", "l2"]);
            // Skip expressions that print ∅/ε literals (not part of the
            // concrete grammar).
            prop_assume!(!r.is_empty_language());
            fn mentions_eps(r: &Regex) -> bool {
                match r {
                    Regex::Epsilon | Regex::Empty => true,
                    Regex::Concat(p) | Regex::Union(p) => p.iter().any(mentions_eps),
                    Regex::Star(i) | Regex::Plus(i) | Regex::Opt(i) => mentions_eps(i),
                    _ => false,
                }
            }
            prop_assume!(!mentions_eps(&r));
            let printed = r.display(&a).to_string();
            let reparsed = parse_regex(&a, &printed).unwrap();
            prop_assert_eq!(r.matches(&w), reparsed.matches(&w), "printed: {}", printed);
        }
    }
}
