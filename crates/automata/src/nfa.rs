//! Nondeterministic finite word automata.
//!
//! Letters are plain `u32`s so that the same machinery serves both label
//! regexes (letters = [`regtree_alphabet::Symbol`] indices) and the
//! *horizontal* languages of hedge automata (letters = tree-automaton states).
//!
//! The size `|A_e|` of the automaton associated to an edge expression — the
//! quantity the paper's complexity bounds are stated in — is
//! [`Nfa::num_states`].

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::ast::Regex;

/// Automaton state identifier.
pub type StateId = u32;
/// Alphabet letter (symbol index or tree-automaton state).
pub type Letter = u32;

/// A transition guard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NfaLabel {
    /// Spontaneous move.
    Eps,
    /// Consume exactly this letter.
    Sym(Letter),
    /// Consume any single letter (wildcard).
    Any,
}

/// A nondeterministic finite automaton with ε-moves and wildcard transitions.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// `trans[s]` lists the outgoing transitions of state `s`.
    trans: Vec<Vec<(NfaLabel, StateId)>>,
    start: StateId,
    accept: Vec<bool>,
}

impl Nfa {
    /// Builds an NFA directly from its parts: `trans[s]` lists state `s`'s
    /// outgoing edges and `accept[s]` flags acceptance. Hot compilation
    /// paths use this with exact-capacity vectors; prefer [`NfaBuilder`]
    /// for incremental construction.
    pub fn from_parts(
        trans: Vec<Vec<(NfaLabel, StateId)>>,
        start: StateId,
        accept: Vec<bool>,
    ) -> Nfa {
        debug_assert_eq!(trans.len(), accept.len());
        debug_assert!((start as usize) < trans.len());
        debug_assert!(trans
            .iter()
            .flatten()
            .all(|&(_, t)| (t as usize) < trans.len()));
        Nfa {
            trans,
            start,
            accept,
        }
    }

    /// Number of states (the `|A|` size measure used throughout the paper).
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `s` is accepting.
    pub fn is_accept(&self, s: StateId) -> bool {
        self.accept[s as usize]
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.num_states() as StateId)
            .filter(|&s| self.accept[s as usize])
            .collect()
    }

    /// Outgoing transitions of `s`.
    pub fn transitions_from(&self, s: StateId) -> &[(NfaLabel, StateId)] {
        &self.trans[s as usize]
    }

    /// All distinct concrete letters mentioned on transitions.
    pub fn used_letters(&self) -> Vec<Letter> {
        let mut out: BTreeSet<Letter> = BTreeSet::new();
        for ts in &self.trans {
            for (l, _) in ts {
                if let NfaLabel::Sym(x) = l {
                    out.insert(*x);
                }
            }
        }
        out.into_iter().collect()
    }

    /// True when some transition carries the wildcard guard.
    pub fn uses_wildcard(&self) -> bool {
        self.trans
            .iter()
            .any(|ts| ts.iter().any(|(l, _)| matches!(l, NfaLabel::Any)))
    }

    /// Rebuilds the automaton with every concrete letter `x` replaced by
    /// `f(x)` (ε and wildcard guards unchanged). Used to re-index horizontal
    /// languages when hedge automata are combined.
    pub fn map_letters(&self, f: impl Fn(Letter) -> Letter) -> Nfa {
        let trans = self
            .trans
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|&(l, t)| {
                        let l2 = match l {
                            NfaLabel::Sym(x) => NfaLabel::Sym(f(x)),
                            other => other,
                        };
                        (l2, t)
                    })
                    .collect()
            })
            .collect();
        Nfa {
            trans,
            start: self.start,
            accept: self.accept.clone(),
        }
    }

    /// Rebuilds the automaton with every wildcard transition expanded into
    /// one concrete transition per letter of `letters`. After expansion the
    /// automaton only fires on letters it names explicitly — required when
    /// embedding a horizontal language into a larger letter space (hedge
    /// union) where the wildcard would otherwise match foreign letters.
    pub fn expand_any(&self, letters: &[Letter]) -> Nfa {
        let trans = self
            .trans
            .iter()
            .map(|ts| {
                let mut out = Vec::with_capacity(ts.len());
                for &(l, t) in ts {
                    match l {
                        NfaLabel::Any => {
                            for &x in letters {
                                out.push((NfaLabel::Sym(x), t));
                            }
                        }
                        other => out.push((other, t)),
                    }
                }
                out
            })
            .collect();
        Nfa {
            trans,
            start: self.start,
            accept: self.accept.clone(),
        }
    }

    /// Compiles a regular expression with the classical Thompson construction.
    pub fn from_regex(regex: &Regex) -> Nfa {
        let mut b = NfaBuilder::new();
        let start = b.add_state();
        let end = b.add_state();
        b.compile(regex, start, end);
        b.set_start(start);
        b.set_accept(end);
        b.finish()
    }

    /// ε-closure of a sorted state set (result sorted, deduplicated).
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &(l, t) in &self.trans[s as usize] {
                if matches!(l, NfaLabel::Eps) && !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| i as StateId)
            .collect()
    }

    /// One consuming step from a *closed* state set; result is closed again.
    pub fn step(&self, closed: &[StateId], letter: Letter) -> Vec<StateId> {
        let mut next: Vec<StateId> = Vec::new();
        for &s in closed {
            for &(l, t) in &self.trans[s as usize] {
                let fires = match l {
                    NfaLabel::Eps => false,
                    NfaLabel::Sym(x) => x == letter,
                    NfaLabel::Any => true,
                };
                if fires {
                    next.push(t);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        self.eps_closure(&next)
    }

    /// One step where the consumed letter may be *any* of `letters`
    /// (used to run horizontal languages over sets of tree states).
    pub fn step_multi(&self, closed: &[StateId], letters: &[Letter]) -> Vec<StateId> {
        let mut next: Vec<StateId> = Vec::new();
        for &s in closed {
            for &(l, t) in &self.trans[s as usize] {
                let fires = match l {
                    NfaLabel::Eps => false,
                    NfaLabel::Sym(x) => letters.contains(&x),
                    NfaLabel::Any => !letters.is_empty(),
                };
                if fires {
                    next.push(t);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        self.eps_closure(&next)
    }

    /// The closed initial state set.
    pub fn initial_set(&self) -> Vec<StateId> {
        self.eps_closure(&[self.start])
    }

    /// Does any state of `set` accept?
    pub fn set_accepts(&self, set: &[StateId]) -> bool {
        set.iter().any(|&s| self.accept[s as usize])
    }

    /// Word membership by on-the-fly subset simulation.
    pub fn accepts(&self, word: &[Letter]) -> bool {
        let mut cur = self.initial_set();
        for &l in word {
            if cur.is_empty() {
                return false;
            }
            cur = self.step(&cur, l);
        }
        self.set_accepts(&cur)
    }

    /// Is the recognized language empty?
    pub fn is_empty_language(&self) -> bool {
        self.shortest_accepted(&[]).is_none()
    }

    /// Shortest word accepted using only letters from `allowed`
    /// (wildcard transitions may fire on any allowed letter).
    ///
    /// This is the “restricted emptiness” primitive of hedge-automaton
    /// emptiness checking: can a horizontal language be satisfied using only
    /// the tree states already known to be realizable?
    pub fn shortest_accepted_over(&self, allowed: &[Letter]) -> Option<Vec<Letter>> {
        let init = self.initial_set();
        if self.set_accepts(&init) {
            return Some(Vec::new());
        }
        let mut seen: HashMap<Vec<StateId>, ()> = HashMap::new();
        let mut queue: VecDeque<(Vec<StateId>, Vec<Letter>)> = VecDeque::new();
        seen.insert(init.clone(), ());
        queue.push_back((init, Vec::new()));
        while let Some((set, word)) = queue.pop_front() {
            for &l in allowed {
                let next = self.step(&set, l);
                if next.is_empty() {
                    continue;
                }
                let mut w2 = word.clone();
                w2.push(l);
                if self.set_accepts(&next) {
                    return Some(w2);
                }
                if !seen.contains_key(&next) {
                    seen.insert(next.clone(), ());
                    queue.push_back((next, w2));
                }
            }
        }
        None
    }

    /// Shortest accepted word, if any, by BFS over the subset graph.
    ///
    /// `extra_letters` widens the exploration alphabet beyond the letters the
    /// automaton mentions (needed when wildcard transitions should be
    /// witnessed by letters the automaton itself never names).
    pub fn shortest_accepted(&self, extra_letters: &[Letter]) -> Option<Vec<Letter>> {
        let mut letters = self.used_letters();
        for &l in extra_letters {
            if !letters.contains(&l) {
                letters.push(l);
            }
        }
        if self.uses_wildcard() && letters.is_empty() {
            // A wildcard needs *some* concrete witness letter.
            letters.push(0);
        }
        let init = self.initial_set();
        if self.set_accepts(&init) {
            return Some(Vec::new());
        }
        let mut seen: HashMap<Vec<StateId>, ()> = HashMap::new();
        let mut queue: VecDeque<(Vec<StateId>, Vec<Letter>)> = VecDeque::new();
        seen.insert(init.clone(), ());
        queue.push_back((init, Vec::new()));
        while let Some((set, word)) = queue.pop_front() {
            for &l in &letters {
                let next = self.step(&set, l);
                if next.is_empty() {
                    continue;
                }
                let mut w2 = word.clone();
                w2.push(l);
                if self.set_accepts(&next) {
                    return Some(w2);
                }
                if !seen.contains_key(&next) {
                    seen.insert(next.clone(), ());
                    queue.push_back((next, w2));
                }
            }
        }
        None
    }
}

/// Incremental construction of an [`Nfa`].
///
/// Used directly by the hedge-automaton and pattern-compilation code, whose
/// horizontal languages are assembled state-by-state rather than via regexes.
#[derive(Clone, Debug, Default)]
pub struct NfaBuilder {
    trans: Vec<Vec<(NfaLabel, StateId)>>,
    start: StateId,
    accept: Vec<StateId>,
}

impl NfaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.trans.len() as StateId;
        self.trans.push(Vec::new());
        id
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: StateId, label: NfaLabel, to: StateId) {
        self.trans[from as usize].push((label, to));
    }

    /// Declares the start state.
    pub fn set_start(&mut self, s: StateId) {
        self.start = s;
    }

    /// Declares an accepting state.
    pub fn set_accept(&mut self, s: StateId) {
        self.accept.push(s);
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Compiles `regex` as a fragment between two existing states.
    pub fn compile(&mut self, regex: &Regex, from: StateId, to: StateId) {
        match regex {
            Regex::Empty => {}
            Regex::Epsilon => self.add_transition(from, NfaLabel::Eps, to),
            Regex::Atom(s) => self.add_transition(from, NfaLabel::Sym(s.0), to),
            Regex::AnyAtom => self.add_transition(from, NfaLabel::Any, to),
            Regex::Concat(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.add_state()
                    };
                    self.compile(p, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.add_transition(from, NfaLabel::Eps, to);
                }
            }
            Regex::Union(parts) => {
                for p in parts {
                    self.compile(p, from, to);
                }
            }
            Regex::Star(inner) => {
                let hub = self.add_state();
                self.add_transition(from, NfaLabel::Eps, hub);
                self.compile(inner, hub, hub);
                self.add_transition(hub, NfaLabel::Eps, to);
            }
            Regex::Plus(inner) => {
                let hub = self.add_state();
                self.compile(inner, from, hub);
                self.compile(inner, hub, hub);
                self.add_transition(hub, NfaLabel::Eps, to);
            }
            Regex::Opt(inner) => {
                self.add_transition(from, NfaLabel::Eps, to);
                self.compile(inner, from, to);
            }
        }
    }

    /// Finalizes the automaton.
    pub fn finish(self) -> Nfa {
        let mut accept = vec![false; self.trans.len()];
        for s in self.accept {
            accept[s as usize] = true;
        }
        Nfa {
            trans: self.trans,
            start: self.start,
            accept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use regtree_alphabet::Alphabet;

    fn word(a: &Alphabet, names: &[&str]) -> Vec<Letter> {
        names.iter().map(|n| a.intern(n).0).collect()
    }

    fn nfa(a: &Alphabet, src: &str) -> Nfa {
        Nfa::from_regex(&parse_regex(a, src).unwrap())
    }

    #[test]
    fn thompson_basic_membership() {
        let a = Alphabet::new();
        let m = nfa(&a, "(x|y)*/z");
        assert!(m.accepts(&word(&a, &["z"])));
        assert!(m.accepts(&word(&a, &["x", "y", "x", "z"])));
        assert!(!m.accepts(&word(&a, &["x", "y"])));
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn plus_requires_one() {
        let a = Alphabet::new();
        let m = nfa(&a, "x+");
        assert!(!m.accepts(&[]));
        assert!(m.accepts(&word(&a, &["x"])));
        assert!(m.accepts(&word(&a, &["x", "x", "x"])));
        assert!(!m.accepts(&word(&a, &["y"])));
    }

    #[test]
    fn wildcard_transitions() {
        let a = Alphabet::new();
        let m = nfa(&a, "_*/end");
        assert!(m.accepts(&word(&a, &["anything", "end"])));
        assert!(m.uses_wildcard());
        assert!(!m.accepts(&word(&a, &["end", "more"])));
    }

    #[test]
    fn empty_language() {
        let m = Nfa::from_regex(&Regex::Empty);
        assert!(m.is_empty_language());
        let a = Alphabet::new();
        let m2 = nfa(&a, "x");
        assert!(!m2.is_empty_language());
    }

    #[test]
    fn shortest_accepted_is_minimal() {
        let a = Alphabet::new();
        let m = nfa(&a, "x/x/x | y");
        let w = m.shortest_accepted(&[]).unwrap();
        assert_eq!(w, word(&a, &["y"]));
        let m2 = nfa(&a, "x/y/z");
        assert_eq!(
            m2.shortest_accepted(&[]).unwrap(),
            word(&a, &["x", "y", "z"])
        );
    }

    #[test]
    fn shortest_accepted_with_wildcard_only() {
        let a = Alphabet::new();
        let _ = a; // wildcard regex mentions no letters at all
        let m = Nfa::from_regex(&Regex::AnyAtom);
        let w = m.shortest_accepted(&[]).unwrap();
        assert_eq!(w.len(), 1);
        let w2 = m.shortest_accepted(&[42]).unwrap();
        assert_eq!(w2.len(), 1);
    }

    #[test]
    fn agreement_with_derivative_matcher() {
        let a = Alphabet::new();
        let srcs = ["(x|y)*/z", "x+/y?", "_/x/_*", "(a/b)*|c+"];
        let names = ["x", "y", "z", "a", "b", "c"];
        for src in srcs {
            let r = parse_regex(&a, src).unwrap();
            let m = Nfa::from_regex(&r);
            // Exhaustively check all words of length <= 3 over the 6 names.
            let syms: Vec<_> = names.iter().map(|n| a.intern(n)).collect();
            let mut words: Vec<Vec<regtree_alphabet::Symbol>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &words {
                    for &s in &syms {
                        let mut w2 = w.clone();
                        w2.push(s);
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            for w in &words {
                let letters: Vec<Letter> = w.iter().map(|s| s.0).collect();
                assert_eq!(
                    m.accepts(&letters),
                    r.matches(w),
                    "disagreement on {src} for {w:?}"
                );
            }
        }
    }

    #[test]
    fn step_multi_unions_alternative_letters() {
        let a = Alphabet::new();
        let m = nfa(&a, "(x|y)/z");
        let init = m.initial_set();
        let x = a.intern("x").0;
        let y = a.intern("y").0;
        let z = a.intern("z").0;
        // Either x or y advances; both at once advance too.
        let after = m.step_multi(&init, &[x, y]);
        assert!(!after.is_empty());
        let done = m.step_multi(&after, &[z]);
        assert!(m.set_accepts(&done));
        // A letter set with no applicable letter yields the empty set.
        assert!(m.step_multi(&init, &[z]).is_empty());
        assert!(m.step_multi(&init, &[]).is_empty());
    }

    #[test]
    fn shortest_accepted_over_restricts_letters() {
        let a = Alphabet::new();
        let m = nfa(&a, "x/y | z");
        let (x, y, z) = (a.intern("x").0, a.intern("y").0, a.intern("z").0);
        // Full alphabet: shortest is "z".
        assert_eq!(m.shortest_accepted_over(&[x, y, z]).unwrap(), vec![z]);
        // Without z: must take the longer x/y route.
        assert_eq!(m.shortest_accepted_over(&[x, y]).unwrap(), vec![x, y]);
        // z alone still works; x alone accepts nothing.
        assert_eq!(m.shortest_accepted_over(&[x, z]), Some(vec![z]));
        assert_eq!(m.shortest_accepted_over(&[x]), None);
    }

    #[test]
    fn map_letters_renames_consistently() {
        let a = Alphabet::new();
        let m = nfa(&a, "x/y");
        let (x, y) = (a.intern("x").0, a.intern("y").0);
        let shifted = m.map_letters(|l| l + 100);
        assert!(shifted.accepts(&[x + 100, y + 100]));
        assert!(!shifted.accepts(&[x, y]));
        assert_eq!(shifted.num_states(), m.num_states());
    }

    #[test]
    fn expand_any_confines_wildcards() {
        let a = Alphabet::new();
        let m = nfa(&a, "_/end");
        let end = a.intern("end").0;
        let allowed = vec![7u32, 8];
        let e = m.expand_any(&allowed);
        assert!(!e.uses_wildcard());
        assert!(e.accepts(&[7, end]));
        assert!(e.accepts(&[8, end]));
        // Letters outside the expansion no longer match the wildcard.
        assert!(!e.accepts(&[9, end]));
        assert!(m.accepts(&[9, end]), "original still matches anything");
    }

    #[test]
    fn builder_manual_automaton() {
        // Accepts exactly the two-letter word (7, 9).
        let mut b = NfaBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.add_transition(s0, NfaLabel::Sym(7), s1);
        b.add_transition(s1, NfaLabel::Sym(9), s2);
        b.set_start(s0);
        b.set_accept(s2);
        let m = b.finish();
        assert!(m.accepts(&[7, 9]));
        assert!(!m.accepts(&[7]));
        assert!(!m.accepts(&[9, 7]));
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.used_letters(), vec![7, 9]);
    }
}
