use regtree_core::api::Json;

fn esc(hex: &str) -> String {
    format!("{}u{}", '\x5c', hex)
}

#[test]
fn high_surrogate_with_non_low_second_escape() {
    // "<bs>uD800<bs>u0041" — second escape is not a low surrogate;
    // invalid JSON, must return Err without panicking.
    let src = format!("\"{}{}\"", esc("D800"), esc("0041"));
    let r = Json::parse(&src);
    assert!(r.is_err(), "src={src} got: {r:?}");
}

#[test]
fn high_surrogate_with_e000_second_escape() {
    // "<bs>uD800<bs>uE000" — second unit above the low-surrogate range.
    let src = format!("\"{}{}\"", esc("D800"), esc("E000"));
    let r = Json::parse(&src);
    assert!(r.is_err(), "src={src} got: {r:?}");
}

#[test]
fn high_surrogate_pair_of_two_highs() {
    // "<bs>uD800<bs>uD800" — second unit is another HIGH surrogate.
    let src = format!("\"{}{}\"", esc("D800"), esc("D800"));
    let r = Json::parse(&src);
    assert!(r.is_err(), "src={src} got: {r:?}");
}
