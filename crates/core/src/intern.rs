//! Sharded interner of per-pair cell outcomes for the matrix drivers.
//!
//! [`crate::Analyzer`]'s pattern cache already dedups identical FDs and
//! update classes to the *same* `Arc<PatternAutomaton>`, so a matrix over a
//! redundant FD set presents the same `(row automaton, column automaton)`
//! pair to many cells. The interner keys realized cell outcomes by the Arc
//! pointer identities of that pair: the first worker to claim a pair runs
//! the engine, every later worker (on any thread) blocks on the same
//! [`OnceLock`] and reuses the finished analysis instead of re-exploring
//! the identical product. Reuse is sound because the inputs *and* the
//! per-cell limits are identical — even an exhausted `Unknown` would only
//! be recomputed into the same exhausted `Unknown`.
//!
//! The map is sharded by a cheap pointer hash so concurrent matrix workers
//! rarely contend on the same mutex.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::independence::IndependenceAnalysis;

/// The outcome of the first engine run for a `(row, column)` automaton pair.
pub(crate) struct CellEntry {
    /// FD index (row) of the cell that actually ran the engine.
    pub fd: usize,
    /// Its full analysis, cloned into every reusing cell.
    pub analysis: IndependenceAnalysis,
}

const N_SHARDS: usize = 8;

/// One shard: pair identity → lazily realized cell outcome.
type Shard = Mutex<HashMap<(usize, usize), Arc<OnceLock<CellEntry>>>>;

/// Sharded `(row ptr, column ptr) → OnceLock<CellEntry>` table shared by the
/// matrix worker threads of one matrix call.
#[derive(Default)]
pub(crate) struct CellInterner {
    shards: [Shard; N_SHARDS],
}

impl CellInterner {
    pub fn new() -> CellInterner {
        CellInterner::default()
    }

    /// The (created-on-first-use) slot for a pair of automaton identities.
    /// Callers race on `slot.get_or_init(..)`: exactly one runs the engine.
    pub fn slot(&self, key: (usize, usize)) -> Arc<OnceLock<CellEntry>> {
        // Pointer values are word-aligned: shift out the dead low bits
        // before folding, so consecutive allocations spread across shards.
        let h = (key.0 >> 4) ^ (key.1 >> 4).rotate_left(17);
        let mut shard = self.shards[h % N_SHARDS]
            .lock()
            .expect("interner shard poisoned");
        shard.entry(key).or_default().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_yields_same_slot() {
        let interner = CellInterner::new();
        let a = interner.slot((0x1000, 0x2000));
        let b = interner.slot((0x1000, 0x2000));
        assert!(Arc::ptr_eq(&a, &b));
        let c = interner.slot((0x1000, 0x3000));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn first_initializer_wins() {
        let interner = CellInterner::new();
        let slot = interner.slot((8, 16));
        let first = slot.get_or_init(|| CellEntry {
            fd: 3,
            analysis: crate::independence::IndependenceAnalysis {
                verdict: crate::independence::Verdict::Independent,
                ic_states: 0,
                automaton_size: 0,
                explored_states: 0,
                total_states: 0,
                metrics: Default::default(),
            },
        });
        assert_eq!(first.fd, 3);
        let again = interner.slot((8, 16));
        let reused = again.get_or_init(|| unreachable!("already initialized"));
        assert_eq!(reused.fd, 3);
    }
}
