//! Update classes and concrete updates (paper Section 4).
//!
//! An update `q = u ∘ U` composes a *node-selecting* application `U` — a
//! regular tree pattern returning the nodes to be updated — with an
//! arbitrary function `u` replacing the subtree rooted at each selected
//! node. Two updates belong to the same class iff they share `U`; the
//! independence analysis only looks at the class, never at `u`.
//!
//! For executing updates (examples, benchmarks, randomized soundness tests)
//! a small vocabulary of concrete `u`s is provided, including the paper's
//! `q1` (“decrease the level to the level just below”) via [`UpdateOp::MapText`].

use std::fmt;
use std::sync::Arc;

use regtree_pattern::{RegularTreePattern, Template, TemplateNodeId};
use regtree_xml::{edit, Document, NodeId, TreeSpec, UndoJournal, VersionedDocument};

/// A class of updates `U = (T_U, s̄_U)`.
#[derive(Clone, Debug)]
pub struct UpdateClass {
    pattern: RegularTreePattern,
}

/// Error raised constructing an update class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateClassError {
    /// The independence criterion requires updated nodes to be leaves of the
    /// update template (Section 5 restriction).
    SelectedNotLeaf(TemplateNodeId),
}

impl fmt::Display for UpdateClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateClassError::SelectedNotLeaf(n) => write!(
                f,
                "updated node n{} must be a leaf of the update template",
                n.0
            ),
        }
    }
}

impl std::error::Error for UpdateClassError {}

impl UpdateClass {
    /// Creates an update class, enforcing the paper's restriction that every
    /// selected (updated) node is a leaf of `T_U`.
    pub fn new(pattern: RegularTreePattern) -> Result<UpdateClass, UpdateClassError> {
        for &s in pattern.selected() {
            if !pattern.template().is_leaf(s) {
                return Err(UpdateClassError::SelectedNotLeaf(s));
            }
        }
        Ok(UpdateClass { pattern })
    }

    /// The selecting pattern `U`.
    pub fn pattern(&self) -> &RegularTreePattern {
        &self.pattern
    }

    /// The template `T_U`.
    pub fn template(&self) -> &Template {
        self.pattern.template()
    }

    /// The size `|U|` used in the paper's complexity bounds.
    pub fn size(&self) -> usize {
        self.pattern.size()
    }

    /// The set of nodes this class would update on `doc` (deduplicated,
    /// document order).
    pub fn selected_nodes(&self, doc: &Document) -> Vec<NodeId> {
        let mut keyed: Vec<(Vec<u32>, NodeId)> = self
            .pattern
            .evaluate(doc)
            .into_iter()
            .flatten()
            .map(|n| (doc.dewey(n), n))
            .collect();
        keyed.sort();
        keyed.dedup_by(|a, b| a.1 == b.1);
        keyed.into_iter().map(|(_, n)| n).collect()
    }
}

/// Shared, thread-safe closure performing arbitrary document surgery.
pub type CustomOp = Arc<dyn Fn(&mut Document, NodeId) + Send + Sync>;

/// A concrete update function `u`, applied to each selected node.
///
/// **Label preservation.** The independence criterion's soundness
/// (Proposition 2, case b) relies on the updated node remaining part of the
/// update trace after the update: the replacement keeps the selected node's
/// *label* and replaces its content. [`UpdateOp::Replace`] therefore rejects
/// specs whose root label differs from the updated node's; [`UpdateOp::Custom`]
/// functions must uphold the same contract for independence verdicts to
/// apply to them. Deleting the whole node is allowed ([`UpdateOp::Delete`]):
/// removals only destroy traces and can never introduce a violation.
#[derive(Clone)]
pub enum UpdateOp {
    /// Replace the subtree with a fresh one carrying the *same root label*
    /// (the paper's primitive).
    Replace(TreeSpec),
    /// Append a child subtree (modeled in the paper as replacing the node by
    /// an extended copy of itself).
    AppendChild(TreeSpec),
    /// Prepend a child subtree.
    PrependChild(TreeSpec),
    /// Delete the subtree (modeled as updating the parent).
    Delete,
    /// Overwrite the node's string value (attribute/text leaves), or the
    /// value of every text child for element nodes.
    SetText(String),
    /// Rewrite string values through a function — e.g. the paper's `q1`
    /// decreasing a candidate's level `'B' → 'C'`.
    MapText(Arc<dyn Fn(&str) -> String + Send + Sync>),
    /// Arbitrary document surgery rooted at the node.
    Custom(CustomOp),
    /// Applies the inner op to the *first* selected node (document order)
    /// only — the canonical way to build asymmetric updates, which are what
    /// actually break FDs (two traces must *disagree* after the update).
    FirstOnly(Box<UpdateOp>),
}

impl fmt::Debug for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateOp::Replace(s) => f.debug_tuple("Replace").field(s).finish(),
            UpdateOp::AppendChild(s) => f.debug_tuple("AppendChild").field(s).finish(),
            UpdateOp::PrependChild(s) => f.debug_tuple("PrependChild").field(s).finish(),
            UpdateOp::Delete => write!(f, "Delete"),
            UpdateOp::SetText(v) => f.debug_tuple("SetText").field(v).finish(),
            UpdateOp::MapText(_) => write!(f, "MapText(<fn>)"),
            UpdateOp::Custom(_) => write!(f, "Custom(<fn>)"),
            UpdateOp::FirstOnly(inner) => f.debug_tuple("FirstOnly").field(inner).finish(),
        }
    }
}

/// An executable update `q = u ∘ U`.
#[derive(Clone, Debug)]
pub struct Update {
    /// The node-selecting class.
    pub class: UpdateClass,
    /// The concrete update function.
    pub op: UpdateOp,
}

/// Error raised while applying an update.
#[derive(Debug)]
pub enum ApplyError {
    /// An underlying edit failed.
    Edit(edit::EditError),
    /// A replacement changed the updated node's label (see [`UpdateOp`]).
    LabelChanged {
        /// The label of the node being updated.
        expected: String,
        /// The root label of the replacement spec.
        got: String,
    },
    /// A [`UpdateOp::Custom`] op reached [`Update::apply_journaled`]:
    /// arbitrary surgery cannot be journaled for rollback. Callers gate on
    /// [`Update::has_custom_op`] and fall back to [`Update::apply_cloned`].
    NotJournalable,
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Edit(e) => write!(f, "update application failed: {e}"),
            ApplyError::LabelChanged { expected, got } => write!(
                f,
                "replacement must keep the updated node's label '{expected}', got '{got}' \
                 (independence soundness requires label-preserving updates)"
            ),
            ApplyError::NotJournalable => {
                write!(f, "custom update ops cannot be applied through a journal")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<edit::EditError> for ApplyError {
    fn from(e: edit::EditError) -> Self {
        ApplyError::Edit(e)
    }
}

impl Update {
    /// Creates an update.
    pub fn new(class: UpdateClass, op: UpdateOp) -> Update {
        Update { class, op }
    }

    /// Applies the update in place; returns the nodes that were updated.
    ///
    /// Selected nodes are processed in document order; nodes detached by an
    /// earlier replacement (nested selections) are skipped — the outermost
    /// replacement wins, matching the subtree-replacement semantics.
    pub fn apply(&self, doc: &mut Document) -> Result<Vec<NodeId>, ApplyError> {
        let targets = self.class.selected_nodes(doc);
        let mut touched = Vec::new();
        let (op, only_first) = match &self.op {
            UpdateOp::FirstOnly(inner) => (inner.as_ref(), true),
            other => (other, false),
        };
        for n in targets {
            if !doc.is_alive(n) {
                continue;
            }
            apply_at(op, doc, n)?;
            touched.push(n);
            if only_first {
                break;
            }
        }
        Ok(touched)
    }
}

fn apply_at(op: &UpdateOp, doc: &mut Document, n: NodeId) -> Result<(), ApplyError> {
    match op {
        UpdateOp::Replace(spec) => {
            if spec.label != doc.label(n) {
                return Err(ApplyError::LabelChanged {
                    expected: doc.label_name(n).to_string(),
                    got: doc.alphabet().name(spec.label).to_string(),
                });
            }
            edit::replace_subtree(doc, n, spec)?;
        }
        UpdateOp::AppendChild(spec) => {
            edit::insert_child(doc, n, doc.children(n).len(), spec)?;
        }
        UpdateOp::PrependChild(spec) => {
            edit::insert_child(doc, n, 0, spec)?;
        }
        UpdateOp::Delete => {
            edit::delete_subtree(doc, n)?;
        }
        UpdateOp::SetText(v) => {
            set_text(doc, n, |_| v.clone())?;
        }
        UpdateOp::MapText(f) => {
            let f = f.clone();
            set_text(doc, n, move |old| f(old))?;
        }
        UpdateOp::Custom(f) => {
            f(doc, n);
        }
        // Nested FirstOnly degenerates to its inner op per node.
        UpdateOp::FirstOnly(inner) => {
            apply_at(inner, doc, n)?;
        }
    }
    Ok(())
}

impl Update {
    /// Applies on a clone, leaving `doc` untouched.
    pub fn apply_cloned(&self, doc: &Document) -> Result<Document, ApplyError> {
        let mut copy = doc.clone();
        self.apply(&mut copy)?;
        Ok(copy)
    }

    /// Does this update run arbitrary surgery ([`UpdateOp::Custom`])?
    ///
    /// Custom ops cannot be journaled for rollback and force opaque deltas
    /// on the versioned path.
    pub fn has_custom_op(&self) -> bool {
        fn is_custom(op: &UpdateOp) -> bool {
            match op {
                UpdateOp::Custom(_) => true,
                UpdateOp::FirstOnly(inner) => is_custom(inner),
                _ => false,
            }
        }
        is_custom(&self.op)
    }

    /// [`Update::apply`] against a [`VersionedDocument`]: every edit goes
    /// through the delta methods, so the label index is patched in place
    /// and the accumulated [`regtree_xml::Delta`] records exactly what
    /// changed. [`UpdateOp::Custom`] ops run under
    /// [`VersionedDocument::apply_opaque`] (index rebuild, opaque delta).
    ///
    /// Selection and skip semantics are identical to [`Update::apply`].
    pub fn apply_versioned(&self, v: &mut VersionedDocument) -> Result<Vec<NodeId>, ApplyError> {
        let targets = self.class.selected_nodes(v.doc());
        let mut touched = Vec::new();
        let (op, only_first) = match &self.op {
            UpdateOp::FirstOnly(inner) => (inner.as_ref(), true),
            other => (other, false),
        };
        for n in targets {
            if !v.doc().is_alive(n) {
                continue;
            }
            apply_at_versioned(op, v, n)?;
            touched.push(n);
            if only_first {
                break;
            }
        }
        Ok(touched)
    }

    /// [`Update::apply`] through an [`UndoJournal`]: the edits mutate `doc`
    /// in place while the journal snapshots exactly the touched arena
    /// slots, so [`UndoJournal::rollback`] restores the pre-image without a
    /// clone. Fails with [`ApplyError::NotJournalable`] on
    /// [`UpdateOp::Custom`] (gate on [`Update::has_custom_op`]); the
    /// journal still undoes any edits applied before the failure.
    pub fn apply_journaled(
        &self,
        doc: &mut Document,
        journal: &mut UndoJournal,
    ) -> Result<Vec<NodeId>, ApplyError> {
        let targets = self.class.selected_nodes(doc);
        let mut touched = Vec::new();
        let (op, only_first) = match &self.op {
            UpdateOp::FirstOnly(inner) => (inner.as_ref(), true),
            other => (other, false),
        };
        for n in targets {
            if !doc.is_alive(n) {
                continue;
            }
            apply_at_journaled(op, doc, journal, n)?;
            touched.push(n);
            if only_first {
                break;
            }
        }
        Ok(touched)
    }
}

fn apply_at_versioned(
    op: &UpdateOp,
    v: &mut VersionedDocument,
    n: NodeId,
) -> Result<(), ApplyError> {
    match op {
        UpdateOp::Replace(spec) => {
            if spec.label != v.doc().label(n) {
                return Err(ApplyError::LabelChanged {
                    expected: v.doc().label_name(n).to_string(),
                    got: v.doc().alphabet().name(spec.label).to_string(),
                });
            }
            v.replace_subtree(n, spec)?;
        }
        UpdateOp::AppendChild(spec) => {
            v.append_child(n, spec)?;
        }
        UpdateOp::PrependChild(spec) => {
            v.insert_child(n, 0, spec)?;
        }
        UpdateOp::Delete => {
            v.delete_subtree(n)?;
        }
        UpdateOp::SetText(val) => {
            set_text_versioned(v, n, |_| val.clone())?;
        }
        UpdateOp::MapText(f) => {
            let f = f.clone();
            set_text_versioned(v, n, move |old| f(old))?;
        }
        UpdateOp::Custom(f) => {
            let f = f.clone();
            v.apply_opaque(|doc| f(doc, n));
        }
        UpdateOp::FirstOnly(inner) => {
            apply_at_versioned(inner, v, n)?;
        }
    }
    Ok(())
}

fn set_text_versioned(
    v: &mut VersionedDocument,
    n: NodeId,
    f: impl Fn(&str) -> String,
) -> Result<(), edit::EditError> {
    use regtree_alphabet::LabelKind;
    match v.doc().kind(n) {
        LabelKind::Attribute | LabelKind::Text => {
            let new = f(v.doc().value(n).unwrap_or(""));
            v.set_value(n, &new)
        }
        LabelKind::Element => {
            let text_children: Vec<NodeId> = v
                .doc()
                .children(n)
                .iter()
                .copied()
                .filter(|&c| v.doc().kind(c) == LabelKind::Text)
                .collect();
            for c in text_children {
                let new = f(v.doc().value(c).unwrap_or(""));
                v.set_value(c, &new)?;
            }
            Ok(())
        }
    }
}

fn apply_at_journaled(
    op: &UpdateOp,
    doc: &mut Document,
    journal: &mut UndoJournal,
    n: NodeId,
) -> Result<(), ApplyError> {
    match op {
        UpdateOp::Replace(spec) => {
            if spec.label != doc.label(n) {
                return Err(ApplyError::LabelChanged {
                    expected: doc.label_name(n).to_string(),
                    got: doc.alphabet().name(spec.label).to_string(),
                });
            }
            journal.replace_subtree(doc, n, spec)?;
        }
        UpdateOp::AppendChild(spec) => {
            journal.insert_child(doc, n, doc.children(n).len(), spec)?;
        }
        UpdateOp::PrependChild(spec) => {
            journal.insert_child(doc, n, 0, spec)?;
        }
        UpdateOp::Delete => {
            journal.delete_subtree(doc, n)?;
        }
        UpdateOp::SetText(v) => {
            set_text_journaled(doc, journal, n, |_| v.clone())?;
        }
        UpdateOp::MapText(f) => {
            let f = f.clone();
            set_text_journaled(doc, journal, n, move |old| f(old))?;
        }
        UpdateOp::Custom(_) => {
            return Err(ApplyError::NotJournalable);
        }
        UpdateOp::FirstOnly(inner) => {
            apply_at_journaled(inner, doc, journal, n)?;
        }
    }
    Ok(())
}

fn set_text_journaled(
    doc: &mut Document,
    journal: &mut UndoJournal,
    n: NodeId,
    f: impl Fn(&str) -> String,
) -> Result<(), edit::EditError> {
    use regtree_alphabet::LabelKind;
    match doc.kind(n) {
        LabelKind::Attribute | LabelKind::Text => {
            let new = f(doc.value(n).unwrap_or(""));
            journal.set_value(doc, n, &new)
        }
        LabelKind::Element => {
            let text_children: Vec<NodeId> = doc
                .children(n)
                .iter()
                .copied()
                .filter(|&c| doc.kind(c) == LabelKind::Text)
                .collect();
            for c in text_children {
                let new = f(doc.value(c).unwrap_or(""));
                journal.set_value(doc, c, &new)?;
            }
            Ok(())
        }
    }
}

fn set_text(
    doc: &mut Document,
    n: NodeId,
    f: impl Fn(&str) -> String,
) -> Result<(), edit::EditError> {
    use regtree_alphabet::LabelKind;
    match doc.kind(n) {
        LabelKind::Attribute | LabelKind::Text => {
            let new = f(doc.value(n).unwrap_or(""));
            edit::set_value(doc, n, &new)
        }
        LabelKind::Element => {
            let text_children: Vec<NodeId> = doc
                .children(n)
                .iter()
                .copied()
                .filter(|&c| doc.kind(c) == LabelKind::Text)
                .collect();
            for c in text_children {
                let new = f(doc.value(c).unwrap_or(""));
                edit::set_value(doc, c, &new)?;
            }
            Ok(())
        }
    }
}

/// Builds a monadic update class from a single root-to-leaf chain of edge
/// expressions, selecting the last node.
pub fn update_class_from_edges(
    alphabet: &regtree_alphabet::Alphabet,
    edges: &[&str],
) -> Result<UpdateClass, String> {
    let mut t = Template::new(alphabet.clone());
    let mut cur = t.root();
    for e in edges {
        cur = t.add_child_str(cur, e).map_err(|e| e.to_string())?;
    }
    let p = RegularTreePattern::monadic(t, cur).map_err(|e| e.to_string())?;
    UpdateClass::new(p).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_alphabet::Alphabet;
    use regtree_xml::{parse_document, to_xml};

    fn doc(a: &Alphabet) -> Document {
        parse_document(
            a,
            "<session>\
             <candidate><toBePassed/><level>B</level></candidate>\
             <candidate><level>A</level></candidate>\
             </session>",
        )
        .unwrap()
    }

    /// The paper's class U (Figure 6): levels of candidates that still have
    /// exams to pass.
    fn class_u(a: &Alphabet) -> UpdateClass {
        let mut t = Template::new(a.clone());
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let _tbp = t.add_child_str(cand, "toBePassed").unwrap();
        let level = t.add_child_str(cand, "level").unwrap();
        UpdateClass::new(RegularTreePattern::monadic(t, level).unwrap()).unwrap()
    }

    #[test]
    fn class_selects_only_matching_nodes() {
        let a = Alphabet::new();
        let d = doc(&a);
        let u = class_u(&a);
        let nodes = u.selected_nodes(&d);
        // Only the first candidate has a toBePassed child.
        assert_eq!(nodes.len(), 1);
        assert_eq!(d.label_name(nodes[0]).as_ref(), "level");
    }

    #[test]
    fn q1_decrease_level() {
        let a = Alphabet::new();
        let mut d = doc(&a);
        let q1 = Update::new(
            class_u(&a),
            UpdateOp::MapText(Arc::new(|old: &str| match old {
                "A" => "B".into(),
                "B" => "C".into(),
                "C" => "D".into(),
                "D" => "E".into(),
                other => other.to_string(),
            })),
        );
        let touched = q1.apply(&mut d).unwrap();
        assert_eq!(touched.len(), 1);
        let xml = to_xml(&d);
        assert!(xml.contains("<level>C</level>"), "{xml}");
        assert!(xml.contains("<level>A</level>"), "{xml}");
    }

    #[test]
    fn q2_append_comment_child() {
        let a = Alphabet::new();
        let mut d = doc(&a);
        let q2 = Update::new(
            class_u(&a),
            UpdateOp::AppendChild(TreeSpec::elem_named(&a, "comment", vec![])),
        );
        q2.apply(&mut d).unwrap();
        let xml = to_xml(&d);
        assert!(xml.contains("<level>B<comment/></level>"), "{xml}");
    }

    #[test]
    fn replace_and_delete() {
        let a = Alphabet::new();
        let mut d = doc(&a);
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let rep = Update::new(
            class.clone(),
            UpdateOp::Replace(TreeSpec::elem_named(&a, "level", vec![TreeSpec::text("E")])),
        );
        let touched = rep.apply(&mut d).unwrap();
        assert_eq!(touched.len(), 2);
        assert_eq!(to_xml(&d).matches("<level>E</level>").count(), 2);

        let mut d2 = doc(&a);
        let del = Update::new(class, UpdateOp::Delete);
        del.apply(&mut d2).unwrap();
        assert!(!to_xml(&d2).contains("level"));
    }

    #[test]
    fn non_leaf_selection_rejected() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let _lvl = t.add_child_str(cand, "level").unwrap();
        let p = RegularTreePattern::monadic(t, cand).unwrap();
        assert!(matches!(
            UpdateClass::new(p),
            Err(UpdateClassError::SelectedNotLeaf(_))
        ));
    }

    #[test]
    fn nested_selections_outermost_wins() {
        let a = Alphabet::new();
        let mut d = parse_document(&a, "<x><x><x/></x></x>").unwrap();
        // Select every x anywhere.
        let class = update_class_from_edges(&a, &["_*/x"]).unwrap();
        let up = Update::new(
            class,
            UpdateOp::Replace(TreeSpec::elem_named(&a, "x", vec![TreeSpec::text("flat")])),
        );
        let touched = up.apply(&mut d).unwrap();
        // The outermost replacement detaches the inner ones.
        assert_eq!(touched.len(), 1);
        assert_eq!(to_xml(&d), "<x>flat</x>");
    }

    #[test]
    fn label_changing_replacement_rejected() {
        let a = Alphabet::new();
        let mut d = parse_document(&a, "<x><loan/></x>").unwrap();
        let class = update_class_from_edges(&a, &["x/loan"]).unwrap();
        let up = Update::new(
            class,
            UpdateOp::Replace(TreeSpec::elem_named(&a, "section", vec![])),
        );
        assert!(matches!(
            up.apply(&mut d),
            Err(ApplyError::LabelChanged { .. })
        ));
    }

    #[test]
    fn apply_cloned_leaves_original_untouched() {
        let a = Alphabet::new();
        let d = doc(&a);
        let before = to_xml(&d);
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let up = Update::new(class, UpdateOp::SetText("Z".into()));
        let d2 = up.apply_cloned(&d).unwrap();
        assert_eq!(to_xml(&d), before);
        assert!(to_xml(&d2).contains("<level>Z</level>"));
    }

    #[test]
    fn custom_op() {
        let a = Alphabet::new();
        let mut d = doc(&a);
        let alabel = a.clone();
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let up = Update::new(
            class,
            UpdateOp::Custom(Arc::new(move |doc: &mut Document, n: NodeId| {
                let _ = edit::insert_child(
                    doc,
                    n,
                    0,
                    &TreeSpec::attr_named(&alabel, "@checked", "yes"),
                );
            })),
        );
        up.apply(&mut d).unwrap();
        assert!(to_xml(&d).contains("checked=\"yes\""));
    }
}
