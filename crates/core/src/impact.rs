//! Searching for *actual* impacts (the complement of the criterion).
//!
//! The criterion is sufficient, not complete: an `Unknown` verdict may be a
//! false alarm. Since the exact problem is PSPACE-hard (Proposition 1), no
//! efficient decision exists — but a bounded, witness-guided search can
//! often *confirm* an impact, which makes the criterion's precision
//! measurable (see `examples/criterion_precision.rs`):
//!
//! 1. start from the IC emptiness witness (a document where an update site
//!    touches the FD's sensitive region) and random mutations of it;
//! 2. keep documents that are schema-valid and satisfy the FD;
//! 3. apply a battery of label-preserving concrete updates at the class's
//!    selected nodes;
//! 4. report the first `(document, update)` whose application violates the
//!    FD — a constructive proof of impact.

use rand::Rng;

use regtree_alphabet::{Alphabet, LabelKind};
use regtree_hedge::Schema;
use regtree_xml::{Document, TreeSpec};

use crate::fd::Fd;
use crate::independence::{check_independence_internal, Verdict};
use crate::satisfy::satisfies;
use crate::update::{Update, UpdateClass, UpdateOp};

/// A constructive proof that `class` impacts `fd`.
#[derive(Clone, Debug)]
pub struct ImpactWitness {
    /// A document satisfying the FD (and the schema, when given).
    pub doc: Document,
    /// The concrete update whose application violates the FD.
    pub update: Update,
}

/// Outcome of [`classify_pair`].
#[derive(Clone, Debug)]
pub enum PairClassification {
    /// The criterion proved independence.
    ProvenIndependent,
    /// The criterion was inconclusive and the search *confirmed* an impact:
    /// the verdict was a true alarm.
    ConfirmedImpact(Box<ImpactWitness>),
    /// The criterion was inconclusive and the bounded search found no
    /// impact: possibly a false alarm (or an impact beyond the budget).
    Unconfirmed,
}

/// The battery of label-preserving concrete updates tried at each site.
///
/// Uniform ops rewrite every selected node the same way; *asymmetric* ops
/// (suffix `_first`) touch only the first selected node in document order —
/// a violation needs two traces to *disagree*, which uniform rewrites of all
/// sites often cannot produce. Asymmetric ops carry per-application state,
/// so the battery must be rebuilt for every attempt.
fn op_battery(alphabet: &Alphabet) -> Vec<UpdateOp> {
    let elem = regtree_hedge::generic_element_label(alphabet);
    // Forces the site's subtree *value* to a constant — rewriting text
    // children when present and grafting one when absent. Applied uniformly
    // it merges the values of every site (the classic way a key update
    // collapses two FD condition classes); under `FirstOnly` it skews a
    // single site instead.
    let force_text = |value: &'static str| {
        UpdateOp::Custom(std::sync::Arc::new(move |doc: &mut Document, n| {
            match doc.kind(n) {
                LabelKind::Attribute | LabelKind::Text => {
                    let _ = regtree_xml::set_value(doc, n, value);
                }
                LabelKind::Element => {
                    let texts: Vec<_> = doc
                        .children(n)
                        .iter()
                        .copied()
                        .filter(|&c| doc.kind(c) == LabelKind::Text)
                        .collect();
                    if texts.is_empty() {
                        // No text children: graft one so the value changes.
                        let _ = regtree_xml::insert_child(doc, n, 0, &TreeSpec::text(value));
                    }
                    for t in texts {
                        let _ = regtree_xml::set_value(doc, t, value);
                    }
                }
            }
        }))
    };
    vec![
        // Uniform rewrites of every site.
        force_text("merged"),
        UpdateOp::SetText("mutated".into()),
        UpdateOp::AppendChild(TreeSpec::elem(elem, vec![])),
        UpdateOp::AppendChild(TreeSpec::text("extra")),
        UpdateOp::PrependChild(TreeSpec::elem(elem, vec![])),
        UpdateOp::Delete,
        // Asymmetric: only the first site changes, so two traces disagree.
        UpdateOp::FirstOnly(Box::new(force_text("skewed"))),
        UpdateOp::FirstOnly(Box::new(UpdateOp::AppendChild(TreeSpec::text("skew")))),
        UpdateOp::FirstOnly(Box::new(UpdateOp::SetText("skewed".into()))),
        UpdateOp::FirstOnly(Box::new(UpdateOp::Delete)),
    ]
}

/// Random label-preserving mutation biased toward value changes (the edits
/// most likely to separate or merge FD condition classes).
fn mutate<R: Rng>(doc: &mut Document, rng: &mut R) {
    let nodes = doc.all_nodes();
    let n = nodes[rng.gen_range(0..nodes.len())];
    match doc.kind(n) {
        LabelKind::Attribute | LabelKind::Text => {
            let fresh = format!("v{}", rng.gen_range(0..4));
            let _ = regtree_xml::set_value(doc, n, &fresh);
        }
        LabelKind::Element => {
            if doc.children(n).is_empty() {
                // Give childless elements a random text value so value
                // equality can distinguish (or merge) them — the single
                // most useful edit for separating FD condition classes.
                let fresh = format!("v{}", rng.gen_range(0..4));
                let _ = regtree_xml::insert_child(doc, n, 0, &TreeSpec::text(&fresh));
            } else if n != doc.root() && rng.gen_bool(0.1) {
                let _ = regtree_xml::delete_subtree(doc, n);
            } else if rng.gen_bool(0.6) {
                // Duplicate the subtree next to itself: FD violations need
                // at least two sibling traces to compare.
                let spec = TreeSpec::from_document(doc, n);
                let parent = match doc.parent(n) {
                    Some(p) => p,
                    None => return,
                };
                let at = doc.children(parent).len();
                let _ = regtree_xml::insert_child(doc, parent, at, &spec);
            }
        }
    }
}

/// Upper bound on the candidate pool kept by [`search_impact`].
const POOL_CAP: usize = 64;

/// Tries to confirm an impact of `class` on `fd` within a search budget.
///
/// `rounds` bounds the number of candidate documents. The search keeps a
/// pool of *admissible* documents (schema-valid and FD-satisfying), seeded
/// with the IC emptiness witness; each round mutates a random pool member
/// and, when the mutant is admissible again, feeds it back into the pool.
/// Growing the pool this way reaches witnesses that need several
/// independent edits (e.g. duplicate a record, then diversify its key and
/// value) as a chain of single-edit steps instead of demanding one lucky
/// multi-edit round. Returns a constructive witness on success.
pub fn search_impact<R: Rng>(
    fd: &Fd,
    class: &UpdateClass,
    schema: Option<&Schema>,
    rounds: usize,
    rng: &mut R,
) -> Option<ImpactWitness> {
    let alphabet = fd.template().alphabet().clone();
    let analysis = check_independence_internal(fd, class, schema);
    let seed = match &analysis.verdict {
        Verdict::Independent => return None, // sound: no impact exists
        Verdict::Unknown { witness, .. } => witness.as_deref().cloned()?,
    };
    let admissible =
        |d: &Document| schema.map_or(true, |s| s.validate(d).is_ok()) && satisfies(fd, d);

    // Try the pristine witness first, then grow the pool from it.
    if admissible(&seed) {
        if let Some(w) = try_battery(fd, class, schema, &alphabet, &seed) {
            return Some(w);
        }
    }
    let mut pool: Vec<Document> = Vec::with_capacity(POOL_CAP);
    pool.push(seed);
    for round in 0..rounds {
        let mut doc = pool[rng.gen_range(0..pool.len())].clone();
        // Mostly single-edit steps; occasionally a burst for diversity.
        for _ in 0..1 + (round % 3) {
            mutate(&mut doc, rng);
        }
        if !admissible(&doc) {
            continue;
        }
        if pool.len() < POOL_CAP {
            pool.push(doc.clone());
        } else {
            let slot = rng.gen_range(0..POOL_CAP);
            pool[slot] = doc.clone();
        }
        if let Some(w) = try_battery(fd, class, schema, &alphabet, &doc) {
            return Some(w);
        }
    }
    None
}

/// Applies the op battery to `doc`, returning the first FD-violating
/// `(document, update)` pair.
fn try_battery(
    fd: &Fd,
    class: &UpdateClass,
    schema: Option<&Schema>,
    alphabet: &Alphabet,
    doc: &Document,
) -> Option<ImpactWitness> {
    if class.selected_nodes(doc).is_empty() {
        return None;
    }
    // Asymmetric battery ops carry one-shot state: rebuild per attempt.
    for op in op_battery(alphabet) {
        let update = Update::new(class.clone(), op);
        let Ok(after) = update.apply_cloned(doc) else {
            continue;
        };
        if let Some(s) = schema {
            if s.validate(&after).is_err() {
                // The schema-relative definition only quantifies over
                // updates keeping the document valid.
                continue;
            }
        }
        if !satisfies(fd, &after) {
            return Some(ImpactWitness {
                doc: doc.clone(),
                update,
            });
        }
    }
    None
}

/// Runs the criterion and, when inconclusive, the bounded impact search.
pub fn classify_pair<R: Rng>(
    fd: &Fd,
    class: &UpdateClass,
    schema: Option<&Schema>,
    rounds: usize,
    rng: &mut R,
) -> PairClassification {
    if check_independence_internal(fd, class, schema)
        .verdict
        .is_independent()
    {
        return PairClassification::ProvenIndependent;
    }
    match search_impact(fd, class, schema, rounds, rng) {
        Some(w) => PairClassification::ConfirmedImpact(Box::new(w)),
        None => PairClassification::Unconfirmed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdBuilder;
    use crate::update::update_class_from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fd_kv(a: &Alphabet) -> Fd {
        FdBuilder::new(a.clone())
            .context("db")
            .condition("rec/key")
            .target("rec/val")
            .build()
            .unwrap()
    }

    #[test]
    fn independent_pairs_yield_no_witness() {
        let a = Alphabet::new();
        let fd = fd_kv(&a);
        let class = update_class_from_edges(&a, &["db/audit"]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(search_impact(&fd, &class, None, 50, &mut rng).is_none());
        assert!(matches!(
            classify_pair(&fd, &class, None, 50, &mut rng),
            PairClassification::ProvenIndependent
        ));
    }

    #[test]
    fn target_updates_confirm_impact() {
        let a = Alphabet::new();
        let fd = fd_kv(&a);
        // Updating val subtrees directly: a true alarm the search must
        // confirm.
        let class = update_class_from_edges(&a, &["db/rec/val"]).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        match classify_pair(&fd, &class, None, 200, &mut rng) {
            PairClassification::ConfirmedImpact(w) => {
                assert!(satisfies(&fd, &w.doc));
                let after = w.update.apply_cloned(&w.doc).unwrap();
                assert!(!satisfies(&fd, &after));
            }
            other => panic!("expected a confirmed impact, got {other:?}"),
        }
    }

    #[test]
    fn condition_updates_confirm_impact() {
        let a = Alphabet::new();
        let fd = fd_kv(&a);
        // Updating key subtrees can merge two condition classes with
        // different targets.
        let class = update_class_from_edges(&a, &["db/rec/key"]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        match classify_pair(&fd, &class, None, 400, &mut rng) {
            PairClassification::ConfirmedImpact(w) => {
                let after = w.update.apply_cloned(&w.doc).unwrap();
                assert!(!satisfies(&fd, &after));
            }
            PairClassification::Unconfirmed => {
                // Acceptable for a bounded search, but with this budget the
                // witness-guided search should find the merge.
                panic!("search budget should suffice for key-merge impacts");
            }
            PairClassification::ProvenIndependent => {
                panic!("IC cannot prove independence here");
            }
        }
    }
}
