//! Structural subsumption (containment) between trie-factorized FDs.
//!
//! For FDs built by the \[8\] trie construction ([`crate::PathFd::to_fd`],
//! the factorizing [`crate::FdBuilder`]), the pattern is fully described by
//! its *selected paths*: the context word plus, for each condition/target,
//! the label word from the context down to the selected node. Containment
//! of the patterns' document regions then reduces to prefix tests on those
//! words — no automaton product needed ("Containment for Conditional Tree
//! Patterns" restricted to linear, child-axis patterns).
//!
//! [`subsumes`] decides the one-directional relation the matrix pruning of
//! [`crate::Analyzer::matrix_pruned`] relies on: when `subsumes(f, g)`
//! holds, every region `g` marks in a document is contained in a region `f`
//! marks, so
//!
//! * `f` **independent** of an update class ⟹ `g` independent of it, and
//! * `g` **dependent** (the criterion found a witness) ⟹ `f` dependent,
//!   with the same witness.
//!
//! Equality types play no role: the independence criterion's product is
//! purely structural (it never reads `=V`/`=N`), so neither does region
//! containment.

use regtree_alphabet::Symbol;

use crate::fd::{EqualityType, Fd};
use crate::pathfd::expressible_in_path_formalism;

/// The path skeleton of a trie-factorized FD: the context word and each
/// selected node's word relative to the context (conditions first, target
/// last), with equality types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FdPaths {
    /// Label word from the template root to the context node.
    pub context: Vec<Symbol>,
    /// One `(relative word, equality type)` per selected node, in selected
    /// order (conditions, then the target).
    pub selected: Vec<(Vec<Symbol>, EqualityType)>,
}

impl FdPaths {
    /// The target entry (the last selected path).
    pub fn target(&self) -> &(Vec<Symbol>, EqualityType) {
        self.selected.last().expect("an FD has a target")
    }

    /// Condition entries (all selected paths but the last).
    pub fn conditions(&self) -> &[(Vec<Symbol>, EqualityType)] {
        &self.selected[..self.selected.len() - 1]
    }
}

/// Extracts the path skeleton of `fd`, or `None` when `fd` does not have
/// the trie-factorized shape (regex edges, unselected leaves, sibling
/// common prefixes, off-spine context, or a selected context node).
pub(crate) fn fd_paths(fd: &Fd) -> Option<FdPaths> {
    expressible_in_path_formalism(fd).ok()?;
    let t = fd.template();
    let word_of = |n| crate::pathfd::as_word(t.edge_regex(n)?);
    let context = word_of(fd.context())?;
    let mut selected = Vec::with_capacity(fd.pattern().selected().len());
    for (&s, &eq) in fd.pattern().selected().iter().zip(fd.equality()) {
        // Climb from the selected node to the context, collecting edge words.
        let mut rel: Vec<Vec<Symbol>> = Vec::new();
        let mut cur = s;
        while cur != fd.context() {
            rel.push(word_of(cur)?);
            cur = t.parent(cur)?;
        }
        if rel.is_empty() {
            // The context itself is selected: not a shape the trie
            // construction produces (paths in [8] are nonempty).
            return None;
        }
        let mut path = Vec::new();
        for w in rel.iter().rev() {
            path.extend_from_slice(w);
        }
        selected.push((path, eq));
    }
    Some(FdPaths { context, selected })
}

/// Is `p` a prefix of (or equal to) `q`?
fn is_prefix(p: &[Symbol], q: &[Symbol]) -> bool {
    p.len() <= q.len() && p == &q[..p.len()]
}

/// Containment on path skeletons: see [`subsumes`]. Paths are compared as
/// *full* words (context concatenated with the relative path), so the two
/// FDs must share the same context word.
pub(crate) fn paths_subsume(container: &FdPaths, contained: &FdPaths) -> bool {
    if container.context != contained.context {
        return false;
    }
    let f: Vec<&[Symbol]> = container
        .selected
        .iter()
        .map(|(p, _)| p.as_slice())
        .collect();
    let g: Vec<&[Symbol]> = contained
        .selected
        .iter()
        .map(|(p, _)| p.as_slice())
        .collect();
    // (1) Every selected path of the container is a prefix of some selected
    // path of the contained FD: any trace of the contained pattern restricts
    // (through the unique ancestors) to a trace of the container.
    f.iter().all(|p| g.iter().any(|q| is_prefix(p, q)))
        // (2) Every selected path of the contained FD extends some selected
        // path of the container: each region subtree the contained FD marks
        // is rooted below a node the container marks, so the marked region
        // only shrinks.
        && g.iter().all(|q| f.iter().any(|p| is_prefix(p, q)))
}

/// Decides region containment between two trie-factorized FDs: `true` when
/// every document region `contained` marks lies inside a region `container`
/// marks (same context word; each container path a prefix of a contained
/// path, each contained path an extension of a container path).
///
/// `false` is always safe — it only means no verdict is reused. FDs outside
/// the path formalism (regex edges, structural leaves) never subsume.
///
/// # Examples
///
/// ```
/// use regtree_core::{subsumes, PathFd};
/// use regtree_alphabet::Alphabet;
///
/// let a = Alphabet::new();
/// let wide = PathFd::parse(&a, "/r : a/b/c -> a/b").unwrap().to_fd(&a).unwrap();
/// let narrow = PathFd::parse(&a, "/r : a/b/c -> a/b/d").unwrap().to_fd(&a).unwrap();
/// // `wide` marks the whole subtree at a/b, which covers a/b/d.
/// assert!(subsumes(&wide, &narrow));
/// assert!(!subsumes(&narrow, &wide));
/// ```
pub fn subsumes(container: &Fd, contained: &Fd) -> bool {
    match (fd_paths(container), fd_paths(contained)) {
        (Some(f), Some(g)) => paths_subsume(&f, &g),
        _ => false,
    }
}

/// Exact structural equality of two FDs: same template sketch, selected
/// tuple, context, and equality vector. The pattern-level fallback of the
/// implication closure — it needs no path skeleton, so it also catches
/// duplicated FDs outside the path formalism.
pub(crate) fn structurally_equal(a: &Fd, b: &Fd) -> bool {
    a.context() == b.context()
        && a.equality() == b.equality()
        && a.pattern().selected() == b.pattern().selected()
        && a.template().sketch() == b.template().sketch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdBuilder;
    use crate::pathfd::PathFd;
    use regtree_alphabet::Alphabet;
    use regtree_pattern::{RegularTreePattern, Template};

    fn fd(a: &Alphabet, src: &str) -> Fd {
        PathFd::parse(a, src).unwrap().to_fd(a).unwrap()
    }

    #[test]
    fn extracts_paths_of_factorized_fds() {
        let a = Alphabet::new();
        let f = fd(&a, "/s : c/e/d, c/e/m -> c/e/r");
        let p = fd_paths(&f).unwrap();
        assert_eq!(p.context, vec![a.intern("s")]);
        assert_eq!(p.selected.len(), 3);
        assert_eq!(
            p.target().0,
            vec![a.intern("c"), a.intern("e"), a.intern("r")]
        );
        assert_eq!(p.conditions().len(), 2);
    }

    #[test]
    fn non_path_fds_have_no_skeleton() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "s").unwrap();
        let x = t.add_child_str(c, "(a|b)").unwrap();
        let y = t.add_child_str(c, "r").unwrap();
        let pat = RegularTreePattern::new(t, vec![x, y]).unwrap();
        let f = Fd::with_default_equality(pat, c).unwrap();
        assert!(fd_paths(&f).is_none());
        assert!(!subsumes(&f, &f));
    }

    #[test]
    fn identical_fds_subsume_both_ways() {
        let a = Alphabet::new();
        let f = fd(&a, "/s : c/d -> c/r");
        let g = fd(&a, "/s : c/d -> c/r");
        assert!(subsumes(&f, &g));
        assert!(subsumes(&g, &f));
        assert!(structurally_equal(&f, &g));
    }

    #[test]
    fn shorter_target_subsumes_extension() {
        let a = Alphabet::new();
        let wide = fd(&a, "/s : c/e/d -> c/e");
        let narrow = fd(&a, "/s : c/e/d -> c/e/r");
        assert!(subsumes(&wide, &narrow));
        assert!(!subsumes(&narrow, &wide));
    }

    #[test]
    fn different_contexts_never_subsume() {
        let a = Alphabet::new();
        let f = fd(&a, "/s : c/d -> c/r");
        let g = fd(&a, "/t : c/d -> c/r");
        assert!(!subsumes(&f, &g));
    }

    #[test]
    fn disjoint_branches_do_not_subsume() {
        let a = Alphabet::new();
        let f = fd(&a, "/s : c/d -> c/r");
        let g = fd(&a, "/s : c/d -> c/x");
        // c/r is not a prefix of any of g's paths.
        assert!(!subsumes(&f, &g));
        assert!(!subsumes(&g, &f));
    }

    #[test]
    fn equality_types_are_ignored() {
        let a = Alphabet::new();
        let f = fd(&a, "/s : c/e/d -> c/e[N]");
        let g = fd(&a, "/s : c/e/d[N] -> c/e/r");
        // Same structure as the wide/narrow pair above, despite N vs V.
        assert!(subsumes(&f, &g));
        assert!(!structurally_equal(&f, &g));
    }

    #[test]
    fn builder_fds_participate() {
        let a = Alphabet::new();
        let wide = FdBuilder::new(a.clone())
            .context("s")
            .condition("c/e/d")
            .target_with("c/e", crate::EqualityType::Node)
            .build()
            .unwrap();
        let narrow = FdBuilder::new(a)
            .context("s")
            .condition("c/e/d")
            .target("c/e/r")
            .build()
            .unwrap();
        assert!(subsumes(&wide, &narrow));
    }
}
