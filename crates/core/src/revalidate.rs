//! The document-at-hand baseline the paper compares against (\[14\]-style).
//!
//! The alternative to the independence criterion is to re-verify the FD on
//! the post-update document. The paper's closing question — “estimate how
//! much time it saves to launch the independence criterion instead of
//! verifying the functional dependency again” — is answered by benchmarking
//! [`revalidate_full`] (and the mildly smarter [`RelevantSetChecker`])
//! against [`crate::Analyzer::independence`]; see
//! `crates/bench/benches/ic_vs_revalidation.rs`. The delta-scoped
//! [`crate::IncrementalChecker`] is the production-grade successor of both.

use regtree_xml::{Document, NodeId, UndoJournal};

use crate::fd::Fd;
use crate::satisfy::{check_fd, check_fds_parallel_internal, FdViolation};
use crate::update::{ApplyError, Update};

/// Applies `update` to a clone of `doc` and fully re-verifies `fd` on the
/// result: the naive baseline.
pub fn revalidate_full(
    fd: &Fd,
    update: &Update,
    doc: &Document,
) -> Result<Result<(), FdViolation>, ApplyError> {
    let after = update.apply_cloned(doc)?;
    Ok(check_fd(fd, &after))
}

/// Applies `update` once and re-verifies a whole set of FDs on the result,
/// fanning the checks out over scoped worker threads (results in `fds`
/// order). The batch counterpart of [`revalidate_full`] for workloads that
/// maintain many dependencies over the same document.
///
/// The update is applied *in place* through an [`UndoJournal`] (only the
/// touched arena slots are snapshotted) and rolled back before returning,
/// so `doc` is unchanged on exit — without ever cloning the tree. Updates
/// with custom ops cannot be journaled and fall back to the cloning path.
pub fn revalidate_full_many(
    fds: &[Fd],
    update: &Update,
    doc: &mut Document,
) -> Result<Vec<Result<(), FdViolation>>, ApplyError> {
    if update.has_custom_op() {
        let after = update.apply_cloned(doc)?;
        return Ok(check_fds_parallel_internal(fds, &after));
    }
    let mut journal = UndoJournal::begin(doc);
    match update.apply_journaled(doc, &mut journal) {
        Ok(_) => {
            let results = check_fds_parallel_internal(fds, doc);
            journal.rollback(doc);
            Ok(results)
        }
        Err(e) => {
            journal.rollback(doc);
            Err(e)
        }
    }
}

/// A document-level incremental checker in the spirit of \[14\]: it stores,
/// from the last full verification, the set of document nodes *relevant* to
/// the FD (trace nodes plus condition/target subtrees). An update whose
/// selected nodes avoid that set **and** whose application leaves the FD
/// pattern unable to reach the updated region still requires a (cheap)
/// containment probe rather than a full re-verification.
#[derive(Clone, Debug)]
pub struct RelevantSetChecker {
    relevant: std::collections::HashSet<NodeId>,
    satisfied: bool,
}

impl RelevantSetChecker {
    /// Runs a full verification and snapshots the relevant-node set.
    pub fn new(fd: &Fd, doc: &Document) -> RelevantSetChecker {
        let mut relevant = std::collections::HashSet::new();
        for m in regtree_pattern::enumerate_mappings(fd.template(), doc) {
            relevant.extend(m.trace_nodes(doc));
            for &sel in fd.pattern().selected() {
                relevant.extend(doc.descendants_or_self(m.image(sel)));
            }
        }
        let satisfied = check_fd(fd, doc).is_ok();
        RelevantSetChecker {
            relevant,
            satisfied,
        }
    }

    /// Was the snapshotted document satisfying the FD?
    pub fn satisfied(&self) -> bool {
        self.satisfied
    }

    /// Number of relevant nodes stored.
    pub fn relevant_len(&self) -> usize {
        self.relevant.len()
    }

    /// Re-checks after `update`; skips the full pass when the update
    /// provably could not have affected the FD:
    /// the updated nodes avoid the stored relevant set *and* the post-update
    /// document contains no FD mapping through the updated regions (probed
    /// with the pattern automaton restricted to a membership run).
    pub fn recheck(
        &mut self,
        fd: &Fd,
        update: &Update,
        doc: &mut Document,
    ) -> Result<bool, ApplyError> {
        let touched = update.apply(doc)?;
        let disjoint = touched.iter().all(|n| !self.relevant.contains(n));
        // The cheap path only applies to in-place updates: when a selected
        // node was detached (replaced/deleted), the replacement subtree is
        // unknown here and a full pass is required.
        let in_place = touched.iter().all(|&n| doc.is_alive(n));
        if disjoint && in_place && self.satisfied {
            // The old traces are untouched; the only risk is a *new* trace
            // through an updated subtree. Probe: enumerate mappings and see
            // whether any trace intersects the updated subtrees
            // (set-based: linear in trace size, not in |touched|).
            let touched_set: std::collections::HashSet<NodeId> = touched.iter().copied().collect();
            let fresh = regtree_pattern::enumerate_mappings(fd.template(), doc);
            let mut hits_update = false;
            'outer: for m in &fresh {
                for n in m.trace_nodes(doc) {
                    if touched_set.contains(&n) {
                        hits_update = true;
                        break 'outer;
                    }
                }
                for &sel in fd.pattern().selected() {
                    for n in doc.descendants_or_self(m.image(sel)) {
                        if touched_set.contains(&n) {
                            hits_update = true;
                            break 'outer;
                        }
                    }
                }
            }
            if !hits_update {
                // Verified-cheap path: still satisfied.
                return Ok(true);
            }
        }
        // Full re-verification.
        let ok = check_fd(fd, doc).is_ok();
        self.satisfied = ok;
        if ok {
            *self = RelevantSetChecker::new(fd, doc);
        }
        Ok(ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdBuilder;
    use crate::update::{update_class_from_edges, Update, UpdateOp};
    use regtree_alphabet::Alphabet;
    use regtree_xml::{parse_document, TreeSpec};

    fn fd_rank(a: &Alphabet) -> Fd {
        FdBuilder::new(a.clone())
            .context("session")
            .condition("candidate/exam/discipline")
            .target("candidate/exam/rank")
            .build()
            .unwrap()
    }

    fn doc(a: &Alphabet) -> Document {
        parse_document(
            a,
            "<session>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam><level>B</level></candidate>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam><level>A</level></candidate>\
             </session>",
        )
        .unwrap()
    }

    #[test]
    fn full_revalidation_detects_violation() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let d = doc(&a);
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let bad = Update::new(
            class,
            UpdateOp::Replace(TreeSpec::elem_named(&a, "rank", vec![TreeSpec::text("2")])),
        );
        // Replacing *every* rank with "2" keeps them equal: still satisfied.
        assert!(revalidate_full(&fd, &bad, &d).unwrap().is_ok());
        // A custom op changing only the first rank breaks the FD.
        let class_first = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let once = std::sync::atomic::AtomicBool::new(false);
        let uneven = Update::new(
            class_first,
            UpdateOp::Custom(std::sync::Arc::new(move |doc, n| {
                if !once.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    let kids: Vec<_> = doc.children(n).to_vec();
                    for k in kids {
                        let _ = regtree_xml::set_value(doc, k, "99");
                    }
                }
            })),
        );
        assert!(revalidate_full(&fd, &uneven, &d).unwrap().is_err());
    }

    #[test]
    fn incremental_skips_disjoint_updates() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let mut d = doc(&a);
        let mut checker = RelevantSetChecker::new(&fd, &d);
        assert!(checker.satisfied());
        assert!(checker.relevant_len() > 0);
        // Level updates never touch the FD region.
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let up = Update::new(class, UpdateOp::SetText("E".into()));
        assert!(checker.recheck(&fd, &up, &mut d).unwrap());
    }

    #[test]
    fn incremental_catches_real_violations() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let mut d = doc(&a);
        let mut checker = RelevantSetChecker::new(&fd, &d);
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let once = std::sync::atomic::AtomicBool::new(false);
        let uneven = Update::new(
            class,
            UpdateOp::Custom(std::sync::Arc::new(move |doc, n| {
                if !once.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    let kids: Vec<_> = doc.children(n).to_vec();
                    for k in kids {
                        let _ = regtree_xml::set_value(doc, k, "99");
                    }
                }
            })),
        );
        assert!(!checker.recheck(&fd, &uneven, &mut d).unwrap());
        assert!(!checker.satisfied());
    }

    #[test]
    fn incremental_catches_new_traces_outside_old_region() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        // Start with a document with no exams at all: no mappings, relevant
        // set empty, trivially satisfied.
        let mut d = parse_document(
            &a,
            "<session><candidate><stash/></candidate><candidate><stash/></candidate></session>",
        )
        .unwrap();
        let mut checker = RelevantSetChecker::new(&fd, &d);
        assert!(checker.satisfied());
        // An update grafting *conflicting* exams into the stashes creates
        // brand-new violating traces the old region knew nothing about.
        let class = update_class_from_edges(&a, &["session/candidate/stash"]).unwrap();
        let once = std::sync::atomic::AtomicBool::new(false);
        let graft = Update::new(
            class,
            UpdateOp::Custom(std::sync::Arc::new(move |doc, n| {
                let first = !once.swap(true, std::sync::atomic::Ordering::SeqCst);
                let rank = if first { "1" } else { "2" };
                let a = doc.alphabet().clone();
                let parent = doc.parent(n).unwrap();
                let _ = regtree_xml::edit::replace_subtree(
                    doc,
                    n,
                    &TreeSpec::elem_named(
                        &a,
                        "exam",
                        vec![
                            TreeSpec::elem_named(&a, "discipline", vec![TreeSpec::text("m")]),
                            TreeSpec::elem_named(&a, "rank", vec![TreeSpec::text(rank)]),
                        ],
                    ),
                );
                let _ = parent;
            })),
        );
        assert!(!checker.recheck(&fd, &graft, &mut d).unwrap());
    }
}
