//! The update–FD independence criterion IC (paper Definition 6,
//! Propositions 2 and 3).
//!
//! `L` is the language of schema-valid documents containing a trace of the
//! FD pattern and a trace of the update pattern such that some updated node
//! lies **on** the FD trace or **inside** a subtree rooted at a
//! condition/target image. If `L = ∅`, the FD is independent of the update
//! class (Proposition 2). The check is an emptiness test on a product
//! automaton (Proposition 3) and runs in polynomial time.
//!
//! Construction. Both patterns compile to bottom-up automata
//! ([`regtree_pattern::compile_pattern`]); the FD side is compiled with
//! *marking*, so a state other than `⊥` means “on the trace or inside a
//! condition/target subtree” — exactly Definition 6's region. The two
//! automata are combined into a product whose states carry an extra bit:
//! “the subtree below already contains an updated node whose FD-side state
//! is ≠ ⊥”. The bit is set locally whenever the update-side state is the
//! endpoint of a selected node of `T_U` and the FD-side state is in-region,
//! and ORed upward by the horizontal languages. Acceptance: both patterns
//! complete at the root *and* the bit is set. Finally the product with the
//! schema automaton `A_S` is taken and tested for emptiness, extracting a
//! witness document when nonempty.

use regtree_automata::{Nfa, NfaBuilder, NfaLabel};
use regtree_hedge::{
    intersect, witness_document_governed, GuardPartition, HedgeAutomaton, HedgeTransition, Schema,
    TreeState,
};
use regtree_pattern::{compile_pattern, PatternAutomaton};
use regtree_runtime::{Budget, Resource, RunMetrics, SpanKind, Stopwatch};
use regtree_xml::Document;

use crate::fd::Fd;
use crate::update::UpdateClass;

/// Result of the independence analysis.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Verdict {
    /// `L = ∅`: provably independent — no update of the class can ever
    /// break the FD on a schema-valid document (Proposition 2).
    Independent,
    /// The criterion is inconclusive: either `L` is nonempty, or the run
    /// exhausted its resource budget before the emptiness fixpoint settled.
    /// In both cases the sound reading is the same — the FD must be
    /// re-verified after an update of the class.
    #[non_exhaustive]
    Unknown {
        /// A member of `L`, when `L` was proven nonempty and extraction
        /// succeeded. The witness exhibits a document where an update
        /// interacts with the FD (it does **not** prove an actual impact —
        /// IC is sufficient, not complete).
        witness: Option<Box<Document>>,
        /// The resource that ran out, when the verdict is inconclusive
        /// because the run was cut short rather than because `L ≠ ∅`.
        exhausted: Option<Resource>,
    },
}

impl Verdict {
    /// Is the verdict `Independent`?
    pub fn is_independent(&self) -> bool {
        matches!(self, Verdict::Independent)
    }

    /// The exhausted resource, when the run was cut short by its budget.
    pub fn exhausted(&self) -> Option<Resource> {
        match self {
            Verdict::Unknown { exhausted, .. } => *exhausted,
            _ => None,
        }
    }
}

/// Outcome plus measurements of the analysis.
#[derive(Clone, Debug)]
pub struct IndependenceAnalysis {
    /// The verdict.
    pub verdict: Verdict,
    /// States of the combined (pre-schema) automaton.
    pub ic_states: usize,
    /// Size `|A|` (states + horizontal automata) of the final automaton.
    /// The lazy engine never materializes it and reports the state count of
    /// the full product instead.
    pub automaton_size: usize,
    /// Product states actually visited by the emptiness check (equals
    /// `total_states` on the eager path, usually far fewer on the lazy one).
    pub explored_states: usize,
    /// States of the full schema×FD×U×bit product.
    pub total_states: usize,
    /// Work counters and per-phase wall time of the run.
    pub metrics: RunMetrics,
}

/// Bit-aggregation mode of a product transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BitMode {
    /// Children bits unconstrained (the local event already sets the bit).
    AnyBits,
    /// No child bit set (target bit 0, no local event).
    AllZero,
    /// At least one child bit set (target bit 1, no local event).
    AtLeastOne,
}

/// Encodes the product state `(f, u, bit)`.
#[derive(Clone, Copy, Debug)]
struct Enc {
    nu: u32,
}

impl Enc {
    fn state(&self, f: TreeState, u: TreeState, bit: u32) -> TreeState {
        (f * self.nu + u) * 2 + bit
    }
}

/// Builds the IC product automaton for `fd` and `class` (before the schema
/// product). Exposed for size measurements (Proposition 3 experiments).
pub fn build_ic_automaton(fd: &Fd, class: &UpdateClass) -> HedgeAutomaton {
    let pa_fd = compile_pattern(fd.pattern(), true);
    let pa_u = compile_pattern(class.pattern(), false);
    combined(&pa_fd, &pa_u, class)
}

fn combined(
    pa_fd: &PatternAutomaton,
    pa_u: &PatternAutomaton,
    class: &UpdateClass,
) -> HedgeAutomaton {
    let nf = pa_fd.automaton.num_states() as u32;
    let nu = pa_u.automaton.num_states() as u32;
    let enc = Enc { nu };
    let mut transitions = Vec::new();

    for tf in pa_fd.automaton.transitions() {
        for tu in pa_u.automaton.transitions() {
            let Some(guard) = tf.guard.intersect(&tu.guard) else {
                continue;
            };
            // Local event: this node is an updated node (endpoint of a
            // selected T_U leaf) and sits in the FD region.
            let updated_here = pa_u
                .endpoint_of(tu.target)
                .map(|w| class.pattern().selected().contains(&w))
                .unwrap_or(false);
            let local = updated_here && pa_fd.in_region(tf.target);
            if local {
                transitions.push(HedgeTransition {
                    guard: guard.clone(),
                    horizontal: horizontal_triple(
                        &tf.horizontal,
                        &tu.horizontal,
                        nf,
                        nu,
                        enc,
                        BitMode::AnyBits,
                    ),
                    target: enc.state(tf.target, tu.target, 1),
                });
            }
            // Without (or in addition to) the local event, the bit is the OR
            // of the children bits.
            transitions.push(HedgeTransition {
                guard: guard.clone(),
                horizontal: horizontal_triple(
                    &tf.horizontal,
                    &tu.horizontal,
                    nf,
                    nu,
                    enc,
                    BitMode::AllZero,
                ),
                target: enc.state(tf.target, tu.target, u32::from(local)),
            });
            transitions.push(HedgeTransition {
                guard,
                horizontal: horizontal_triple(
                    &tf.horizontal,
                    &tu.horizontal,
                    nf,
                    nu,
                    enc,
                    BitMode::AtLeastOne,
                ),
                target: enc.state(tf.target, tu.target, 1),
            });
        }
    }

    let finals = vec![enc.state(pa_fd.acc, pa_u.acc, 1)];
    HedgeAutomaton::new((nf * nu * 2) as usize, transitions, finals)
}

/// Product of two horizontal languages over `(f, u, bit)`-encoded letters,
/// with the stated bit aggregation.
fn horizontal_triple(hf: &Nfa, hu: &Nfa, nf: u32, nu: u32, enc: Enc, mode: BitMode) -> Nfa {
    let sf_n = hf.num_states() as u32;
    let su_n = hu.num_states() as u32;
    // Product states: (sf, su, seen) with seen ∈ {0,1}.
    let mut b = NfaBuilder::new();
    for _ in 0..sf_n * su_n * 2 {
        b.add_state();
    }
    let pid = |sf: u32, su: u32, seen: u32| (sf * su_n + su) * 2 + seen;
    // ε moves of either side preserve (su, seen) / (sf, seen).
    for sf in 0..sf_n {
        for &(lf, tf2) in hf.transitions_from(sf) {
            if matches!(lf, NfaLabel::Eps) {
                for su in 0..su_n {
                    for seen in 0..2 {
                        b.add_transition(pid(sf, su, seen), NfaLabel::Eps, pid(tf2, su, seen));
                    }
                }
            }
        }
    }
    for su in 0..su_n {
        for &(lu, tu2) in hu.transitions_from(su) {
            if matches!(lu, NfaLabel::Eps) {
                for sf in 0..sf_n {
                    for seen in 0..2 {
                        b.add_transition(pid(sf, su, seen), NfaLabel::Eps, pid(sf, tu2, seen));
                    }
                }
            }
        }
    }
    // Consuming moves, synchronized on triple letters.
    let bits: &[u32] = match mode {
        BitMode::AllZero => &[0],
        _ => &[0, 1],
    };
    for sf in 0..sf_n {
        for &(lf, tf2) in hf.transitions_from(sf) {
            let f_opts: Vec<u32> = match lf {
                NfaLabel::Eps => continue,
                NfaLabel::Sym(x) => vec![x],
                NfaLabel::Any => (0..nf).collect(),
            };
            for su in 0..su_n {
                for &(lu, tu2) in hu.transitions_from(su) {
                    let u_opts: Vec<u32> = match lu {
                        NfaLabel::Eps => continue,
                        NfaLabel::Sym(y) => vec![y],
                        NfaLabel::Any => (0..nu).collect(),
                    };
                    for &x in &f_opts {
                        for &y in &u_opts {
                            for &bit in bits {
                                let letter = enc.state(x, y, bit);
                                for seen in 0..2 {
                                    let seen2 = seen | bit;
                                    b.add_transition(
                                        pid(sf, su, seen),
                                        NfaLabel::Sym(letter),
                                        pid(tf2, tu2, seen2),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    b.set_start(pid(hf.start(), hu.start(), 0));
    for sf in 0..sf_n {
        if !hf.is_accept(sf) {
            continue;
        }
        for su in 0..su_n {
            if !hu.is_accept(su) {
                continue;
            }
            match mode {
                BitMode::AnyBits => {
                    b.set_accept(pid(sf, su, 0));
                    b.set_accept(pid(sf, su, 1));
                }
                BitMode::AllZero => b.set_accept(pid(sf, su, 0)),
                BitMode::AtLeastOne => b.set_accept(pid(sf, su, 1)),
            }
        }
    }
    b.finish()
}

/// The lazy engine on precompiled inputs under an explicit budget. This is
/// the single shared entry point of [`crate::analyzer::Analyzer`], the batch
/// matrix, and the deprecated free functions. `compiled` optionally carries
/// the arena/CSR forms of the three automata (compiled against `partition`)
/// so matrix drivers pay the compilation once per automaton, not per cell.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_independence_governed(
    alphabet: &regtree_alphabet::Alphabet,
    pa_fd: &PatternAutomaton,
    pa_u: &PatternAutomaton,
    class: &UpdateClass,
    schema_auto: Option<&HedgeAutomaton>,
    partition: Option<&GuardPartition>,
    compiled: Option<crate::lazy_ic::CompiledTriple<'_>>,
    mut budget: Budget,
    compile_nanos: u64,
) -> IndependenceAnalysis {
    let ic_states = pa_fd.automaton.num_states() * pa_u.automaton.num_states() * 2;
    // One unconditional poll before any work: a pre-cancelled token or an
    // already-elapsed deadline aborts the run even on instances so small
    // they would otherwise decide before the first amortized poll fires.
    if let Err(r) = budget.poll_now() {
        let mut metrics = budget.into_metrics();
        metrics.compile_nanos += compile_nanos;
        return IndependenceAnalysis {
            verdict: Verdict::Unknown {
                witness: None,
                exhausted: Some(r),
            },
            ic_states,
            automaton_size: 0,
            explored_states: 0,
            total_states: 0,
            metrics,
        };
    }
    let search = Stopwatch::start();
    let trace = budget.trace().clone();
    let span = trace.span(SpanKind::IcSearch, "");
    let out = crate::lazy_ic::lazy_independence(
        alphabet,
        pa_fd,
        pa_u,
        class,
        schema_auto,
        partition,
        compiled,
        &mut budget,
    );
    drop(span);
    let mut metrics = budget.into_metrics();
    metrics.compile_nanos += compile_nanos;
    metrics.search_nanos += search.elapsed_nanos();
    IndependenceAnalysis {
        verdict: out.verdict,
        ic_states,
        automaton_size: out.total_states,
        explored_states: out.explored_states,
        total_states: out.total_states,
        metrics,
    }
}

/// The lazy engine on freshly compiled inputs under an unlimited budget
/// (in-crate form for `impact` and tests; external callers go through
/// [`crate::analyzer::Analyzer`]).
pub(crate) fn check_independence_internal(
    fd: &Fd,
    class: &UpdateClass,
    schema: Option<&Schema>,
) -> IndependenceAnalysis {
    let alphabet = fd.template().alphabet().clone();
    let compile = Stopwatch::start();
    let pa_fd = compile_pattern(fd.pattern(), true);
    let pa_u = compile_pattern(class.pattern(), false);
    let schema_auto = schema.map(|s| s.compiled());
    let compile_nanos = compile.elapsed_nanos();
    check_independence_governed(
        &alphabet,
        &pa_fd,
        &pa_u,
        class,
        schema_auto.as_deref(),
        None,
        None,
        Budget::unlimited(),
        compile_nanos,
    )
}

/// The eager reference pipeline: materializes the full IC automaton, takes
/// the eager schema product, and runs the emptiness fixpoint on the result.
///
/// This is **not** the production path — [`crate::Analyzer::independence`]
/// runs the lazy on-the-fly engine — but it is kept public as the
/// independent reference implementation: parity tests check the lazy
/// engine's verdict against it, and it reports the exact `|A|` size of
/// Proposition 3 (the lazy engine never materializes the product).
pub fn check_independence_eager(
    fd: &Fd,
    class: &UpdateClass,
    schema: Option<&Schema>,
) -> IndependenceAnalysis {
    let alphabet = fd.template().alphabet().clone();
    let compile = Stopwatch::start();
    let ic = build_ic_automaton(fd, class);
    let ic_states = ic.num_states();
    let full = match schema {
        Some(s) => intersect(&ic, &s.compiled()),
        None => ic,
    };
    let compile_nanos = compile.elapsed_nanos();
    let automaton_size = full.size();
    let total_states = full.num_states();
    let search = Stopwatch::start();
    let mut budget = Budget::unlimited();
    let verdict = match witness_document_governed(&full, &alphabet, &mut budget)
        .expect("unlimited budget cannot be exhausted")
    {
        None => Verdict::Independent,
        Some(doc) => Verdict::Unknown {
            witness: Some(Box::new(doc)),
            exhausted: None,
        },
    };
    let mut metrics = budget.into_metrics();
    metrics.compile_nanos += compile_nanos;
    metrics.search_nanos += search.elapsed_nanos();
    IndependenceAnalysis {
        verdict,
        ic_states,
        automaton_size,
        explored_states: total_states,
        total_states,
        metrics,
    }
}

/// The *language membership* test of Definition 6, for a concrete document:
/// is `doc` in `L`? Used to validate the automaton construction against a
/// direct implementation in tests.
pub fn in_language_naive(fd: &Fd, class: &UpdateClass, doc: &Document) -> bool {
    use std::collections::HashSet;
    // Region: trace nodes of some FD mapping, plus subtrees under
    // condition/target images. Computed per FD mapping; the update-selected
    // node must hit the region of *some* FD mapping while some update
    // mapping selects it.
    let fd_maps = regtree_pattern::enumerate_mappings(fd.template(), doc);
    if fd_maps.is_empty() {
        return false;
    }
    let mut selected: HashSet<regtree_xml::NodeId> = HashSet::new();
    for tuple in class.pattern().evaluate(doc) {
        selected.extend(tuple);
    }
    if selected.is_empty() {
        return false;
    }
    for m in &fd_maps {
        let mut region: HashSet<regtree_xml::NodeId> = m.trace_nodes(doc).into_iter().collect();
        for &sel in fd.pattern().selected() {
            for n in doc.descendants_or_self(m.image(sel)) {
                region.insert(n);
            }
        }
        if selected.iter().any(|n| region.contains(n)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::fd::FdBuilder;
    use crate::update::update_class_from_edges;
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    fn fd_rank(a: &Alphabet) -> Fd {
        FdBuilder::new(a.clone())
            .context("session")
            .condition("candidate/exam/discipline")
            .target("candidate/exam/rank")
            .build()
            .unwrap()
    }

    #[test]
    fn disjoint_update_is_independent() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        // Updates touch an unrelated area of the document.
        let class = update_class_from_edges(&a, &["archive/entry"]).unwrap();
        let analysis = check_independence_internal(&fd, &class, None);
        assert!(analysis.verdict.is_independent(), "{analysis:?}");
    }

    #[test]
    fn overlapping_update_is_flagged() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        // Updates rewrite rank subtrees: directly in the FD's target region.
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let analysis = check_independence_internal(&fd, &class, None);
        match analysis.verdict {
            Verdict::Unknown {
                witness: Some(w), ..
            } => {
                assert!(in_language_naive(&fd, &class, &w), "witness not in L");
            }
            other => panic!("expected Unknown with witness, got {other:?}"),
        }
    }

    #[test]
    fn update_on_trace_interior_is_flagged() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        // Candidate nodes are interior nodes of every FD trace.
        let class = update_class_from_edges(&a, &["session/candidate"]).unwrap();
        let analysis = check_independence_internal(&fd, &class, None);
        assert!(!analysis.verdict.is_independent());
    }

    #[test]
    fn sibling_label_updates_are_independent() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        // 'level' subtrees are disjoint from exam discipline/rank subtrees
        // and never on an FD trace.
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let analysis = check_independence_internal(&fd, &class, None);
        assert!(analysis.verdict.is_independent(), "{analysis:?}");
    }

    #[test]
    fn schema_enables_independence_like_example6() {
        let a = Alphabet::new();
        // fd5-style: only candidates *with* a firstJob-Year child are
        // concerned by the FD.
        let mut t = regtree_pattern::Template::new(a.clone());
        let c = t.add_child_str(t.root(), "session").unwrap();
        let cand = t.add_child_str(c, "candidate").unwrap();
        let cond = t.add_child_str(cand, "exam/discipline").unwrap();
        let targ = t.add_child_str(cand, "firstJob-Year").unwrap();
        let pat = regtree_pattern::RegularTreePattern::new(t, vec![cond, targ]).unwrap();
        let fd = Fd::with_default_equality(pat, c).unwrap();
        // Updates touch levels of candidates having a toBePassed child.
        let mut tu = regtree_pattern::Template::new(a.clone());
        let ucand = tu.add_child_str(tu.root(), "session/candidate").unwrap();
        let _tbp = tu.add_child_str(ucand, "toBePassed").unwrap();
        let lvl = tu.add_child_str(ucand, "level").unwrap();
        let class =
            UpdateClass::new(regtree_pattern::RegularTreePattern::monadic(tu, lvl).unwrap())
                .unwrap();
        // Without a schema: a candidate may have both toBePassed and
        // firstJob-Year, so level updates share a trace interior (the
        // candidate node is on both traces? No — level is not on the FD
        // trace, but the criterion needs the *updated node* in the region;
        // level subtrees are not in the FD region, so even without the
        // schema this is independent).
        let no_schema = check_independence_internal(&fd, &class, None);
        assert!(no_schema.verdict.is_independent());
        // With the paper's schema (toBePassed XOR firstJob-Year) it stays
        // independent — and remains so even if the update targets the whole
        // candidate content under toBePassed.
        let schema = Schema::parse(
            &a,
            "root: session\n\
             session: candidate*\n\
             candidate: exam* level? (toBePassed | firstJob-Year)\n\
             exam: discipline\n\
             discipline: #text\n\
             level: #text\n\
             toBePassed: discipline*\n\
             firstJob-Year: #text\n",
        )
        .unwrap();
        let with_schema = check_independence_internal(&fd, &class, Some(&schema));
        assert!(with_schema.verdict.is_independent());
    }

    #[test]
    fn schema_flips_unknown_to_independent() {
        let a = Alphabet::new();
        // FD over candidates with firstJob-Year; update rewrites the exam
        // subtrees of candidates with toBePassed. Without a schema a
        // candidate can have both children, so the update may hit an FD
        // condition subtree; with the XOR schema it cannot (Example 6).
        let mut t = regtree_pattern::Template::new(a.clone());
        let c = t.add_child_str(t.root(), "session").unwrap();
        let cand = t.add_child_str(c, "candidate").unwrap();
        let _fjy = t.add_child_str(cand, "firstJob-Year").unwrap();
        let cond = t.add_child_str(cand, "exam/discipline").unwrap();
        let targ = t.add_child_str(cand, "exam/rank").unwrap();
        let pat = regtree_pattern::RegularTreePattern::new(t, vec![cond, targ]).unwrap();
        let fd = Fd::with_default_equality(pat, c).unwrap();

        let mut tu = regtree_pattern::Template::new(a.clone());
        let ucand = tu.add_child_str(tu.root(), "session/candidate").unwrap();
        let _tbp = tu.add_child_str(ucand, "toBePassed").unwrap();
        let exam = tu.add_child_str(ucand, "exam").unwrap();
        let class =
            UpdateClass::new(regtree_pattern::RegularTreePattern::monadic(tu, exam).unwrap())
                .unwrap();

        let without = check_independence_internal(&fd, &class, None);
        assert!(!without.verdict.is_independent(), "{without:?}");

        let schema = Schema::parse(
            &a,
            "root: session\n\
             session: candidate*\n\
             candidate: (toBePassed | firstJob-Year) exam*\n\
             exam: discipline rank\n\
             discipline: #text\n\
             rank: #text\n\
             toBePassed: discipline*\n\
             firstJob-Year: #text\n",
        )
        .unwrap();
        let with = check_independence_internal(&fd, &class, Some(&schema));
        assert!(with.verdict.is_independent(), "{with:?}");
    }

    #[test]
    fn naive_membership_agrees_on_examples() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let in_l = parse_document(
            &a,
            "<session><candidate><exam><discipline>m</discipline><rank>1</rank></exam></candidate></session>",
        )
        .unwrap();
        assert!(in_language_naive(&fd, &class, &in_l));
        let not_in_l = parse_document(
            &a,
            "<session><candidate><exam><discipline>m</discipline></exam></candidate></session>",
        )
        .unwrap();
        assert!(!in_language_naive(&fd, &class, &not_in_l));
    }

    #[test]
    fn analysis_reports_sizes() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let class = update_class_from_edges(&a, &["x/y"]).unwrap();
        let r = check_independence_internal(&fd, &class, None);
        assert!(r.ic_states > 0);
        assert!(r.automaton_size >= r.ic_states);
    }
}
