//! `regtree-core` — the primary contribution of Gire & Idabal (EDBT 2010):
//! XML functional dependencies and update classes expressed as **regular
//! tree patterns**, and the polynomial-time **independence criterion**
//! deciding that a class of updates can never break an FD.
//!
//! * [`fd`] — FDs `(FD, c)` with value/node equality types (Definition 4);
//! * [`satisfy`] — satisfaction checking with violation witnesses
//!   (Definition 5);
//! * [`pathfd`] — the path formalism of \[8\], its embedding into patterns,
//!   and the Example 3 inexpressibility checks;
//! * [`fdset`] / [`subsume`] — FD-*set* reasoning: implication closure,
//!   [`FdSet::minimize`], and the structural containment the matrix
//!   pruning reuses verdicts through;
//! * [`update`] — update classes `U = (T_U, s̄_U)` and executable updates
//!   (Section 4);
//! * [`independence`] — the criterion IC: automaton construction, schema
//!   product, emptiness with witness documents (Definition 6,
//!   Propositions 2–3);
//! * [`reduction`] — the PSPACE-hardness gadgets (Proposition 1,
//!   Figures 7–8);
//! * [`revalidate`] — the document-at-hand baseline (\[14\]-style) the paper
//!   compares the criterion against;
//! * [`incremental`] — impact-scoped FD rechecking over
//!   [`regtree_xml::VersionedDocument`] deltas (the production successor
//!   of the baselines above).

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod analyzer;
pub mod api;
pub mod error;
pub mod fd;
pub mod fdset;
pub mod impact;
pub mod incremental;
pub mod independence;
mod intern;
mod lazy_ic;
pub mod matrix;
pub mod pathfd;
pub mod reduction;
pub mod revalidate;
pub mod satisfy;
pub mod subsume;
pub mod textfd;
pub mod update;

pub use analyzer::{Analyzer, AnalyzerBuilder, RunOverrides};
pub use error::Error;
pub use fd::{EqualityType, Fd, FdBuilder, FdError};
pub use fdset::{DroppedFd, FdSet, Implication, Minimization};
pub use impact::{classify_pair, search_impact, ImpactWitness, PairClassification};
pub use incremental::{IncrementalChecker, RecheckReport, RecheckScope};
pub use independence::{
    build_ic_automaton, check_independence_eager, in_language_naive, IndependenceAnalysis, Verdict,
};
pub use matrix::{CellProvenance, IndependenceMatrix, MatrixCell};
pub use pathfd::{expressible_in_path_formalism, Inexpressibility, PathFd, PathFdError};
pub use reduction::{build_patterns, build_reduction, gadget_alphabet, ReductionInstance};
pub use revalidate::{revalidate_full, revalidate_full_many, RelevantSetChecker};
pub use satisfy::{
    check_fd, check_fd_governed, check_fd_indexed, satisfies, FdBatchReport, FdOutcome, FdViolation,
};
pub use subsume::subsumes;
pub use textfd::{fd_from_expr, parse_fd};
// Re-exported so downstreams govern runs without a direct dependency on
// `regtree-runtime`.
pub use regtree_runtime::{
    validate_json, Budget, CancelToken, ChromeTraceSink, EventKind, NullTracer, Resource,
    RunLimits, RunMetrics, SpanId, SpanKind, SummarySink, TraceFormat, TraceHandle, TraceSummary,
    Tracer,
};
pub use update::{
    update_class_from_edges, ApplyError, Update, UpdateClass, UpdateClassError, UpdateOp,
};
