//! Textual functional dependencies: the richer grammar behind
//! [`PathFd::parse`](crate::PathFd::parse).
//!
//! [`parse_fd`] accepts every line the original path-FD syntax accepted —
//! `context : p1, p2[N] -> q` with simple label paths — and extends every
//! path with the full pattern language of `regtree_pattern::lang`:
//! descendant axes (`//`), wildcards (`*`), attribute/text tests, and
//! counting predicates (`[count(p) >= n]`, `[at-least n p]`). Value tests
//! (`[p = "v"]`) are rejected: FD checking runs through engines that see
//! the template only.
//!
//! The translation generalizes the \[8\] construction of
//! [`PathFd::to_fd`](crate::PathFd::to_fd): condition/target paths are
//! factorized into a trie over *steps* (structural equality), unary
//! unselected predicate-free chains compress into single multi-label
//! edges, and counting predicates expand into repeated branches. On
//! simple-path input the resulting template is structurally identical to
//! the `PathFd` one, so existing FD corpora keep byte-identical verdicts.

use regtree_alphabet::Alphabet;
use regtree_pattern::lang::{self, append_relpath, parse_fd_expr, EqTag, FdExpr, Predicate, Step};
use regtree_pattern::{RegularTreePattern, Template, TemplateNodeId};

use crate::error::Error;
use crate::fd::{EqualityType, Fd};
use crate::pathfd::PathFdError;

fn err(m: impl Into<String>) -> PathFdError {
    PathFdError { message: m.into() }
}

/// Parses a one-line textual FD and compiles it into an [`Fd`].
///
/// ```
/// use regtree_alphabet::Alphabet;
/// use regtree_core::{parse_fd, satisfies};
/// use regtree_xml::parse_document;
///
/// let a = Alphabet::new();
/// // The original path-FD syntax still parses…
/// let fd = parse_fd(&a, "/catalog : item/sku -> item/price").unwrap();
/// assert_eq!(fd.conditions().len(), 1);
///
/// // …and paths may now use descendant axes and counting predicates.
/// let fd = parse_fd(&a, "/lib//shelf : book[count(author) >= 2]/isbn -> book/title").unwrap();
/// let doc = parse_document(
///     &a,
///     "<lib><shelf><book><author/><author/><isbn>1</isbn><title>t</title></book></shelf></lib>",
/// )
/// .unwrap();
/// assert!(satisfies(&fd, &doc));
///
/// // Parse errors carry byte offsets and expected-token sets.
/// let e = parse_fd(&a, "/c : a -> ").unwrap_err();
/// assert!(e.to_string().contains("byte 10"));
/// ```
pub fn parse_fd(alphabet: &Alphabet, src: &str) -> Result<Fd, Error> {
    let expr = parse_fd_expr(src).map_err(Error::PatternText)?;
    fd_from_expr(alphabet, &expr)
}

/// Compiles an already-parsed [`FdExpr`] into an [`Fd`].
pub fn fd_from_expr(alphabet: &Alphabet, expr: &FdExpr) -> Result<Fd, Error> {
    if has_value_test(&expr.context.steps)
        || expr
            .conditions
            .iter()
            .any(|(p, _)| has_value_test(&p.steps))
        || has_value_test(&expr.target.0.steps)
    {
        return Err(err(
            "value tests ([p = \"v\"]) are not supported in FDs; the FD itself compares \
             selected nodes by value ([V]) or node ([N]) equality",
        )
        .into());
    }

    let mut template = Template::new(alphabet.clone());
    let root = template.root();
    let context =
        append_relpath(&mut template, root, &expr.context.steps).map_err(compile_error)?;

    // Trie over steps (structural equality) below the context: the
    // generalized [8] factorization.
    struct TrieNode {
        step: Step,
        children: Vec<usize>,
    }
    let mut arena: Vec<TrieNode> = Vec::new();
    let mut top: Vec<usize> = Vec::new();
    let mut ends: Vec<usize> = Vec::new();
    let paths = expr
        .conditions
        .iter()
        .map(|(p, _)| p)
        .chain(std::iter::once(&expr.target.0));
    for path in paths {
        let mut cur: Option<usize> = None;
        for step in &path.steps {
            let siblings: &[usize] = match cur {
                None => &top,
                Some(i) => &arena[i].children,
            };
            let found = siblings.iter().copied().find(|&c| arena[c].step == *step);
            let next = match found {
                Some(c) => c,
                None => {
                    let id = arena.len();
                    arena.push(TrieNode {
                        step: step.clone(),
                        children: Vec::new(),
                    });
                    match cur {
                        None => top.push(id),
                        Some(i) => arena[i].children.push(id),
                    }
                    id
                }
            };
            cur = Some(next);
        }
        ends.push(cur.expect("relpaths are nonempty"));
    }
    let mut sorted = ends.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != ends.len() {
        return Err(err("duplicate condition/target paths").into());
    }

    // Materialize: compress unary, unselected, predicate-free chains into
    // single edges; `append_relpath` merges the chain's steps and builds
    // the tail's predicate branches (including counting expansion).
    let mut node_of: Vec<Option<TemplateNodeId>> = vec![None; arena.len()];
    let mut stack: Vec<(usize, TemplateNodeId)> = top.iter().map(|&c| (c, context)).collect();
    // Insertion order must be preserved: children of one template node are
    // sibling branches whose order is the document order the mapping must
    // respect. A LIFO stack of (trie node, parent template node) visits
    // parents before children, and we push children reversed so siblings
    // materialize left to right.
    stack.reverse();
    while let Some((first, from_tpl)) = stack.pop() {
        let mut chain = vec![first];
        let mut cur = first;
        while arena[cur].children.len() == 1
            && !ends.contains(&cur)
            && arena[cur].step.predicates.is_empty()
        {
            cur = arena[cur].children[0];
            chain.push(cur);
        }
        let steps: Vec<Step> = chain.iter().map(|&i| arena[i].step.clone()).collect();
        let tpl = append_relpath(&mut template, from_tpl, &steps).map_err(compile_error)?;
        node_of[cur] = Some(tpl);
        for &child in arena[cur].children.iter().rev() {
            stack.push((child, tpl));
        }
    }

    let mut selected = Vec::new();
    let mut equality = Vec::new();
    for (i, (_, eq)) in expr.conditions.iter().enumerate() {
        selected.push(node_of[ends[i]].expect("materialized"));
        equality.push(eq_type(*eq));
    }
    selected.push(node_of[*ends.last().expect("target")].expect("materialized"));
    equality.push(eq_type(expr.target.1));

    let pattern = RegularTreePattern::new(template, selected)?;
    Ok(Fd::new(pattern, context, equality)?)
}

fn eq_type(tag: EqTag) -> EqualityType {
    match tag {
        EqTag::Value => EqualityType::Value,
        EqTag::Node => EqualityType::Node,
    }
}

fn compile_error(e: lang::CompileError) -> Error {
    match e {
        lang::CompileError::Template(e) => Error::Template(e),
        lang::CompileError::Pattern(e) => Error::Pattern(e),
        lang::CompileError::ValueTest => err(
            "value tests ([p = \"v\"]) are not supported in FDs; the FD itself compares \
             selected nodes by value ([V]) or node ([N]) equality",
        )
        .into(),
    }
}

fn has_value_test(steps: &[Step]) -> bool {
    steps.iter().any(|s| {
        s.predicates.iter().any(|p| match p {
            Predicate::ValueEq(..) => true,
            Predicate::Exists(rp) | Predicate::AtLeast(_, rp) => has_value_test(&rp.steps),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathfd::PathFd;
    use crate::satisfy::satisfies;
    use regtree_xml::parse_document;

    /// expr1 / expr2 of the paper.
    const EXPR1: &str =
        "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank";
    const EXPR2: &str = "/session/candidate : exam/date, exam/discipline -> exam[N]";

    #[test]
    fn simple_paths_build_the_exact_pathfd_template() {
        let a = Alphabet::new();
        for src in [
            EXPR1,
            EXPR2,
            "/c : -> x",
            "/r : a/b/c -> a/b/d",
            "/r : a, a/b -> a/b/c",
            "/session/candidate : exam[N], level -> @IDN",
        ] {
            let via_path = PathFd::parse(&a, src).unwrap().to_fd(&a).unwrap();
            let via_text = parse_fd(&a, src).unwrap();
            assert_eq!(
                via_text.template().sketch(),
                via_path.template().sketch(),
                "template drift for {src}"
            );
            assert_eq!(
                via_text.pattern().selected(),
                via_path.pattern().selected(),
                "selection drift for {src}"
            );
            assert_eq!(
                via_text.context(),
                via_path.context(),
                "context drift for {src}"
            );
            assert_eq!(
                via_text.describe(),
                via_path.describe(),
                "describe drift for {src}"
            );
        }
    }

    #[test]
    fn pathfd_error_cases_still_error() {
        let a = Alphabet::new();
        for src in [
            "no colon here",
            "relative : a -> b",
            "/c : a, b",
            "/c : a,,b -> t",
            "/c : ,a -> t",
            "/c : a, -> t",
            "/ : a -> t",
        ] {
            assert!(parse_fd(&a, src).is_err(), "{src} should not parse");
        }
        assert!(parse_fd(&a, "/c : a, a -> b").is_err()); // duplicate paths
    }

    #[test]
    fn descendant_axis_in_fd_paths() {
        let a = Alphabet::new();
        // Any mark anywhere below a candidate determines its level.
        let fd = parse_fd(&a, "/session : candidate//mark -> candidate/level").unwrap();
        let good = parse_document(
            &a,
            "<session>\
             <candidate><exam><mark>15</mark></exam><level>B</level></candidate>\
             <candidate><exam><mark>15</mark></exam><level>B</level></candidate>\
             </session>",
        )
        .unwrap();
        assert!(satisfies(&fd, &good));
        let bad = parse_document(
            &a,
            "<session>\
             <candidate><exam><mark>15</mark></exam><level>B</level></candidate>\
             <candidate><exam><mark>15</mark></exam><level>A</level></candidate>\
             </session>",
        )
        .unwrap();
        assert!(!satisfies(&fd, &bad));
    }

    #[test]
    fn counting_predicates_in_fd_paths() {
        let a = Alphabet::new();
        // Among candidates with at least two exams, the id determines the
        // level. The single-exam candidates are outside the FD's scope.
        // The two predicate-bearing `candidate` steps are structurally
        // equal, so they factorize into ONE trie node; id and level end
        // below it at distinct nodes. (The counting branches precede the
        // id/level edges in template preorder, so — document order being a
        // mapping condition — the witnessed exams must precede id and
        // level among the candidate's children, as they do here.)
        let fd = parse_fd(
            &a,
            "/session : candidate[count(exam) >= 2]/id -> candidate[count(exam) >= 2]/level",
        )
        .unwrap();
        let good = parse_document(
            &a,
            "<session>\
             <candidate><exam/><exam/><id>7</id><level>B</level></candidate>\
             <candidate><exam/><exam/><id>7</id><level>B</level></candidate>\
             <candidate><exam/><id>7</id><level>A</level></candidate>\
             </session>",
        )
        .unwrap();
        // The third candidate has only one exam: out of scope, its level
        // may differ.
        assert!(satisfies(&fd, &good));
        let bad = parse_document(
            &a,
            "<session>\
             <candidate><exam/><exam/><id>7</id><level>B</level></candidate>\
             <candidate><exam/><exam/><id>7</id><level>A</level></candidate>\
             </session>",
        )
        .unwrap();
        assert!(!satisfies(&fd, &bad));
    }

    #[test]
    fn value_tests_rejected_in_fds() {
        let a = Alphabet::new();
        let e = parse_fd(&a, "/s : c[x = \"1\"]/a -> c/b").unwrap_err();
        assert!(e.to_string().contains("value tests"), "{e}");
    }

    #[test]
    fn equality_annotations_survive() {
        let a = Alphabet::new();
        let fd = parse_fd(&a, EXPR2).unwrap();
        assert_eq!(fd.target_equality(), EqualityType::Node);
        assert!(!fd.template().is_leaf(fd.target()));
    }
}
