//! FD-*set* reasoning: implication closure and minimization.
//!
//! A deployment maintains a set Σ of functional dependencies as one
//! invariant. Before any per-FD analysis (satisfaction checks, the
//! independence matrix) it pays to shrink Σ: an FD implied by the rest can
//! never be the *first* to break, so it needs no row of its own. This
//! module decides implication for FDs in the path formalism of \[8\]
//! (Vincent & Liu-style closure, restricted to stay sound under XML's
//! existence semantics) and exposes [`FdSet::minimize`]: the irredundant
//! core plus a provenance map naming, for each dropped FD, kept FDs that
//! imply it.
//!
//! ## The inference rules
//!
//! All rules work on the path skeletons of trie-factorized FDs (context
//! word `C`, condition paths `S`, target path `Q`, equality types `V`/`N`)
//! and derive *agreement facts*: "any two traces of the goal pattern that
//! agree on the goal's conditions also agree at path `p` with type `E`".
//! The derivation universe is the prefix closure of the goal's own paths —
//! agreement is only meaningful where both traces are defined.
//!
//! * **seed** — the goal's conditions agree by assumption;
//! * **prefix (N)** — node agreement at `p` lifts to every prefix of `p`
//!   (identical nodes have identical ancestors); value agreement does
//!   *not* lift;
//! * **apply** — an FD `(C, S' → Q'[E'])` of the set fires when every path
//!   of `S'` and `Q'` lies in the universe and every condition of `S'` is
//!   covered by a derived fact (`N` covers `N` and `V`; `V` covers only
//!   `V`), adding the fact `Q'[E']`;
//! * **prefix-extension** — an FD with context `C'` where `C = C'·w` is
//!   rewritten to context `C` by stripping `w` from all its paths (the trie
//!   shares the `w` node, so both traces see the same `C'`-node); it then
//!   participates in **apply**.
//!
//! Unrestricted transitivity is *unsound* here: with documents where the
//! intermediate path does not exist, `a → b` and `b → c` hold vacuously
//! while `a → c` fails. Restricting **apply** to the goal's prefix-closed
//! universe sidesteps exactly that trap — every universe path is an
//! ancestor-or-self of a path both traces realize, so existence is never
//! assumed. FDs outside the path formalism only participate through the
//! pattern-level fallback: an exact structural duplicate implies its twin.

use std::collections::{HashMap, HashSet};

use regtree_alphabet::Symbol;
use regtree_runtime::{Budget, Resource, RunLimits};

use crate::fd::{EqualityType, Fd};
use crate::subsume::{fd_paths, structurally_equal, FdPaths};

/// The outcome of an implication query.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Implication {
    /// The set implies the goal; `by` lists indices of set members
    /// sufficient to re-derive it (empty when the goal is trivial —
    /// implied by the empty set).
    Implied {
        /// Indices into the [`FdSet`] of a sufficient implying subset.
        by: Vec<usize>,
    },
    /// The closure completed without deriving the goal.
    NotImplied,
    /// The closure ran out of budget before an answer; treat the goal as
    /// not implied (the sound direction).
    Unknown(Resource),
}

/// One FD dropped by [`FdSet::minimize`], with provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DroppedFd {
    /// Index of the dropped FD in the original set.
    pub index: usize,
    /// Indices of *kept* FDs sufficient to imply it (empty for trivial
    /// FDs).
    pub by: Vec<usize>,
}

/// The result of [`FdSet::minimize`]: the irredundant core and what was
/// dropped, with provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Minimization {
    /// Indices of the kept (core) FDs, in original order.
    pub kept: Vec<usize>,
    /// Dropped FDs with their implying kept FDs.
    pub dropped: Vec<DroppedFd>,
    /// `Some(resource)` when the closure ran out of budget: the result is
    /// a sound *partial* minimization (every recorded drop is proven, but
    /// further drops may have been missed).
    pub exhausted: Option<Resource>,
}

impl Minimization {
    /// Did the closure run to completion?
    pub fn is_complete(&self) -> bool {
        self.exhausted.is_none()
    }

    /// The kept FDs implying dropped FD `index`, if it was dropped.
    pub fn provenance(&self, index: usize) -> Option<&[usize]> {
        self.dropped
            .iter()
            .find(|d| d.index == index)
            .map(|d| d.by.as_slice())
    }
}

/// A named collection of FDs with implication reasoning. See the
/// [module docs](self).
///
/// # Examples
///
/// ```
/// use regtree_core::{FdSet, PathFd, RunLimits};
/// use regtree_alphabet::Alphabet;
///
/// let a = Alphabet::new();
/// let mut set = FdSet::new();
/// for (name, src) in [
///     ("base", "/s : c/e/d, c/e/m -> c/e/r"),
///     // Implied by `base`: more conditions, same target.
///     ("weaker", "/s : c/e/d, c/e/m, c/n -> c/e/r"),
/// ] {
///     set.push(name, PathFd::parse(&a, src).unwrap().to_fd(&a).unwrap());
/// }
/// let min = set.minimize(&RunLimits::UNLIMITED);
/// assert_eq!(min.kept, vec![0]);
/// assert_eq!(min.dropped.len(), 1);
/// assert_eq!(min.dropped[0].by, vec![0]); // `base` implies `weaker`
/// ```
#[derive(Default)]
pub struct FdSet {
    names: Vec<String>,
    fds: Vec<Fd>,
    paths: Vec<Option<FdPaths>>,
}

/// An FD of the set normalized to the goal's context: condition/target
/// paths relative to the goal context, all inside the goal's universe.
struct Rule {
    fd: usize,
    conditions: Vec<(Vec<Symbol>, EqualityType)>,
    target: (Vec<Symbol>, EqualityType),
}

/// Does an available agreement of type `avail` satisfy a condition
/// requiring type `needed`? Node agreement implies value agreement; the
/// converse fails.
fn covers(avail: EqualityType, needed: EqualityType) -> bool {
    avail == EqualityType::Node || needed == EqualityType::Value
}

/// Records the agreement fact "traces agree at `p` with type `eq`",
/// strengthening an existing `V` fact to `N`. Fact keys borrow from the
/// universe so every path is stored once.
fn strengthen<'u>(
    universe: &HashSet<&'u [Symbol]>,
    facts: &mut HashMap<&'u [Symbol], EqualityType>,
    p: &[Symbol],
    eq: EqualityType,
) {
    let key = *universe.get(p).expect("fact paths lie in the universe");
    let slot = facts.entry(key).or_insert(eq);
    if eq == EqualityType::Node {
        *slot = EqualityType::Node;
    }
}

impl FdSet {
    /// An empty set.
    pub fn new() -> FdSet {
        FdSet::default()
    }

    /// Appends a named FD.
    pub fn push(&mut self, name: impl Into<String>, fd: Fd) {
        self.paths.push(fd_paths(&fd));
        self.names.push(name.into());
        self.fds.push(fd);
    }

    /// Number of FDs in the set.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// The name of FD `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// FD `i`.
    pub fn fd(&self, i: usize) -> &Fd {
        &self.fds[i]
    }

    /// Does the whole set imply `goal`? Runs the closure under `limits`;
    /// a budget that runs out yields [`Implication::Unknown`] rather than
    /// hanging.
    pub fn implies(&self, goal: &Fd, limits: &RunLimits) -> Implication {
        let mut budget = Budget::new(limits);
        let active = vec![true; self.len()];
        self.implies_active(&active, goal, fd_paths(goal).as_ref(), &mut budget)
    }

    /// Implication of `goal` from the members with `active[i]`, under an
    /// externally owned budget.
    fn implies_active(
        &self,
        active: &[bool],
        goal: &Fd,
        goal_paths: Option<&FdPaths>,
        budget: &mut Budget,
    ) -> Implication {
        if let Err(r) = budget.poll_now() {
            return Implication::Unknown(r);
        }
        // Pattern-level fallback: an exact structural duplicate implies the
        // goal — also for FDs outside the path formalism.
        for i in (0..self.len()).filter(|&i| active[i]) {
            if structurally_equal(&self.fds[i], goal) {
                return Implication::Implied { by: vec![i] };
            }
        }
        let Some(goal_paths) = goal_paths else {
            return Implication::NotImplied;
        };
        match self.closure(active, goal_paths, budget) {
            Err(r) => Implication::Unknown(r),
            Ok(None) => Implication::NotImplied,
            Ok(Some(fired)) => {
                // Best-effort pruning: drop members whose removal keeps the
                // goal derivable. Budget exhaustion here is harmless — the
                // implication is already proven, the set just stays larger.
                let mut by: Vec<usize> = fired;
                let mut k = by.len();
                while k > 0 {
                    k -= 1;
                    let mut trial = vec![false; self.len()];
                    for (pos, &i) in by.iter().enumerate() {
                        if pos != k {
                            trial[i] = true;
                        }
                    }
                    if let Ok(Some(_)) = self.closure(&trial, goal_paths, budget) {
                        by.remove(k);
                    }
                }
                Implication::Implied { by }
            }
        }
    }

    /// The agreement-fact fixpoint. `Ok(Some(fired))` when the goal's
    /// target fact was derived (with the distinct member indices that
    /// fired, in first-firing order), `Ok(None)` when the fixpoint
    /// completes without it, `Err` when the budget runs out.
    fn closure(
        &self,
        active: &[bool],
        goal: &FdPaths,
        budget: &mut Budget,
    ) -> Result<Option<Vec<usize>>, Resource> {
        // Universe: the nonempty prefixes of the goal's selected paths.
        let mut universe: HashSet<&[Symbol]> = HashSet::new();
        for (p, _) in &goal.selected {
            for k in 1..=p.len() {
                universe.insert(&p[..k]);
            }
        }
        // Normalize the active members to the goal's context.
        let mut rules: Vec<Rule> = Vec::new();
        for i in (0..self.len()).filter(|&i| active[i]) {
            budget.checkpoint()?;
            let Some(paths) = &self.paths[i] else {
                continue;
            };
            // Context alignment: identical, or a prefix extended by `w`.
            let ctx = &paths.context;
            if ctx.len() > goal.context.len() || ctx[..] != goal.context[..ctx.len()] {
                continue;
            }
            let strip = &goal.context[ctx.len()..];
            let normalize = |p: &[Symbol]| -> Option<Vec<Symbol>> {
                (p.len() > strip.len() && p[..strip.len()] == strip[..])
                    .then(|| p[strip.len()..].to_vec())
            };
            let Some(target_path) = normalize(&paths.target().0) else {
                continue;
            };
            if !universe.contains(target_path.as_slice()) {
                continue;
            }
            let mut conditions = Vec::with_capacity(paths.conditions().len());
            let mut usable = true;
            for (p, eq) in paths.conditions() {
                // A condition at exactly the stripped context word sits on
                // the shared context node: trivially satisfied, skip it.
                if p[..] == strip[..] {
                    continue;
                }
                match normalize(p) {
                    Some(q) if universe.contains(q.as_slice()) => conditions.push((q, *eq)),
                    _ => {
                        usable = false;
                        break;
                    }
                }
            }
            if usable {
                rules.push(Rule {
                    fd: i,
                    conditions,
                    target: (target_path, paths.target().1),
                });
            }
        }

        // Seed: the goal's conditions agree by assumption (strongest type
        // wins when a path repeats).
        let mut facts: HashMap<&[Symbol], EqualityType> = HashMap::new();
        for (p, eq) in goal.conditions() {
            strengthen(&universe, &mut facts, p, *eq);
        }

        let mut fired: Vec<usize> = Vec::new();
        loop {
            budget.checkpoint()?;
            let mut changed = false;
            // Prefix rule: node agreement lifts to every prefix.
            let node_paths: Vec<&[Symbol]> = facts
                .iter()
                .filter(|(_, &eq)| eq == EqualityType::Node)
                .map(|(&p, _)| p)
                .collect();
            for p in node_paths {
                for k in 1..p.len() {
                    let prefix = &p[..k];
                    if facts.get(prefix) != Some(&EqualityType::Node) {
                        budget.on_frontier_push()?;
                        strengthen(&universe, &mut facts, prefix, EqualityType::Node);
                        changed = true;
                    }
                }
            }
            // Apply rule: fire any member whose conditions are covered and
            // whose conclusion adds strength.
            for rule in &rules {
                budget.checkpoint()?;
                let adds = match facts.get(rule.target.0.as_slice()) {
                    None => true,
                    Some(&have) => !covers(have, rule.target.1),
                };
                if !adds {
                    continue;
                }
                let ready = rule
                    .conditions
                    .iter()
                    .all(|(p, eq)| facts.get(p.as_slice()).is_some_and(|&h| covers(h, *eq)));
                if ready {
                    budget.on_frontier_push()?;
                    strengthen(&universe, &mut facts, &rule.target.0, rule.target.1);
                    if !fired.contains(&rule.fd) {
                        fired.push(rule.fd);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let (q, eq) = goal.target();
        let reached = facts
            .get(q.as_slice())
            .is_some_and(|&have| covers(have, *eq));
        Ok(reached.then_some(fired))
    }

    /// Computes the irredundant core: repeatedly drops any FD implied by
    /// the remaining members, recording which kept FDs imply each dropped
    /// one. A budget that runs out mid-way yields a sound partial result
    /// (`exhausted` set, remaining FDs kept) instead of hanging on a
    /// hostile set.
    pub fn minimize(&self, limits: &RunLimits) -> Minimization {
        let mut budget = Budget::new(limits);
        let n = self.len();
        let mut active = vec![true; n];
        let mut dropped: Vec<DroppedFd> = Vec::new();
        let mut exhausted = None;
        for i in 0..n {
            active[i] = false;
            match self.implies_active(&active, &self.fds[i], self.paths[i].as_ref(), &mut budget) {
                Implication::Implied { by } => dropped.push(DroppedFd { index: i, by }),
                Implication::NotImplied => active[i] = true,
                Implication::Unknown(r) => {
                    active[i] = true;
                    exhausted = Some(r);
                    break;
                }
            }
        }
        // Provenance may reference FDs that were dropped later; expand to
        // kept FDs only. A drop's `by` list only points at members still
        // active at its step, i.e. at FDs dropped strictly later — so one
        // reverse pass reaches the fixpoint.
        let final_by: HashMap<usize, Vec<usize>> = {
            let mut map: HashMap<usize, Vec<usize>> = HashMap::new();
            for d in dropped.iter().rev() {
                let mut expanded: Vec<usize> = Vec::new();
                for &j in &d.by {
                    match map.get(&j) {
                        Some(js) => expanded.extend(js),
                        None => expanded.push(j),
                    }
                }
                expanded.sort_unstable();
                expanded.dedup();
                map.insert(d.index, expanded);
            }
            map
        };
        for d in &mut dropped {
            d.by = final_by[&d.index].clone();
        }
        Minimization {
            kept: (0..n).filter(|&i| active[i]).collect(),
            dropped,
            exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathfd::PathFd;
    use crate::satisfy::satisfies;
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    fn set(a: &Alphabet, srcs: &[&str]) -> FdSet {
        let mut s = FdSet::new();
        for (i, src) in srcs.iter().enumerate() {
            s.push(
                format!("fd{i}"),
                PathFd::parse(a, src).unwrap().to_fd(a).unwrap(),
            );
        }
        s
    }

    #[test]
    fn trivial_fd_is_implied_by_the_empty_set() {
        let a = Alphabet::new();
        let s = FdSet::new();
        // Node agreement at a/b forces node agreement at its parent a,
        // which covers the value target: implied with no premises.
        let goal = PathFd::parse(&a, "/r : a/b[N] -> a")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s.implies(&goal, &RunLimits::UNLIMITED),
            Implication::Implied { by: vec![] }
        );
        // Value agreement does not lift to the parent: not trivial.
        let goal_v = PathFd::parse(&a, "/r : a/b -> a")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s.implies(&goal_v, &RunLimits::UNLIMITED),
            Implication::NotImplied
        );
    }

    #[test]
    fn augmentation_direction_is_sound() {
        let a = Alphabet::new();
        let s = set(&a, &["/s : c/d -> c/r"]);
        // More conditions: weaker, implied.
        let weaker = PathFd::parse(&a, "/s : c/d, c/x -> c/r")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s.implies(&weaker, &RunLimits::UNLIMITED),
            Implication::Implied { by: vec![0] }
        );
        // Fewer conditions: stronger, NOT implied.
        let s2 = set(&a, &["/s : c/d, c/x -> c/r"]);
        let stronger = PathFd::parse(&a, "/s : c/d -> c/r")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s2.implies(&stronger, &RunLimits::UNLIMITED),
            Implication::NotImplied
        );
    }

    #[test]
    fn naive_transitivity_is_rejected() {
        let a = Alphabet::new();
        // a → b, b → c does NOT imply a → c under existence semantics:
        // documents without any b satisfy both premises vacuously.
        let s = set(&a, &["/r : a -> b", "/r : b -> c"]);
        let goal = PathFd::parse(&a, "/r : a -> c").unwrap().to_fd(&a).unwrap();
        assert_eq!(
            s.implies(&goal, &RunLimits::UNLIMITED),
            Implication::NotImplied
        );
        // Semantic counterexample, for the record: premises hold, goal fails.
        let doc = parse_document(&a, "<r><a>1</a><c>1</c><a>1</a><c>2</c></r>").unwrap();
        assert!(satisfies(&s.fds[0], &doc));
        assert!(satisfies(&s.fds[1], &doc));
        assert!(!satisfies(&goal, &doc));
    }

    #[test]
    fn prefix_universe_transitivity_fires() {
        let a = Alphabet::new();
        // The intermediate a/b is a prefix of the goal's own paths, so both
        // traces realize it: the chain through node agreement is sound.
        let s = set(&a, &["/r : a/b/c -> a/b[N]", "/r : a/b[N] -> a/b/d"]);
        let goal = PathFd::parse(&a, "/r : a/b/c -> a/b/d")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s.implies(&goal, &RunLimits::UNLIMITED),
            Implication::Implied { by: vec![0, 1] }
        );
    }

    #[test]
    fn node_agreement_lifts_to_prefixes() {
        let a = Alphabet::new();
        let s = set(&a, &["/r : a/b[N] -> a/c"]);
        // N at a/b/x gives N at a/b (same nodes, same ancestors) — wait:
        // the goal's condition is at a/b/x with N; its prefix a/b then
        // agrees with N, firing the rule.
        let goal = PathFd::parse(&a, "/r : a/b/x[N] -> a/c")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s.implies(&goal, &RunLimits::UNLIMITED),
            Implication::Implied { by: vec![0] }
        );
        // Value agreement does not lift.
        let goal_v = PathFd::parse(&a, "/r : a/b/x -> a/c")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s.implies(&goal_v, &RunLimits::UNLIMITED),
            Implication::NotImplied
        );
    }

    #[test]
    fn prefix_extension_normalizes_contexts() {
        let a = Alphabet::new();
        // (r : w/p → w/q) implies (r/w : p → q): the trie shares the w
        // node, so any two traces under the same r/w node restrict to
        // traces of the premise with equal context and w-images.
        let s = set(&a, &["/r : w/p -> w/q"]);
        let goal = PathFd::parse(&a, "/r/w : p -> q")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s.implies(&goal, &RunLimits::UNLIMITED),
            Implication::Implied { by: vec![0] }
        );
        // The converse direction must NOT hold: (r/w : p → q) says nothing
        // across different w nodes.
        let s2 = set(&a, &["/r/w : p -> q"]);
        let goal2 = PathFd::parse(&a, "/r : w/p -> w/q")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        assert_eq!(
            s2.implies(&goal2, &RunLimits::UNLIMITED),
            Implication::NotImplied
        );
    }

    #[test]
    fn structural_duplicates_use_the_pattern_fallback() {
        let a = Alphabet::new();
        // Regex edges: outside the path formalism, but exact duplicates.
        use crate::fd::Fd;
        use regtree_pattern::{RegularTreePattern, Template};
        let make = || {
            let mut t = Template::new(a.clone());
            let c = t.add_child_str(t.root(), "s").unwrap();
            let x = t.add_child_str(c, "(a|b)").unwrap();
            let y = t.add_child_str(c, "r").unwrap();
            let pat = RegularTreePattern::new(t, vec![x, y]).unwrap();
            Fd::with_default_equality(pat, c).unwrap()
        };
        let mut s = FdSet::new();
        s.push("f", make());
        assert_eq!(
            s.implies(&make(), &RunLimits::UNLIMITED),
            Implication::Implied { by: vec![0] }
        );
    }

    #[test]
    fn minimize_drops_redundant_fds_with_provenance() {
        let a = Alphabet::new();
        let s = set(
            &a,
            &[
                "/s : c/e/d, c/e/m -> c/e/r",      // 0: kept
                "/s : c/e/d, c/e/m, c/x -> c/e/r", // 1: implied by 0
                "/s : c/e/d[N] -> c/e",            // 2: trivial (prefix lift)
                "/s : c/e/d -> c/e[N]",            // 3: kept
                "/s : c/e[N] -> c/e/m",            // 4: kept
                "/s : c/e/d -> c/e/m",             // 5: implied by 3+4
            ],
        );
        let min = s.minimize(&RunLimits::UNLIMITED);
        assert!(min.is_complete());
        assert_eq!(min.kept, vec![0, 3, 4]);
        assert_eq!(min.provenance(1), Some(&[0][..]));
        assert_eq!(min.provenance(2), Some(&[][..]));
        assert_eq!(min.provenance(5), Some(&[3, 4][..]));
        assert_eq!(min.provenance(0), None);
    }

    #[test]
    fn provenance_points_at_kept_fds_only() {
        let a = Alphabet::new();
        // 0 is an exact duplicate of 1; 1 of 2. Greedy order drops 0
        // (implied by 1) and 1 (implied by 2): 0's provenance must be
        // rewritten to the kept FD 2.
        let s = set(
            &a,
            &["/s : c/d -> c/r", "/s : c/d -> c/r", "/s : c/d -> c/r"],
        );
        let min = s.minimize(&RunLimits::UNLIMITED);
        assert_eq!(min.kept, vec![2]);
        assert_eq!(min.provenance(0), Some(&[2][..]));
        assert_eq!(min.provenance(1), Some(&[2][..]));
    }

    #[test]
    fn hostile_budget_degrades_to_partial() {
        let a = Alphabet::new();
        let s = set(
            &a,
            &[
                "/s : c/d -> c/r",
                "/s : c/d, c/x -> c/r",
                "/s : c/d, c/y -> c/r",
            ],
        );
        let min = s.minimize(&RunLimits::default().with_deadline_ms(0));
        assert!(!min.is_complete());
        // Nothing proven, nothing dropped: everything conservatively kept.
        assert_eq!(min.kept, vec![0, 1, 2]);
        assert!(min.dropped.is_empty());
        // And the unlimited run does find the drops.
        let full = s.minimize(&RunLimits::UNLIMITED);
        assert_eq!(full.kept, vec![0]);
    }

    #[test]
    fn dropped_fds_are_semantically_entailed() {
        let a = Alphabet::new();
        let s = set(
            &a,
            &[
                "/s : c/e/d, c/e/m -> c/e/r",
                "/s : c/e/d, c/e/m, c/x -> c/e/r",
                "/s : c/e/d -> c/e[N]",
                "/s : c/e/d -> c/e/m",
            ],
        );
        let min = s.minimize(&RunLimits::UNLIMITED);
        assert!(!min.dropped.is_empty());
        // Hand-checked documents: whenever the kept core holds, every
        // dropped FD holds (the proptest suite drives this at scale).
        for doc_src in [
            "<s><c><e><d>1</d><m>2</m><r>3</r></e></c><c><e><d>1</d><m>2</m><r>3</r></e></c></s>",
            "<s><c><e><d>1</d><m>2</m><r>3</r></e><x>9</x></c></s>",
            "<s><c><e><d>1</d></e></c></s>",
        ] {
            let doc = parse_document(&a, doc_src).unwrap();
            if min.kept.iter().all(|&i| satisfies(s.fd(i), &doc)) {
                for d in &min.dropped {
                    assert!(satisfies(s.fd(d.index), &doc), "doc: {doc_src}");
                }
            }
        }
    }
}
