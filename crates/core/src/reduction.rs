//! The PSPACE-hardness reduction of Proposition 1.
//!
//! The paper reduces regular-expression inclusion (`η ⊆ η'`?) to update–FD
//! independence: it builds a pattern pair `(FD, U)` such that `fd = (FD, c)`
//! is impacted by `U` **iff** `η ⊄ η'`. Figures 7–8 sketch the gadgets; the
//! figures' graphics are not in the text, so this module reconstructs them
//! faithfully to the proof narrative (see DESIGN.md E7):
//!
//! * `FD` (context `c` = the `A` node): each `B` branch carries an `F`
//!   condition leaf, a `G` target leaf, and a structural requirement — a
//!   `C`-child whose downward word is in `η'` terminated by `#`;
//! * `U` selects, inside a `B` branch that owns a *witness* `C`-subtree
//!   spelling `η·#`, a second (later) bare `C` child — the update site;
//! * the Figure-8 document has two `B` branches with value-equal `F`s and
//!   differing `G`s; branch 1 already FD-traces via a word of `L(η')`;
//!   branch 2 only has an `η`-witness (`w ∈ L(η) \ L(η')`) plus an empty
//!   `C`, so it does not trace — until an update grafts a `w'·#` path
//!   (`w' ∈ L(η')`) under the empty `C`, completing the second trace and
//!   violating the FD.
//!
//! When `η ⊆ η'` no such `w` exists and [`build_reduction`] returns `None`;
//! conversely a non-inclusion witness always yields a concrete impact,
//! which the tests verify end-to-end.

use rand::Rng;

use regtree_alphabet::{Alphabet, Symbol};
use regtree_automata::{inclusion, LangSampler, Nfa, Regex};
use regtree_pattern::{RegularTreePattern, Template};
use regtree_xml::{Document, TreeSpec};

use crate::fd::Fd;
use crate::update::{Update, UpdateClass, UpdateOp};

/// A fully materialized reduction instance.
#[derive(Clone, Debug)]
pub struct ReductionInstance {
    /// The functional dependency `(FD, c)`.
    pub fd: Fd,
    /// The update class `U`.
    pub class: UpdateClass,
    /// The Figure-8 document: satisfies `fd`, updated by `U`.
    pub doc: Document,
    /// A concrete update `q ∈ U` whose application violates `fd`.
    pub update: Update,
    /// The non-inclusion witness `w ∈ L(η) \ L(η')`.
    pub witness_word: Vec<Symbol>,
}

/// Builds the `(FD, U)` gadget pair for `(η, η')`. Independent of any
/// document; usable for measuring the IC on hardness instances.
pub fn build_patterns(alphabet: &Alphabet, eta: &Regex, eta_prime: &Regex) -> (Fd, UpdateClass) {
    let c_lbl = Regex::label(alphabet, "C");
    let hash = Regex::label(alphabet, "#");

    // FD: context A; one B branch with F (condition), G (target) and the
    // structural C/η'/# leaf.
    let mut t = Template::new(alphabet.clone());
    let ctx = t.add_child_str(t.root(), "A").expect("proper");
    let b = t.add_child_str(ctx, "B").expect("proper");
    let f = t.add_child_str(b, "F").expect("proper");
    let g = t.add_child_str(b, "G").expect("proper");
    let _h = t
        .add_child(
            b,
            Regex::seq([c_lbl.clone(), eta_prime.clone(), hash.clone()]),
        )
        .expect("η' is proper in the gadget");
    let pattern = RegularTreePattern::new(t, vec![f, g]).expect("selected in template");
    let fd = Fd::with_default_equality(pattern, ctx).expect("context dominates");

    // U: inside an A/B branch owning a C/η/# witness subtree, select a
    // later bare C child (a leaf of T_U, as the criterion requires).
    let mut tu = Template::new(alphabet.clone());
    let x = tu.add_child_str(tu.root(), "A").expect("proper");
    let y = tu.add_child_str(x, "B").expect("proper");
    let _wit = tu
        .add_child(y, Regex::seq([c_lbl.clone(), eta.clone(), hash]))
        .expect("η is proper in the gadget");
    let sel = tu.add_child(y, c_lbl).expect("proper");
    let class = UpdateClass::new(RegularTreePattern::monadic(tu, sel).expect("valid"))
        .expect("selected node is a leaf");

    (fd, class)
}

/// Chains a word of labels into a descending element spine ending with `#`.
fn chain_spec(alphabet: &Alphabet, word: &[Symbol]) -> TreeSpec {
    let hash = TreeSpec::elem(alphabet.intern("#"), vec![]);
    word.iter()
        .rev()
        .fold(hash, |acc, &s| TreeSpec::elem(s, vec![acc]))
}

/// Builds the complete Figure-8 instance, or `None` when `η ⊆ η'`
/// (no impact exists, per Proposition 1).
pub fn build_reduction<R: Rng>(
    alphabet: &Alphabet,
    eta: &Regex,
    eta_prime: &Regex,
    rng: &mut R,
) -> Option<ReductionInstance> {
    // w ∈ L(η) \ L(η'): the non-inclusion witness.
    let w: Vec<Symbol> = match inclusion::regex_included(eta, eta_prime, &[]) {
        Ok(()) => return None,
        Err(word) => word.into_iter().map(Symbol).collect(),
    };
    // u' ∈ L(η') for branch 1's witness, w' ∈ L(η') for the grafted path.
    let sampler = LangSampler::new(&Nfa::from_regex(eta_prime), &[]);
    let u_prime: Vec<Symbol> = sampler.sample(rng, 3)?.into_iter().map(Symbol).collect();
    let w_prime: Vec<Symbol> = sampler.sample(rng, 3)?.into_iter().map(Symbol).collect();

    let (fd, class) = build_patterns(alphabet, eta, eta_prime);

    // The Figure-8 document.
    let branch1 = TreeSpec::elem_named(
        alphabet,
        "B",
        vec![
            TreeSpec::elem_named(alphabet, "F", vec![TreeSpec::text("v")]),
            TreeSpec::elem_named(alphabet, "G", vec![TreeSpec::text("1")]),
            TreeSpec::elem_named(alphabet, "C", vec![chain_spec(alphabet, &u_prime)]),
        ],
    );
    let branch2 = TreeSpec::elem_named(
        alphabet,
        "B",
        vec![
            TreeSpec::elem_named(alphabet, "F", vec![TreeSpec::text("v")]),
            TreeSpec::elem_named(alphabet, "G", vec![TreeSpec::text("2")]),
            TreeSpec::elem_named(alphabet, "C", vec![chain_spec(alphabet, &w)]),
            TreeSpec::elem_named(alphabet, "C", vec![]),
        ],
    );
    let doc = regtree_xml::document_from_specs(
        alphabet.clone(),
        &[TreeSpec::elem_named(alphabet, "A", vec![branch1, branch2])],
    );

    // q: graft w'·# under the selected (empty) C node.
    let update = Update::new(
        class.clone(),
        UpdateOp::AppendChild(chain_spec(alphabet, &w_prime)),
    );

    Some(ReductionInstance {
        fd,
        class,
        doc,
        update,
        witness_word: w,
    })
}

/// The gadget alphabet of the proof (`Σ = {A, B, C, D, F, G, #}`).
pub fn gadget_alphabet() -> Alphabet {
    Alphabet::with_labels(["A", "B", "C", "D", "F", "G", "#"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfy::satisfies;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use regtree_automata::parse_regex;

    fn regex(a: &Alphabet, src: &str) -> Regex {
        parse_regex(a, src).unwrap()
    }

    #[test]
    fn non_inclusion_yields_concrete_impact() {
        let a = gadget_alphabet();
        let mut rng = SmallRng::seed_from_u64(1);
        // η = D+, η' = D/D+ : ⊆ fails (witness "D").
        let inst = build_reduction(&a, &regex(&a, "D+"), &regex(&a, "D/D+"), &mut rng).unwrap();
        assert!(
            satisfies(&inst.fd, &inst.doc),
            "Figure-8 doc must satisfy fd"
        );
        let after = inst.update.apply_cloned(&inst.doc).unwrap();
        assert!(
            !satisfies(&inst.fd, &after),
            "update must violate fd:\n{}",
            regtree_xml::to_xml(&after)
        );
        assert_eq!(inst.witness_word.len(), 1);
    }

    #[test]
    fn inclusion_yields_no_instance() {
        let a = gadget_alphabet();
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(build_reduction(&a, &regex(&a, "D"), &regex(&a, "D|B"), &mut rng).is_none());
        assert!(
            build_reduction(&a, &regex(&a, "(B/D)+"), &regex(&a, "(B|D)+"), &mut rng).is_none()
        );
    }

    #[test]
    fn several_regex_pairs_behave_per_proposition1() {
        let a = gadget_alphabet();
        let mut rng = SmallRng::seed_from_u64(3);
        let cases = [
            ("B*/D", "B*/D", true),
            ("B/B", "B+", true),
            ("B+", "B/B", false),
            ("(B|D)+", "B+ | D+", false),
            ("D/B?", "D/B", false),
        ];
        for (eta, etap, included) in cases {
            let inst = build_reduction(&a, &regex(&a, eta), &regex(&a, etap), &mut rng);
            assert_eq!(inst.is_none(), included, "{eta} vs {etap}");
            if let Some(inst) = inst {
                assert!(satisfies(&inst.fd, &inst.doc), "{eta} vs {etap}: pre");
                let after = inst.update.apply_cloned(&inst.doc).unwrap();
                assert!(!satisfies(&inst.fd, &after), "{eta} vs {etap}: post");
            }
        }
    }

    #[test]
    fn update_class_selects_exactly_the_empty_c() {
        let a = gadget_alphabet();
        let mut rng = SmallRng::seed_from_u64(4);
        let inst = build_reduction(&a, &regex(&a, "D"), &regex(&a, "B"), &mut rng).unwrap();
        let nodes = inst.class.selected_nodes(&inst.doc);
        assert_eq!(nodes.len(), 1);
        assert_eq!(inst.doc.label_name(nodes[0]).as_ref(), "C");
        assert!(inst.doc.children(nodes[0]).is_empty());
    }

    #[test]
    fn ic_flags_the_reduction_patterns() {
        // The IC cannot prove independence on reduction instances with
        // η ⊄ η' (there IS an impact), so it must return Unknown.
        let a = gadget_alphabet();
        let (fd, class) = build_patterns(&a, &regex(&a, "D"), &regex(&a, "B"));
        let analysis = crate::independence::check_independence_internal(&fd, &class, None);
        assert!(!analysis.verdict.is_independent());
    }
}
