//! Impact-scoped incremental FD checking over versioned documents.
//!
//! The naive loop after every update is: clone the tree, apply, rebuild
//! the label index, re-enumerate every FD's traces from scratch. The
//! [`IncrementalChecker`] replaces all four steps. Updates are applied as
//! deltas through [`VersionedDocument`] (in place, index patched as it
//! goes), and each FD's recheck is scoped by what the [`Delta`] can have
//! touched:
//!
//! * **Unaffected** — the delta provably cannot change any context's
//!   verdict-relevant surroundings (see below): the previous verdict is
//!   carried forward ([`RecheckScope::Unaffected`], counted in
//!   `RunMetrics::verdicts_reused`).
//! * **Localized** — the FD held before and its template is anchored on
//!   the context (the [`crate::FdBuilder`] shape): only the affected
//!   contexts' buckets are dropped and re-derived with an anchored
//!   enumeration ([`regtree_pattern::project_mappings_anchored_governed`]),
//!   leaving every other context's buckets untouched
//!   ([`RecheckScope::Localized`]).
//! * **Global** — opaque deltas (custom surgery), non-anchored templates,
//!   or a prior `Violated`/`Unknown` verdict with affected contexts: a
//!   full re-verification runs ([`RecheckScope::Global`]).
//!
//! # How a context becomes *affected*
//!
//! An alive node's root path never changes under subtree edits, and the
//! mapping set over pre-existing nodes is invariant (document order is
//! relative, branch-child identity is stable). A context image `c` can
//! therefore only change its verdict contribution through one of:
//!
//! 1. **Value relevance** — an edit changed the subtree value of a
//!    `V`-equality condition or target image under `c`. Detected by
//!    running the *selected-path* automaton (union of the `c`→selected
//!    edge languages, `V`-equality nodes only) down the path from `c` to
//!    each edit site: any accepting prefix names an image whose value
//!    changed.
//! 2. **Mapping relevance** — a grafted or detached subtree under `c`
//!    contains an image of some template node. Detected by running the
//!    *reach* automaton (union of the `c`→node path languages over all
//!    template nodes below the context) from `c` to the edit site and on
//!    into the inserted/removed subtree, looking for an accepting state.
//!    Detached subtrees keep their labels and child lists, so the walk
//!    reconstructs the pre-edit words exactly.
//! 3. **Birth or death** — `c` itself sits inside an inserted subtree or
//!    a removed one, both found by running the context automaton over the
//!    subtree's nodes (labels and child lists survive a detach, as in
//!    mechanism 2). Deaths are detected from the delta itself, not from
//!    retained state: a previously-satisfied FD's buckets would reveal
//!    them too, but a `Violated`/`Unknown` verdict retains no buckets and
//!    may hinge entirely on contexts the delta just deleted.
//!
//! Everything else is provably irrelevant, which is what lets a root-level
//! context (`session`) stay **Unaffected** under edits that only touch
//! paths outside the FD's selected languages.

use std::collections::HashSet;

use regtree_automata::{EdgeDfa, Nfa, Regex, StateId, EDGE_DEAD};
use regtree_pattern::{project_mappings_anchored_governed, Template, TemplateNodeId};
use regtree_runtime::{
    Budget, CancelToken, EventKind, Resource, RunLimits, RunMetrics, SpanKind, Stopwatch,
    TraceHandle,
};
use regtree_xml::{Delta, Document, NodeId, VersionedDocument};

use crate::fd::{EqualityType, Fd};
use crate::satisfy::{check_fd_governed_retaining, fd_keep, BucketState, FdOutcome, FdViolation};
use crate::update::{ApplyError, Update};

/// How one FD's verdict was re-established for one delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecheckScope {
    /// The delta provably cannot affect the FD; the verdict was carried
    /// forward without touching the document.
    Unaffected,
    /// Only the affected contexts were re-enumerated (anchored search);
    /// every other context's buckets were reused.
    Localized,
    /// A full document re-verification ran.
    Global,
}

/// Retained per-FD verdict plus whatever state makes the next recheck
/// cheaper.
enum FdState {
    /// The FD holds; the bucket structure is kept for context-level surgery.
    Satisfied(BucketState),
    /// A concrete violation was found (its witness nodes may since have
    /// been edited; the witness is from the verdict's document version).
    Violated(FdViolation),
    /// The verdict run was cut short.
    Unknown(Resource),
}

impl FdState {
    fn outcome(&self) -> FdOutcome {
        match self {
            FdState::Satisfied(_) => FdOutcome::Satisfied,
            FdState::Violated(v) => FdOutcome::Violated(v.clone()),
            FdState::Unknown(r) => FdOutcome::Unknown { exhausted: *r },
        }
    }

    fn from_check(outcome: FdOutcome, buckets: Option<BucketState>) -> FdState {
        match (outcome, buckets) {
            (FdOutcome::Satisfied, Some(b)) => FdState::Satisfied(b),
            (FdOutcome::Satisfied, None) => unreachable!("satisfied checks retain buckets"),
            (FdOutcome::Violated(v), _) => FdState::Violated(v),
            (FdOutcome::Unknown { exhausted, .. }, _) => FdState::Unknown(exhausted),
        }
    }
}

/// Report of one [`IncrementalChecker::apply_and_recheck`] round.
#[derive(Clone, Debug)]
pub struct RecheckReport {
    /// The nodes the update touched (empty for [`IncrementalChecker::recheck_delta`]).
    pub touched: Vec<NodeId>,
    /// Per FD (input order): how far the recheck had to reach.
    pub scopes: Vec<RecheckScope>,
    /// Per FD (input order): the verdict after the update.
    pub outcomes: Vec<FdOutcome>,
    /// Merged work counters of this round.
    pub metrics: RunMetrics,
}

impl RecheckReport {
    /// Do all FDs still hold? (`Unknown` counts as not-satisfied.)
    pub fn all_satisfied(&self) -> bool {
        self.outcomes.iter().all(FdOutcome::is_satisfied)
    }
}

/// Incremental FD checking over a stream of updates: verdicts and bucket
/// state are retained between updates and re-derived only where a delta
/// can have invalidated them. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use regtree_core::{IncrementalChecker, FdBuilder, RecheckScope, Update, UpdateOp};
/// use regtree_core::update_class_from_edges;
/// use regtree_alphabet::Alphabet;
/// use regtree_xml::{parse_document, VersionedDocument};
///
/// let a = Alphabet::new();
/// let fd = FdBuilder::new(a.clone())
///     .context("session")
///     .condition("candidate/exam/discipline")
///     .target("candidate/exam/rank")
///     .build().unwrap();
/// let doc = parse_document(
///     &a,
///     "<session><candidate><exam><discipline>m</discipline><rank>1</rank></exam>\
///      <level>B</level></candidate></session>",
/// ).unwrap();
/// let mut vdoc = VersionedDocument::new(doc);
/// let mut checker = IncrementalChecker::new(vec![fd], &vdoc);
/// assert!(checker.all_satisfied());
///
/// // Level edits cannot touch the FD: the verdict is carried forward.
/// let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
/// let up = Update::new(class, UpdateOp::SetText("C".into()));
/// let report = checker.apply_and_recheck(&mut vdoc, &up).unwrap();
/// assert_eq!(report.scopes, vec![RecheckScope::Unaffected]);
/// assert!(report.all_satisfied());
/// ```
pub struct IncrementalChecker {
    fds: Vec<Fd>,
    states: Vec<FdState>,
    scopes: Vec<Option<ContextScope>>,
    limits: RunLimits,
    cancel: Option<CancelToken>,
    trace: TraceHandle,
    initial_metrics: RunMetrics,
}

impl IncrementalChecker {
    /// Runs an initial full verification of every FD (unlimited budget) and
    /// retains the verdicts plus bucket state.
    pub fn new(fds: Vec<Fd>, vdoc: &VersionedDocument) -> IncrementalChecker {
        IncrementalChecker::with_governance(
            fds,
            vdoc,
            RunLimits::default(),
            TraceHandle::default(),
            None,
        )
    }

    /// [`IncrementalChecker::new`] with explicit limits, tracing, and an
    /// optional cancellation token; the initial verification and every
    /// later recheck run under the same governance (the deadline is
    /// re-armed per recheck round, shared across its FDs) until
    /// [`IncrementalChecker::set_limits`] /
    /// [`IncrementalChecker::set_cancel`] replace it.
    pub fn with_governance(
        fds: Vec<Fd>,
        vdoc: &VersionedDocument,
        limits: RunLimits,
        trace: TraceHandle,
        cancel: Option<CancelToken>,
    ) -> IncrementalChecker {
        let mut initial_metrics = RunMetrics::default();
        let states = fds
            .iter()
            .map(|fd| {
                let mut budget = round_budget(&limits, cancel.as_ref(), &trace);
                let (outcome, buckets) =
                    check_fd_governed_retaining(fd, vdoc.doc(), vdoc.index(), &mut budget);
                initial_metrics.merge(budget.metrics());
                FdState::from_check(outcome, buckets)
            })
            .collect();
        let scopes = fds.iter().map(ContextScope::build).collect();
        IncrementalChecker {
            fds,
            states,
            scopes,
            limits,
            cancel,
            trace,
            initial_metrics,
        }
    }

    /// Replaces the limits governing every later recheck. Retained
    /// verdicts and bucket state are kept: carrying a verdict forward is
    /// sound under any limits, and a verdict left `Unknown` by tighter
    /// limits is re-derived the next time its contexts are affected.
    pub fn set_limits(&mut self, limits: RunLimits) {
        self.limits = limits;
    }

    /// Attaches (or, with `None`, detaches) a cancellation token polled by
    /// every later recheck. A cancelled round degrades its in-flight FD
    /// verdicts to `Unknown` with [`Resource::Cancelled`], exactly like
    /// any other budget exhaustion.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Work counters accumulated by the initial full verification (the
    /// per-update counters live on each [`RecheckReport`]).
    pub fn initial_metrics(&self) -> &RunMetrics {
        &self.initial_metrics
    }

    /// The FDs under maintenance, in input order.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Current verdicts, in input order.
    pub fn outcomes(&self) -> Vec<FdOutcome> {
        self.states.iter().map(FdState::outcome).collect()
    }

    /// Do all FDs currently hold?
    pub fn all_satisfied(&self) -> bool {
        self.outcomes().iter().all(FdOutcome::is_satisfied)
    }

    /// Applies `update` as a delta and rechecks every FD at the smallest
    /// sound scope. The update's application errors leave the checker
    /// usable (partial edits are in the document, and the *next* recheck
    /// will see their delta).
    pub fn apply_and_recheck(
        &mut self,
        vdoc: &mut VersionedDocument,
        update: &Update,
    ) -> Result<RecheckReport, ApplyError> {
        let touched = {
            let _span = self.trace.span(SpanKind::DeltaApply, "");
            update.apply_versioned(vdoc)?
        };
        let delta = vdoc.take_delta();
        let mut report = self.recheck_delta(vdoc, &delta);
        report.touched = touched;
        report.metrics.deltas_applied += 1;
        Ok(report)
    }

    /// Rechecks every FD against a delta the caller already applied
    /// through `vdoc`'s delta methods ([`VersionedDocument::take_delta`]).
    ///
    /// The delta must correspond to *one* logical update: a batch in which
    /// a removal's former parent was itself detached by a later edit
    /// cannot be scoped and falls back to a global recheck.
    pub fn recheck_delta(&mut self, vdoc: &VersionedDocument, delta: &Delta) -> RecheckReport {
        let search = Stopwatch::start();
        let _span = self.trace.span(SpanKind::ScopeClassify, "");
        let doc = vdoc.doc();
        let index = vdoc.index();
        let deadline_at = Budget::new(&self.limits).deadline_at();
        let mut metrics = RunMetrics::default();
        let mut scopes = Vec::with_capacity(self.fds.len());
        let mut outcomes = Vec::with_capacity(self.fds.len());

        let IncrementalChecker {
            fds,
            states,
            scopes: fd_scopes,
            limits,
            cancel,
            trace,
            ..
        } = self;
        for ((fd, state), fd_scope) in fds.iter().zip(states.iter_mut()).zip(fd_scopes.iter()) {
            let (scope, affected) = classify(fd_scope.as_ref(), state, doc, delta);
            match scope {
                RecheckScope::Unaffected => {
                    metrics.verdicts_reused += 1;
                    trace.event(EventKind::ScopeUnaffected);
                }
                RecheckScope::Localized => {
                    let mut budget =
                        round_budget(limits, cancel.as_ref(), trace).with_deadline_at(deadline_at);
                    recheck_localized(fd, state, doc, index, &affected, &mut budget);
                    metrics.merge(&budget.into_metrics());
                    metrics.rechecks_localized += 1;
                    trace.event(EventKind::ScopeLocalized);
                }
                RecheckScope::Global => {
                    let mut budget =
                        round_budget(limits, cancel.as_ref(), trace).with_deadline_at(deadline_at);
                    let (outcome, buckets) =
                        check_fd_governed_retaining(fd, doc, index, &mut budget);
                    *state = FdState::from_check(outcome, buckets);
                    metrics.merge(&budget.into_metrics());
                    metrics.rechecks_full += 1;
                    trace.event(EventKind::ScopeGlobal);
                }
            }
            scopes.push(scope);
            outcomes.push(state.outcome());
        }
        metrics.search_nanos = search.elapsed_nanos();
        RecheckReport {
            touched: Vec::new(),
            scopes,
            outcomes,
            metrics,
        }
    }
}

/// A budget under the checker's governance: limits, optional cancellation
/// token, and tracing (callers layer a shared deadline on top).
fn round_budget(limits: &RunLimits, cancel: Option<&CancelToken>, trace: &TraceHandle) -> Budget {
    let mut budget = Budget::new(limits).with_trace(trace.clone());
    if let Some(token) = cancel {
        budget = budget.with_cancel(token.clone());
    }
    budget
}

/// Is the FD's template anchored on its context node (the root's only
/// child, everything else below it — the [`crate::FdBuilder`] shape)?
fn anchored_on_context(fd: &Fd) -> bool {
    fd.template().children(fd.template().root()) == std::slice::from_ref(&fd.context())
}

/// Picks the smallest sound recheck scope for one FD against one delta,
/// returning the affected context images alongside (for the localized
/// path).
fn classify(
    scope: Option<&ContextScope>,
    state: &FdState,
    doc: &Document,
    delta: &Delta,
) -> (RecheckScope, Vec<NodeId>) {
    if delta.is_empty() {
        return (RecheckScope::Unaffected, Vec::new());
    }
    if delta.opaque {
        return (RecheckScope::Global, Vec::new());
    }
    // Non-anchored templates can match nodes outside any context's subtree,
    // so per-context scoping is unsound for them.
    let Some(scope) = scope else {
        return (RecheckScope::Global, Vec::new());
    };
    let Some(affected) = affected_contexts(scope, doc, delta) else {
        return (RecheckScope::Global, Vec::new());
    };
    // Deaths come from the delta's removed-subtree walk, so they are seen
    // for every prior verdict; the bucket scan is a belt-and-suspenders
    // double check for the satisfied case (buckets name the exact context
    // set the verdict was derived from).
    let contexts_died = affected.deaths
        || match state {
            FdState::Satisfied(b) => b.contexts().any(|c| !doc.is_alive(c)),
            _ => false,
        };
    if affected.contexts.is_empty() && !contexts_died {
        // Nothing the delta touched can reach any context of this FD: the
        // verdict (whatever it is) still stands.
        return (RecheckScope::Unaffected, Vec::new());
    }
    match state {
        FdState::Satisfied(_) => (RecheckScope::Localized, affected.contexts),
        _ => (RecheckScope::Global, Vec::new()),
    }
}

/// Context-level bucket surgery: drop the affected (and dead) contexts'
/// buckets, re-enumerate only those contexts with an anchored search, and
/// fold the fresh projections back in.
fn recheck_localized(
    fd: &Fd,
    state: &mut FdState,
    doc: &Document,
    index: &regtree_xml::LabelIndex,
    affected: &[NodeId],
    budget: &mut Budget,
) {
    let mut next: Option<FdState> = None;
    if let FdState::Satisfied(buckets) = state {
        let dead: Vec<NodeId> = buckets.contexts().filter(|&c| !doc.is_alive(c)).collect();
        for &c in dead.iter().chain(affected.iter()) {
            buckets.remove_context(c);
        }
        let keep = fd_keep(fd);
        match project_mappings_anchored_governed(
            fd.template(),
            doc,
            index,
            fd.context(),
            affected,
            &keep,
            budget,
        ) {
            Err(r) => next = Some(FdState::Unknown(r)),
            Ok(projections) => {
                for proj in &projections {
                    if let Err(v) = buckets.insert(fd, doc, proj) {
                        next = Some(FdState::Violated(v));
                        break;
                    }
                }
            }
        }
    } else {
        debug_assert!(false, "localized recheck requires a satisfied state");
        next = Some(FdState::Unknown(Resource::Memo));
    }
    if let Some(s) = next {
        *state = s;
    }
}

/// A path language with a DFA fast path (subset construction may exceed
/// its cap or the language may be degenerate, in which case the NFA set
/// simulation is used).
struct PathLang {
    nfa: Nfa,
    dfa: Option<EdgeDfa>,
}

/// How many DFA states the scoping automata may spend; beyond the cap the
/// NFA simulation is used instead (same answers, more work per step).
const SCOPE_DFA_CAP: usize = 64;

#[derive(Clone)]
enum LangState {
    Dfa(StateId),
    Nfa(Vec<StateId>),
}

impl PathLang {
    fn new(regex: &Regex) -> PathLang {
        let nfa = Nfa::from_regex(regex);
        let dfa = EdgeDfa::from_nfa(&nfa, SCOPE_DFA_CAP);
        PathLang { nfa, dfa }
    }

    fn start(&self) -> LangState {
        match &self.dfa {
            Some(d) => LangState::Dfa(d.start()),
            None => LangState::Nfa(self.nfa.initial_set()),
        }
    }

    fn step(&self, st: &LangState, letter: u32) -> LangState {
        match st {
            LangState::Dfa(s) => {
                LangState::Dfa(self.dfa.as_ref().expect("dfa state").step(*s, letter))
            }
            LangState::Nfa(set) => LangState::Nfa(self.nfa.step(set, letter)),
        }
    }

    fn dead(&self, st: &LangState) -> bool {
        match st {
            LangState::Dfa(s) => {
                *s == EDGE_DEAD || !self.dfa.as_ref().expect("dfa state").is_live(*s)
            }
            LangState::Nfa(set) => set.is_empty(),
        }
    }

    fn accepts(&self, st: &LangState) -> bool {
        match st {
            LangState::Dfa(s) => self.dfa.as_ref().expect("dfa state").is_accept(*s),
            LangState::Nfa(set) => self.nfa.set_accepts(set),
        }
    }
}

/// Precomputed per-FD scoping automata (anchored templates only).
struct ContextScope {
    /// The context edge language (root → context image).
    context: PathLang,
    /// Union of the context→selected path languages over the `V`-equality
    /// conditions and target; `None` when every selected node uses node
    /// equality (then in-place value edits can never matter).
    value_sel: Option<PathLang>,
    /// Union of the context→node path languages over *all* template nodes
    /// strictly below the context; `None` when there are none.
    reach: Option<PathLang>,
}

impl ContextScope {
    fn build(fd: &Fd) -> Option<ContextScope> {
        if !anchored_on_context(fd) {
            return None;
        }
        let t = fd.template();
        let ctx = fd.context();
        let context = PathLang::new(t.edge_regex(ctx)?);

        let selected: Vec<TemplateNodeId> = fd
            .conditions()
            .iter()
            .copied()
            .chain([fd.target()])
            .collect();
        let value_words: Vec<Regex> = selected
            .iter()
            .zip(fd.equality())
            .filter(|&(_, eq)| *eq == EqualityType::Value)
            .map(|(&n, _)| path_regex(t, ctx, n))
            .collect();
        let value_sel = if value_words.is_empty() {
            None
        } else {
            Some(PathLang::new(&Regex::alt(value_words)))
        };

        let reach_words: Vec<Regex> = t
            .preorder()
            .into_iter()
            .filter(|&n| t.is_ancestor(ctx, n))
            .map(|n| path_regex(t, ctx, n))
            .collect();
        let reach = if reach_words.is_empty() {
            None
        } else {
            Some(PathLang::new(&Regex::alt(reach_words)))
        };

        Some(ContextScope {
            context,
            value_sel,
            reach,
        })
    }
}

/// The concatenation of the edge regexes along the template path `from`→`n`
/// (ε when `n == from`).
fn path_regex(t: &Template, from: TemplateNodeId, n: TemplateNodeId) -> Regex {
    let mut parts = Vec::new();
    let mut cur = n;
    while cur != from {
        parts.push(
            t.edge_regex(cur)
                .expect("below-context node has an incoming edge")
                .clone(),
        );
        cur = t.parent(cur).expect("from is an ancestor");
    }
    parts.reverse();
    Regex::seq(parts)
}

/// The root→`n` path, root excluded, `n` included; `None` when `n` hangs
/// off a detached subtree.
fn path_from_root(doc: &Document, n: NodeId) -> Option<Vec<NodeId>> {
    let mut path = Vec::new();
    let mut cur = n;
    while cur != doc.root() {
        path.push(cur);
        cur = doc.parent(cur)?;
    }
    path.reverse();
    Some(path)
}

/// Runs the context automaton down `path`, returning every `(index, node)`
/// at which it accepts — the FD's context images among the ancestors of
/// the path's endpoint.
fn context_candidates(
    scope: &ContextScope,
    doc: &Document,
    path: &[NodeId],
) -> Vec<(usize, NodeId)> {
    let mut out = Vec::new();
    let mut st = scope.context.start();
    for (i, &n) in path.iter().enumerate() {
        st = scope.context.step(&st, doc.label(n).0);
        if scope.context.dead(&st) {
            break;
        }
        if scope.context.accepts(&st) {
            out.push((i, n));
        }
    }
    out
}

/// The scoping verdict for one FD × delta: which alive context images the
/// delta may have changed, and whether any context image died with a
/// removed subtree.
struct Affected {
    /// Alive context images whose verdict-relevant surroundings changed,
    /// sorted by node id.
    contexts: Vec<NodeId>,
    /// A context image sat inside a removed subtree (its traces are all
    /// gone, so any prior verdict that counted them is stale).
    deaths: bool,
}

/// Collects every context image whose verdict-relevant surroundings the
/// delta may have changed (see the module docs for the three mechanisms
/// and the soundness argument). Returns `None` when the delta cannot be
/// scoped — a removal whose former parent was itself detached by a later
/// edit of the same batch.
fn affected_contexts(scope: &ContextScope, doc: &Document, delta: &Delta) -> Option<Affected> {
    let mut out: HashSet<NodeId> = HashSet::new();

    // (1) Value relevance: a V-equality image on the path down to an edit
    // site has its subtree value changed by that edit.
    if let Some(sel) = &scope.value_sel {
        let mut seen: HashSet<NodeId> = HashSet::new();
        for &site in delta.sites.iter().chain(delta.value_sites.iter()) {
            if !doc.is_alive(site) || !seen.insert(site) {
                continue;
            }
            let Some(path) = path_from_root(doc, site) else {
                continue;
            };
            for (i, c) in context_candidates(scope, doc, &path) {
                if out.contains(&c) {
                    continue;
                }
                let mut st = sel.start();
                // A selected node equal to the context itself (ε word):
                // any edit at-or-below `c` changes its subtree value.
                if sel.accepts(&st) {
                    out.insert(c);
                    continue;
                }
                for &x in &path[i + 1..] {
                    st = sel.step(&st, doc.label(x).0);
                    if sel.accepts(&st) {
                        out.insert(c);
                        break;
                    }
                    if sel.dead(&st) {
                        break;
                    }
                }
            }
        }
    }

    // (2) Mapping relevance: a grafted/detached subtree under a context
    // contains a node whose context-relative word completes some template
    // node's path language — i.e. a trace gained or lost an image there.
    if let Some(reach) = &scope.reach {
        let inserted = delta.inserted.iter().filter_map(|&r| {
            if doc.is_alive(r) {
                doc.parent(r).map(|p| (p, r))
            } else {
                // Detached again by a later edit of the same batch; the
                // outer removal's pair covers the region.
                None
            }
        });
        for (parent, root) in delta.removed.iter().copied().chain(inserted) {
            if !doc.is_alive(parent) {
                // The removal site itself was detached later in the batch:
                // the pre-edit attachment path is gone, so scoping is
                // impossible. Fall back to a global recheck.
                return None;
            }
            let Some(path) = path_from_root(doc, parent) else {
                continue;
            };
            'candidates: for (i, c) in context_candidates(scope, doc, &path) {
                if out.contains(&c) {
                    continue;
                }
                // State after reading the word c→parent.
                let mut st = reach.start();
                for &x in &path[i + 1..] {
                    st = reach.step(&st, doc.label(x).0);
                    if reach.dead(&st) {
                        continue 'candidates;
                    }
                }
                // Walk the subtree (labels and child lists survive a
                // detach) looking for an accepting word.
                let mut stack = vec![(root, st)];
                while let Some((n, above)) = stack.pop() {
                    let here = reach.step(&above, doc.label(n).0);
                    if reach.dead(&here) {
                        continue;
                    }
                    if reach.accepts(&here) {
                        out.insert(c);
                        continue 'candidates;
                    }
                    for &child in doc.children(n) {
                        stack.push((child, here.clone()));
                    }
                }
            }
        }
    }

    // (3) Births: context images inside inserted subtrees (their traces
    // are all new, so they are affected outright).
    for &root in &delta.inserted {
        if !doc.is_alive(root) {
            continue;
        }
        let Some(path) = path_from_root(doc, root) else {
            continue;
        };
        // Context automaton state above the inserted root.
        let mut st = scope.context.start();
        for &n in &path[..path.len() - 1] {
            st = scope.context.step(&st, doc.label(n).0);
            if scope.context.dead(&st) {
                break;
            }
        }
        if scope.context.dead(&st) {
            continue;
        }
        let mut stack = vec![(root, st)];
        while let Some((n, above)) = stack.pop() {
            let here = scope.context.step(&above, doc.label(n).0);
            if scope.context.dead(&here) {
                continue;
            }
            if scope.context.accepts(&here) {
                out.insert(n);
            }
            for &child in doc.children(n) {
                stack.push((child, here.clone()));
            }
        }
    }

    // (3b) Deaths: context images inside removed subtrees, found by the
    // same walk as births (labels and child lists survive the detach).
    // The retained buckets only reveal these for a previously-satisfied
    // FD; the structural scan sees them for any prior verdict.
    let mut deaths = false;
    'removed: for &(parent, root) in &delta.removed {
        if !doc.is_alive(parent) {
            // The removal site itself was detached later in the batch:
            // the pre-edit attachment path is gone, so scoping is
            // impossible. Fall back to a global recheck.
            return None;
        }
        let Some(path) = path_from_root(doc, parent) else {
            continue;
        };
        // Context automaton state after the word root→parent.
        let mut st = scope.context.start();
        for &n in &path {
            st = scope.context.step(&st, doc.label(n).0);
            if scope.context.dead(&st) {
                continue 'removed;
            }
        }
        let mut stack = vec![(root, st)];
        while let Some((n, above)) = stack.pop() {
            let here = scope.context.step(&above, doc.label(n).0);
            if scope.context.dead(&here) {
                continue;
            }
            if scope.context.accepts(&here) {
                deaths = true;
                break 'removed;
            }
            for &child in doc.children(n) {
                stack.push((child, here.clone()));
            }
        }
    }

    let mut contexts: Vec<NodeId> = out.into_iter().collect();
    contexts.sort_unstable_by_key(|n| n.0);
    Some(Affected { contexts, deaths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdBuilder;
    use crate::revalidate::revalidate_full;
    use crate::update::{update_class_from_edges, UpdateOp};
    use regtree_alphabet::Alphabet;
    use regtree_xml::{parse_document, TreeSpec};

    fn fd_rank(a: &Alphabet) -> Fd {
        FdBuilder::new(a.clone())
            .context("session")
            .condition("candidate/exam/discipline")
            .target("candidate/exam/rank")
            .build()
            .unwrap()
    }

    fn doc(a: &Alphabet) -> Document {
        parse_document(
            a,
            "<session>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam><level>B</level></candidate>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam><level>A</level></candidate>\
             </session>",
        )
        .unwrap()
    }

    #[test]
    fn disjoint_updates_carry_the_verdict() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let mut v = VersionedDocument::new(doc(&a));
        let mut checker = IncrementalChecker::new(vec![fd], &v);
        assert!(checker.all_satisfied());
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let up = Update::new(class, UpdateOp::SetText("E".into()));
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert_eq!(report.scopes, vec![RecheckScope::Unaffected]);
        assert!(report.all_satisfied());
        assert_eq!(report.metrics.verdicts_reused, 1);
        assert_eq!(report.metrics.deltas_applied, 1);
    }

    #[test]
    fn localized_recheck_catches_violations() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let d = doc(&a);
        let mut v = VersionedDocument::new(d.clone());
        let mut checker = IncrementalChecker::new(vec![fd.clone()], &v);
        // Rewriting the first rank only breaks the FD (same discipline,
        // different ranks).
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let up = Update::new(
            class,
            UpdateOp::FirstOnly(Box::new(UpdateOp::SetText("9".into()))),
        );
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert_eq!(report.scopes, vec![RecheckScope::Localized]);
        assert!(!report.all_satisfied());
        // Agreement with the clone-and-recheck baseline.
        let baseline = revalidate_full(&fd, &up, &d).unwrap();
        assert!(baseline.is_err());
    }

    #[test]
    fn inserted_subtrees_join_their_context() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let mut v = VersionedDocument::new(doc(&a));
        let mut checker = IncrementalChecker::new(vec![fd], &v);
        // Grafting a conflicting exam into the first candidate creates a
        // brand-new violating trace.
        let class = update_class_from_edges(&a, &["session/candidate"]).unwrap();
        let exam = TreeSpec::elem_named(
            &a,
            "exam",
            vec![
                TreeSpec::elem_named(&a, "discipline", vec![TreeSpec::text("m")]),
                TreeSpec::elem_named(&a, "rank", vec![TreeSpec::text("7")]),
            ],
        );
        let up = Update::new(
            class,
            UpdateOp::FirstOnly(Box::new(UpdateOp::AppendChild(exam))),
        );
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert_eq!(report.scopes, vec![RecheckScope::Localized]);
        assert!(!report.all_satisfied());
    }

    #[test]
    fn deletions_drop_buckets_and_can_restore_satisfaction() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        // Violated document: same discipline, different ranks.
        let bad = parse_document(
            &a,
            "<session>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam></candidate>\
             <candidate><exam><discipline>m</discipline><rank>2</rank></exam></candidate>\
             </session>",
        )
        .unwrap();
        let mut v = VersionedDocument::new(bad);
        let mut checker = IncrementalChecker::new(vec![fd], &v);
        assert!(!checker.all_satisfied());
        // Deleting the second candidate removes the conflict. The prior
        // verdict was Violated, so the recheck goes global.
        let class = update_class_from_edges(&a, &["session/candidate"]).unwrap();
        let up = Update::new(class, UpdateOp::FirstOnly(Box::new(UpdateOp::Delete)));
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert_eq!(report.scopes, vec![RecheckScope::Global]);
        // Only one candidate left: satisfied again.
        assert!(report.all_satisfied(), "{:?}", report.outcomes);
        // A further localized edit keeps working on the fresh buckets.
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let up = Update::new(class, UpdateOp::SetText("3".into()));
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert_eq!(report.scopes, vec![RecheckScope::Localized]);
        assert!(report.all_satisfied());
    }

    #[test]
    fn deleting_a_violating_context_is_never_unaffected() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        // Violated document: same discipline, different ranks.
        let bad = parse_document(
            &a,
            "<session>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam></candidate>\
             <candidate><exam><discipline>m</discipline><rank>2</rank></exam></candidate>\
             </session>",
        )
        .unwrap();
        let mut v = VersionedDocument::new(bad);
        let mut checker = IncrementalChecker::new(vec![fd_rank(&a)], &v);
        assert!(!checker.all_satisfied());
        // Delete the violating <session> context itself. The prior verdict
        // is Violated, so no buckets exist to reveal the death: it must be
        // found by walking the removed subtree with the context automaton.
        let session = {
            let d = v.doc();
            d.children(d.root())[0]
        };
        v.delete_subtree(session).unwrap();
        let delta = v.take_delta();
        let report = checker.recheck_delta(&v, &delta);
        assert_eq!(report.scopes, vec![RecheckScope::Global]);
        // No contexts left: satisfied again, agreeing with a fresh check.
        assert!(report.all_satisfied(), "{:?}", report.outcomes);
        assert!(crate::satisfy::check_fd(&fd, v.doc()).is_ok());
    }

    #[test]
    fn set_limits_regoverns_later_rounds() {
        let a = Alphabet::new();
        let bad = parse_document(
            &a,
            "<session>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam></candidate>\
             <candidate><exam><discipline>m</discipline><rank>2</rank></exam></candidate>\
             </session>",
        )
        .unwrap();
        let mut v = VersionedDocument::new(bad);
        let mut checker = IncrementalChecker::new(vec![fd_rank(&a)], &v);
        assert!(!checker.all_satisfied());
        // A zero deadline applied after the fact must govern the next
        // round: the forced global recheck exhausts before any work.
        checker.set_limits(RunLimits::default().with_deadline(std::time::Duration::ZERO));
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let up = Update::new(
            class,
            UpdateOp::FirstOnly(Box::new(UpdateOp::SetText("2".into()))),
        );
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert_eq!(report.scopes, vec![RecheckScope::Global]);
        assert!(
            matches!(
                report.outcomes[0],
                FdOutcome::Unknown {
                    exhausted: Resource::Deadline,
                    ..
                }
            ),
            "{:?}",
            report.outcomes
        );
    }

    #[test]
    fn cancellation_degrades_rechecks_to_unknown() {
        let a = Alphabet::new();
        let bad = parse_document(
            &a,
            "<session>\
             <candidate><exam><discipline>m</discipline><rank>1</rank></exam></candidate>\
             <candidate><exam><discipline>m</discipline><rank>2</rank></exam></candidate>\
             </session>",
        )
        .unwrap();
        let mut v = VersionedDocument::new(bad);
        let mut checker = IncrementalChecker::new(vec![fd_rank(&a)], &v);
        assert!(!checker.all_satisfied());
        let token = regtree_runtime::CancelToken::new();
        checker.set_cancel(Some(token.clone()));
        token.cancel();
        let class = update_class_from_edges(&a, &["session/candidate/exam/rank"]).unwrap();
        let up = Update::new(
            class,
            UpdateOp::FirstOnly(Box::new(UpdateOp::SetText("2".into()))),
        );
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert!(
            matches!(
                report.outcomes[0],
                FdOutcome::Unknown {
                    exhausted: Resource::Cancelled,
                    ..
                }
            ),
            "{:?}",
            report.outcomes
        );
    }

    #[test]
    fn custom_ops_force_a_global_recheck() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let mut v = VersionedDocument::new(doc(&a));
        let mut checker = IncrementalChecker::new(vec![fd], &v);
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let up = Update::new(
            class,
            UpdateOp::Custom(std::sync::Arc::new(|doc, n| {
                let kids: Vec<_> = doc.children(n).to_vec();
                for k in kids {
                    let _ = regtree_xml::set_value(doc, k, "Z");
                }
            })),
        );
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        assert_eq!(report.scopes, vec![RecheckScope::Global]);
        assert_eq!(report.metrics.rechecks_full, 1);
        assert!(report.all_satisfied());
    }

    #[test]
    fn multiple_fds_classify_independently() {
        let a = Alphabet::new();
        let fd_rank = fd_rank(&a);
        let fd_level = FdBuilder::new(a.clone())
            .context("session")
            .condition("candidate/level")
            .target("candidate")
            .build()
            .unwrap();
        let mut v = VersionedDocument::new(doc(&a));
        let mut checker = IncrementalChecker::new(vec![fd_rank, fd_level], &v);
        let class = update_class_from_edges(&a, &["session/candidate/level"]).unwrap();
        let up = Update::new(class, UpdateOp::SetText("E".into()));
        let report = checker.apply_and_recheck(&mut v, &up).unwrap();
        // The rank FD is untouched by level edits; the level FD is not.
        assert_eq!(
            report.scopes,
            vec![RecheckScope::Unaffected, RecheckScope::Localized]
        );
        assert!(report.all_satisfied());
    }

    #[test]
    fn deep_deletions_only_affect_matching_contexts() {
        let a = Alphabet::new();
        let fd = fd_rank(&a);
        let mut v = VersionedDocument::new(doc(&a));
        let mut checker = IncrementalChecker::new(vec![fd], &v);
        // Deleting a `level` leaf is structural, but no trace of the rank
        // FD passes through it: the verdict carries forward.
        let lvl = {
            let d = v.doc();
            let session = d.children(d.root())[0];
            let c1 = d.children(session)[0];
            d.children(c1)[1]
        };
        v.delete_subtree(lvl).unwrap();
        let delta = v.take_delta();
        let report = checker.recheck_delta(&v, &delta);
        assert_eq!(report.scopes, vec![RecheckScope::Unaffected]);
        assert!(report.all_satisfied());
        // Deleting a whole exam does remove a trace: localized recheck.
        let exam = {
            let d = v.doc();
            let session = d.children(d.root())[0];
            let c2 = d.children(session)[1];
            d.children(c2)[0]
        };
        v.delete_subtree(exam).unwrap();
        let delta = v.take_delta();
        let report = checker.recheck_delta(&v, &delta);
        assert_eq!(report.scopes, vec![RecheckScope::Localized]);
        assert!(report.all_satisfied());
    }
}
