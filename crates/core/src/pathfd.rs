//! The path-based FD formalism of \[8\] and its embedding into regular tree
//! patterns (paper Section 3.2).
//!
//! In \[8\] an FD is `(C, (P1[E1], …, Pn[En] → Q[E]))` with `C` an absolute
//! simple linear path to the context and `P1..Pn`, `Q` simple linear paths
//! relative to it. The paper shows how to build an equivalent regular tree
//! pattern: translate each path into a word of labels, then factorize the
//! longest common prefixes into shared template nodes (a trie), selecting
//! the nodes where the condition/target words end. [`PathFd::to_fd`]
//! implements exactly that construction; the module also provides the
//! *inexpressibility* checks of Example 3 — the structural properties every
//! \[8\]-built pattern has, which `fd3`/`fd4` style RTP dependencies violate.
//!
//! Concrete syntax (one line):
//!
//! ```text
//! /session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank
//! /session/candidate : exam/date, exam/discipline -> exam[N]
//! ```

use std::fmt;

use regtree_alphabet::{Alphabet, Symbol};
use regtree_automata::Regex;
use regtree_pattern::{RegularTreePattern, Template, TemplateError, TemplateNodeId};

use crate::error::Error;
use crate::fd::{EqualityType, Fd};

/// A path-formalism FD `(C, (P1[E1], …, Pn[En] → Q[E]))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathFd {
    /// Context path (absolute, from the root).
    pub context: Vec<Symbol>,
    /// Condition paths (relative to the context) with equality types.
    pub conditions: Vec<(Vec<Symbol>, EqualityType)>,
    /// Target path with its equality type.
    pub target: (Vec<Symbol>, EqualityType),
}

/// Error raised parsing or translating a path FD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathFdError {
    /// Description.
    pub message: String,
}

impl fmt::Display for PathFdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path FD error: {}", self.message)
    }
}

impl std::error::Error for PathFdError {}

fn err(m: impl Into<String>) -> PathFdError {
    PathFdError { message: m.into() }
}

/// Parses one `label/label/…` simple linear path with an optional `[N]` /
/// `[V]` suffix.
fn parse_path(alphabet: &Alphabet, src: &str) -> Result<(Vec<Symbol>, EqualityType), PathFdError> {
    let src = src.trim();
    let (path_src, eq) = if let Some(stripped) = src.strip_suffix("[N]") {
        (stripped, EqualityType::Node)
    } else if let Some(stripped) = src.strip_suffix("[V]") {
        (stripped, EqualityType::Value)
    } else {
        (src, EqualityType::Value)
    };
    let path_src = path_src.trim();
    if path_src.is_empty() {
        return Err(err("empty path"));
    }
    let mut out = Vec::new();
    for seg in path_src.split('/') {
        let seg = seg.trim();
        if seg.is_empty() {
            return Err(err(format!(
                "empty segment in path '{path_src}' (a leading, trailing, or doubled '/')"
            )));
        }
        if !seg
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '@' | '#'))
        {
            return Err(err(format!("'{seg}' is not a simple path segment")));
        }
        out.push(alphabet.intern(seg));
    }
    Ok((out, eq))
}

impl PathFd {
    /// Parses the one-line concrete syntax (see module docs).
    ///
    /// Errors surface as the unified [`enum@Error`] (variant
    /// [`Error::PathFd`]). Empty path segments (`a//b`, a trailing `/`) and
    /// empty comma-separated condition slots (`a,,b`, a trailing `,`) are
    /// rejected with a precise diagnostic. A *completely* empty condition
    /// list (`/c : -> t`) is accepted by design: \[8\] allows constant
    /// dependencies ("the target is the same in every trace under the
    /// context"), and the translation handles the degenerate trie.
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::PathFd;
    /// use regtree_alphabet::Alphabet;
    ///
    /// let a = Alphabet::new();
    /// let fd = PathFd::parse(&a, "/catalog : item/sku -> item/price").unwrap();
    /// // The path FD embeds into a regular tree pattern (Section 3.2).
    /// assert!(fd.to_fd(&a).is_ok());
    ///
    /// assert!(PathFd::parse(&a, "no arrow here").is_err());
    /// assert!(PathFd::parse(&a, "/c : a,,b -> t").is_err()); // empty condition
    /// assert!(PathFd::parse(&a, "/c : a//b -> t").is_err()); // empty segment
    /// assert!(PathFd::parse(&a, "/c : -> t").is_ok()); // constant dependency
    /// ```
    pub fn parse(alphabet: &Alphabet, src: &str) -> Result<PathFd, Error> {
        let (ctx_src, rest) = src
            .split_once(':')
            .ok_or_else(|| err("expected 'context : conditions -> target'"))?;
        let ctx_src = ctx_src.trim();
        let Some(ctx_body) = ctx_src.strip_prefix('/') else {
            return Err(err("context path must be absolute (start with '/')").into());
        };
        let (context, ctx_eq) = parse_path(alphabet, ctx_body)?;
        if ctx_eq != EqualityType::Value {
            return Err(err("the context path takes no equality annotation").into());
        }
        let (conds_src, target_src) = rest
            .split_once("->")
            .ok_or_else(|| err("expected '->' before the target path"))?;
        let mut conditions = Vec::new();
        // A wholly empty condition list is the documented constant-FD case;
        // an empty slot *between* commas is a syntax error.
        if !conds_src.trim().is_empty() {
            for c in conds_src.split(',') {
                if c.trim().is_empty() {
                    return Err(err("empty condition (a leading, trailing, or doubled ',')").into());
                }
                conditions.push(parse_path(alphabet, c)?);
            }
        }
        let target = parse_path(alphabet, target_src)?;
        Ok(PathFd {
            context,
            conditions,
            target,
        })
    }

    /// The paper's construction: translate into a regular tree pattern by
    /// factorizing longest common prefixes into a trie below the context
    /// node, then wrap as an [`Fd`]. Errors surface as the unified
    /// [`enum@Error`], preserving the underlying template/pattern/FD error
    /// as the variant payload.
    pub fn to_fd(&self, alphabet: &Alphabet) -> Result<Fd, Error> {
        let mut template = Template::new(alphabet.clone());
        // Context chain: single edge labeled by the word w_C.
        let context_regex = Regex::seq(self.context.iter().map(|&s| Regex::Atom(s)));
        let context = template.add_child(template.root(), context_regex)?;

        // Trie below the context. Each trie node = template node; edges are
        // single labels (maximal sharing of common prefixes).
        #[derive(Default)]
        struct TrieNode {
            children: Vec<(Symbol, usize)>,
        }
        let mut trie: Vec<TrieNode> = vec![TrieNode::default()];
        let insert = |trie: &mut Vec<TrieNode>, word: &[Symbol]| -> usize {
            let mut cur = 0usize;
            for &s in word {
                if let Some(&(_, next)) = trie[cur].children.iter().find(|(l, _)| *l == s) {
                    cur = next;
                } else {
                    let id = trie.len();
                    trie.push(TrieNode::default());
                    trie[cur].children.push((s, id));
                    cur = id;
                }
            }
            cur
        };
        let mut ends: Vec<usize> = Vec::new();
        for (path, _) in &self.conditions {
            ends.push(insert(&mut trie, path));
        }
        ends.push(insert(&mut trie, &self.target.0));
        // Two identical paths would collapse to one selected node, which the
        // construction (and [8]) does not support.
        let mut sorted = ends.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != ends.len() {
            return Err(err("duplicate condition/target paths").into());
        }

        // Materialize the trie into the template, compressing unary chains
        // that contain no selected node into single multi-label edges.
        let mut node_of: Vec<Option<TemplateNodeId>> = vec![None; trie.len()];
        node_of[0] = Some(context);
        // Recursive materialization (explicit stack).
        fn materialize(
            trie: &[TrieNode],
            ends: &[usize],
            template: &mut Template,
            node_of: &mut [Option<TemplateNodeId>],
            from_trie: usize,
            from_tpl: TemplateNodeId,
        ) -> Result<(), TemplateError> {
            for &(label, child) in &trie[from_trie].children {
                // Compress a chain of unselected, unary nodes.
                let mut word = vec![label];
                let mut cur = child;
                while trie[cur].children.len() == 1 && !ends.contains(&cur) {
                    let (l, nxt) = trie[cur].children[0];
                    word.push(l);
                    cur = nxt;
                }
                let regex = Regex::seq(word.into_iter().map(Regex::Atom));
                let tpl = template.add_child(from_tpl, regex)?;
                node_of[cur] = Some(tpl);
                materialize(trie, ends, template, node_of, cur, tpl)?;
            }
            Ok(())
        }
        materialize(&trie, &ends, &mut template, &mut node_of, 0, context)?;

        let mut selected = Vec::new();
        let mut equality = Vec::new();
        for (i, (_, eq)) in self.conditions.iter().enumerate() {
            selected.push(node_of[ends[i]].expect("materialized"));
            equality.push(*eq);
        }
        selected.push(node_of[*ends.last().expect("target")].expect("materialized"));
        equality.push(self.target.1);

        let pattern = RegularTreePattern::new(template, selected)?;
        Ok(Fd::new(pattern, context, equality)?)
    }
}

/// Why an RTP functional dependency falls outside the \[8\] formalism
/// (Example 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inexpressibility {
    /// An edge expression is not a simple word of labels.
    NonWordEdge(TemplateNodeId),
    /// Two sibling edges share a possible first label — the \[8\] trie
    /// construction always factorizes common prefixes away (this is what
    /// makes `fd3` inexpressible).
    SiblingCommonPrefix(TemplateNodeId, TemplateNodeId),
    /// A template leaf is neither a condition nor the target — \[8\] patterns
    /// have no purely structural leaves (this is what makes `fd4`
    /// inexpressible).
    UnselectedLeaf(TemplateNodeId),
    /// The context is not on the single spine from the root.
    ContextNotOnSpine,
}

impl fmt::Display for Inexpressibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inexpressibility::NonWordEdge(n) => {
                write!(f, "edge into n{} is not a simple label word", n.0)
            }
            Inexpressibility::SiblingCommonPrefix(a, b) => write!(
                f,
                "sibling edges into n{} and n{} share a first label",
                a.0, b.0
            ),
            Inexpressibility::UnselectedLeaf(n) => {
                write!(f, "leaf n{} is neither condition nor target", n.0)
            }
            Inexpressibility::ContextNotOnSpine => {
                write!(f, "context node is not on the root spine")
            }
        }
    }
}

/// Extracts the label word of a regex when it is a simple concatenation of
/// atoms.
pub(crate) fn as_word(r: &Regex) -> Option<Vec<Symbol>> {
    match r {
        Regex::Atom(s) => Some(vec![*s]),
        Regex::Concat(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                match p {
                    Regex::Atom(s) => out.push(*s),
                    _ => return None,
                }
            }
            Some(out)
        }
        _ => None,
    }
}

/// Checks whether `fd` has the structural shape every \[8\]-expressible FD
/// has. `Ok(())` means the FD could have been produced by the \[8\]
/// construction; an `Err` names the first obstruction.
pub fn expressible_in_path_formalism(fd: &Fd) -> Result<(), Inexpressibility> {
    let t = fd.template();
    let selected = fd.pattern().selected();
    // Context on the root spine (in the construction the context is the
    // unique child of the root).
    if t.parent(fd.context()) != Some(t.root()) {
        return Err(Inexpressibility::ContextNotOnSpine);
    }
    for w in t.preorder() {
        if w == t.root() {
            continue;
        }
        let regex = t.edge_regex(w).expect("edge");
        let Some(_word) = as_word(regex) else {
            return Err(Inexpressibility::NonWordEdge(w));
        };
        // Leaves must be selected.
        if t.is_leaf(w) && !selected.contains(&w) && w != fd.context() {
            return Err(Inexpressibility::UnselectedLeaf(w));
        }
    }
    // Sibling edges must start with distinct labels.
    for w in t.preorder() {
        let children = t.children(w);
        for i in 0..children.len() {
            for j in (i + 1)..children.len() {
                let wi = as_word(t.edge_regex(children[i]).expect("edge")).expect("checked");
                let wj = as_word(t.edge_regex(children[j]).expect("edge")).expect("checked");
                if wi.first() == wj.first() {
                    return Err(Inexpressibility::SiblingCommonPrefix(
                        children[i],
                        children[j],
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfy::satisfies;
    use regtree_xml::parse_document;

    /// expr1 of the paper.
    const EXPR1: &str =
        "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank";
    /// expr2 of the paper.
    const EXPR2: &str = "/session/candidate : exam/date, exam/discipline -> exam[N]";

    #[test]
    fn parses_expr1() {
        let a = Alphabet::new();
        let p = PathFd::parse(&a, EXPR1).unwrap();
        assert_eq!(p.context.len(), 1);
        assert_eq!(p.conditions.len(), 2);
        assert_eq!(p.target.1, EqualityType::Value);
    }

    #[test]
    fn parses_expr2_with_node_equality() {
        let a = Alphabet::new();
        let p = PathFd::parse(&a, EXPR2).unwrap();
        assert_eq!(p.context.len(), 2);
        assert_eq!(p.target.1, EqualityType::Node);
        assert_eq!(p.target.0, vec![a.intern("exam")]);
    }

    #[test]
    fn translation_factorizes_common_prefixes() {
        let a = Alphabet::new();
        let fd = PathFd::parse(&a, EXPR1).unwrap().to_fd(&a).unwrap();
        // Figure 4's FD1: root → session(context) → candidate/exam node →
        // three leaves discipline/mark/rank. With compression: context,
        // shared candidate/exam node, 3 selected leaves = 5 + root.
        assert_eq!(fd.template().len(), 6);
        assert_eq!(fd.conditions().len(), 2);
        // The shared node's edge is the word candidate/exam.
        let shared = fd.template().children(fd.context())[0];
        assert_eq!(
            as_word(fd.template().edge_regex(shared).unwrap()).unwrap(),
            vec![a.intern("candidate"), a.intern("exam")]
        );
    }

    #[test]
    fn translation_handles_prefix_selected_nodes() {
        let a = Alphabet::new();
        // expr2: the target 'exam' is a prefix of both condition paths, so
        // the target node is an *internal* selected node (Figure 4's FD2).
        let fd = PathFd::parse(&a, EXPR2).unwrap().to_fd(&a).unwrap();
        let target = fd.target();
        assert!(!fd.template().is_leaf(target));
        assert_eq!(fd.target_equality(), EqualityType::Node);
    }

    #[test]
    fn translated_fd1_checks_documents() {
        let a = Alphabet::new();
        let fd = PathFd::parse(&a, EXPR1).unwrap().to_fd(&a).unwrap();
        let good = parse_document(
            &a,
            "<session>\
             <candidate><exam><discipline>m</discipline><mark>15</mark><rank>1</rank></exam></candidate>\
             <candidate><exam><discipline>m</discipline><mark>15</mark><rank>1</rank></exam></candidate>\
             </session>",
        )
        .unwrap();
        assert!(satisfies(&fd, &good));
        let bad = parse_document(
            &a,
            "<session>\
             <candidate><exam><discipline>m</discipline><mark>15</mark><rank>1</rank></exam></candidate>\
             <candidate><exam><discipline>m</discipline><mark>15</mark><rank>2</rank></exam></candidate>\
             </session>",
        )
        .unwrap();
        assert!(!satisfies(&fd, &bad));
    }

    #[test]
    fn path_built_fds_are_expressible() {
        let a = Alphabet::new();
        for src in [EXPR1, EXPR2] {
            let fd = PathFd::parse(&a, src).unwrap().to_fd(&a).unwrap();
            assert_eq!(expressible_in_path_formalism(&fd), Ok(()), "{src}");
        }
    }

    #[test]
    fn fd3_shape_is_inexpressible() {
        let a = Alphabet::new();
        // fd3: two sibling 'exam/mark' edges under the same candidate —
        // common first label, never produced by the trie construction.
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "session").unwrap();
        let cand = t.add_child_str(c, "candidate").unwrap();
        let m1 = t.add_child_str(cand, "exam/mark").unwrap();
        let m2 = t.add_child_str(cand, "exam/mark").unwrap();
        let lvl = t.add_child_str(cand, "level").unwrap();
        let pat = RegularTreePattern::new(t, vec![m1, m2, lvl]).unwrap();
        let fd3 = Fd::with_default_equality(pat, c).unwrap();
        assert!(matches!(
            expressible_in_path_formalism(&fd3),
            Err(Inexpressibility::SiblingCommonPrefix(..))
        ));
    }

    #[test]
    fn fd4_shape_is_inexpressible() {
        let a = Alphabet::new();
        // fd4: a structural 'toBePassed' leaf that is neither condition nor
        // target.
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "session").unwrap();
        let cand = t.add_child_str(c, "candidate").unwrap();
        let mark = t.add_child_str(cand, "exam/mark").unwrap();
        let _tbp = t.add_child_str(cand, "toBePassed").unwrap();
        let lvl = t.add_child_str(cand, "level").unwrap();
        let pat = RegularTreePattern::new(t, vec![mark, lvl]).unwrap();
        let fd4 = Fd::with_default_equality(pat, c).unwrap();
        assert!(matches!(
            expressible_in_path_formalism(&fd4),
            Err(Inexpressibility::UnselectedLeaf(_))
        ));
    }

    #[test]
    fn regex_edges_are_inexpressible() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "session").unwrap();
        let x = t.add_child_str(c, "(a|b)/mark").unwrap();
        let y = t.add_child_str(c, "rank").unwrap();
        let pat = RegularTreePattern::new(t, vec![x, y]).unwrap();
        let fd = Fd::with_default_equality(pat, c).unwrap();
        assert!(matches!(
            expressible_in_path_formalism(&fd),
            Err(Inexpressibility::NonWordEdge(_))
        ));
    }

    #[test]
    fn parse_errors() {
        let a = Alphabet::new();
        assert!(PathFd::parse(&a, "no colon here").is_err());
        assert!(PathFd::parse(&a, "relative : a -> b").is_err());
        assert!(PathFd::parse(&a, "/c : a, b").is_err());
        assert!(PathFd::parse(&a, "/c : a* -> b").is_err()); // not simple
        let dup = PathFd::parse(&a, "/c : a, a -> b").unwrap();
        assert!(dup.to_fd(&a).is_err()); // duplicate paths
    }

    #[test]
    fn empty_condition_slots_are_rejected() {
        let a = Alphabet::new();
        // `a,,b` must not silently parse as two conditions.
        let e = PathFd::parse(&a, "/r : a,,b -> t").unwrap_err();
        assert!(e.to_string().contains("empty condition"), "{e}");
        assert!(PathFd::parse(&a, "/r : ,a -> t").is_err()); // leading comma
        assert!(PathFd::parse(&a, "/r : a, -> t").is_err()); // trailing comma
    }

    #[test]
    fn empty_path_segments_are_rejected() {
        let a = Alphabet::new();
        let e = PathFd::parse(&a, "/r : a//b -> t").unwrap_err();
        assert!(e.to_string().contains("empty segment"), "{e}");
        assert!(PathFd::parse(&a, "/r : a/ -> t").is_err()); // trailing slash
        assert!(PathFd::parse(&a, "/r : /a -> t").is_err()); // leading slash
        assert!(PathFd::parse(&a, "/r/ : a -> t").is_err()); // in the context
        assert!(PathFd::parse(&a, "/ : a -> t").is_err()); // empty context
    }

    #[test]
    fn zero_conditions_is_an_explicit_choice() {
        let a = Alphabet::new();
        // A wholly empty condition list is the documented constant-FD case:
        // the target must be the same in every trace under the context.
        let p = PathFd::parse(&a, "/c : -> x").unwrap();
        assert!(p.conditions.is_empty());
        let fd = p.to_fd(&a).unwrap();
        assert!(fd.conditions().is_empty());
        let same = parse_document(&a, "<c><x>1</x><x>1</x></c>").unwrap();
        assert!(satisfies(&fd, &same));
        let differ = parse_document(&a, "<c><x>1</x><x>2</x></c>").unwrap();
        assert!(!satisfies(&fd, &differ));
    }

    #[test]
    fn errors_are_the_unified_type() {
        let a = Alphabet::new();
        // Parse and translation errors both surface as `Error`, with the
        // precise subsystem error reachable via `source()`.
        use std::error::Error as _;
        let e = PathFd::parse(&a, "no colon here").unwrap_err();
        assert!(matches!(e, crate::Error::PathFd(_)));
        assert!(e.source().is_some());
        let dup = PathFd::parse(&a, "/c : a, a -> b").unwrap();
        assert!(matches!(dup.to_fd(&a), Err(crate::Error::PathFd(_))));
    }

    use regtree_pattern::RegularTreePattern;
}
