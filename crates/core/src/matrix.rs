//! Batch independence analysis.
//!
//! The practical deployment the paper motivates (and \[14\] addresses
//! document-side) maintains a *set* of functional dependencies under a
//! *set* of update classes. [`crate::Analyzer::matrix`] runs the criterion for every
//! pair and summarizes which FDs need re-verification after which update
//! classes — the static complement of a validator's scheduling table.
//!
//! The matrix amortizes everything shareable across cells: the schema
//! automaton is compiled once, each FD row and update-class column is
//! compiled to its pattern automaton once and then flattened once into its
//! arena/CSR form ([`regtree_hedge::CompiledAutomaton`]) against a single
//! [`GuardPartition`] of label minterms that serves every cell's
//! word-parallel guard intersections. Cells then run the lazy on-the-fly
//! emptiness engine (`crate::lazy_ic`) on scoped worker threads
//! ([`regtree_pattern::parallel_map`]). Workers additionally share realized
//! cell outcomes through a sharded interner keyed by the `(row, column)`
//! automaton identities (`crate::intern`): when the FD/class dedup of
//! [`crate::Analyzer`] maps two cells to the same compiled pair, only the
//! first runs the engine and the rest reuse its verdict
//! ([`CellProvenance::ReusedFrom`], counted in
//! `RunMetrics::verdicts_reused`).
//!
//! The *pruned* path ([`crate::Analyzer::matrix_pruned`]) additionally
//! reasons about the FD **set** before spawning cells: rows implied by the
//! rest of the set ([`crate::FdSet::minimize`]) are dropped without
//! running the engine at all, and among the kept rows a verdict flows
//! along structural containment ([`crate::subsumes`]) in the one sound
//! direction — `Independent` from the containing row to the contained
//! one, a completed dependent verdict the other way; budget-exhausted
//! `Unknown`s never propagate. Every cell records how it got its verdict
//! in [`CellProvenance`].

use std::fmt;
use std::sync::Arc;

use regtree_hedge::{CompiledAutomaton, GuardPartition, HedgeAutomaton};
use regtree_pattern::{parallel_map, PatternAutomaton};
use regtree_runtime::{Budget, CancelToken, RunLimits, RunMetrics, SpanKind, TraceHandle};

use crate::fd::Fd;
use crate::fdset::Minimization;
use crate::independence::{check_independence_governed, Verdict};
use crate::intern::{CellEntry, CellInterner};
use crate::lazy_ic::CompiledTriple;
use crate::subsume::{fd_paths, paths_subsume, FdPaths};
use crate::update::UpdateClass;

/// How a matrix cell got its verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CellProvenance {
    /// The emptiness engine ran for this cell.
    Computed,
    /// The whole row was dropped by [`crate::FdSet::minimize`]: the FD is
    /// implied by the kept rows listed in `by` (empty for trivial FDs).
    /// The cell carries **no criterion verdict** — its `verdict` field is
    /// a conservative placeholder — and it is excluded from
    /// [`IndependenceMatrix::fds_to_recheck`]: re-verifying the impliers
    /// re-establishes the implied FD.
    ImpliedRow {
        /// Kept FD indices implying this row.
        by: Vec<usize>,
    },
    /// The verdict was copied from row `fd` of the same column — either
    /// through structural containment (pruned path, sound direction only),
    /// or because both cells resolve to the identical compiled
    /// `(row, column)` automaton pair and the shared interner realized the
    /// outcome once.
    ReusedFrom {
        /// The FD index whose engine-computed verdict was reused.
        fd: usize,
    },
}

/// One cell of the analysis matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// FD index (row).
    pub fd: usize,
    /// Update-class index (column).
    pub class: usize,
    /// The criterion's verdict.
    pub verdict: Verdict,
    /// State count of the full product the criterion ranges over.
    pub automaton_size: usize,
    /// Product states the lazy engine actually explored.
    pub explored_states: usize,
    /// Work counters and wall time of this cell's run.
    pub metrics: RunMetrics,
    /// How the verdict was obtained (computed, implied row, or reused).
    pub provenance: CellProvenance,
}

/// The full matrix plus aggregate statistics.
#[derive(Clone, Debug)]
pub struct IndependenceMatrix {
    /// Row labels (FD names).
    pub fd_names: Vec<String>,
    /// Column labels (class names).
    pub class_names: Vec<String>,
    /// All cells, row-major.
    pub cells: Vec<MatrixCell>,
}

impl IndependenceMatrix {
    /// The cell for `(fd, class)`.
    pub fn cell(&self, fd: usize, class: usize) -> &MatrixCell {
        &self.cells[fd * self.class_names.len() + class]
    }

    /// Is the pair provably independent?
    pub fn independent(&self, fd: usize, class: usize) -> bool {
        self.cell(fd, class).verdict.is_independent()
    }

    /// Number of provably independent pairs.
    pub fn independent_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict.is_independent())
            .count()
    }

    /// For an update class: the FDs that must be re-verified after an
    /// update of that class. Every non-`Independent` row counts — including
    /// `Unknown` cells whose run was cancelled or exhausted its budget
    /// (only a proof of independence may skip re-verification) — **except**
    /// rows dropped as implied: re-verifying their impliers (which are kept
    /// rows and report here themselves when not independent) re-establishes
    /// them, so listing them too would double-count the work.
    pub fn fds_to_recheck(&self, class: usize) -> Vec<usize> {
        (0..self.fd_names.len())
            .filter(|&fd| {
                !self.independent(fd, class)
                    && !matches!(
                        self.cell(fd, class).provenance,
                        CellProvenance::ImpliedRow { .. }
                    )
            })
            .collect()
    }

    /// Number of `Unknown` cells whose run was cut short (budget or
    /// cancellation) rather than decided. These are sound to treat as
    /// "recheck", but re-running them with a larger budget may still prove
    /// independence.
    pub fn exhausted_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict.exhausted().is_some())
            .count()
    }

    /// Number of cells that must be rechecked (every non-independent cell,
    /// exhausted ones included, implied rows excluded — see
    /// [`IndependenceMatrix::fds_to_recheck`]).
    pub fn recheck_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                !c.verdict.is_independent()
                    && !matches!(c.provenance, CellProvenance::ImpliedRow { .. })
            })
            .count()
    }

    /// Number of cells the emptiness engine actually ran for (neither
    /// implied away nor reused from another row).
    pub fn computed_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.provenance == CellProvenance::Computed)
            .count()
    }

    /// Number of cells whose verdict was reused through containment.
    pub fn reused_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.provenance, CellProvenance::ReusedFrom { .. }))
            .count()
    }

    /// Number of rows dropped as implied by [`crate::FdSet::minimize`].
    pub fn implied_row_count(&self) -> usize {
        (0..self.fd_names.len())
            .filter(|&fd| {
                !self.class_names.is_empty()
                    && matches!(
                        self.cell(fd, 0).provenance,
                        CellProvenance::ImpliedRow { .. }
                    )
            })
            .count()
    }
}

impl fmt::Display for IndependenceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self
            .fd_names
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(4)
            .max(4);
        write!(f, "{:w$}", "", w = w + 2)?;
        for c in &self.class_names {
            write!(f, "{c:>12}")?;
        }
        writeln!(f)?;
        for (i, name) in self.fd_names.iter().enumerate() {
            write!(f, "{name:<w$}  ", w = w)?;
            for j in 0..self.class_names.len() {
                let cell = self.cell(i, j);
                let mark = match &cell.provenance {
                    CellProvenance::ImpliedRow { .. } => "implied",
                    // A trailing `*` marks verdicts reused via containment.
                    CellProvenance::ReusedFrom { .. } if cell.verdict.is_independent() => "indep*",
                    CellProvenance::ReusedFrom { .. } => "RECHECK*",
                    CellProvenance::Computed if cell.verdict.is_independent() => "indep",
                    CellProvenance::Computed if cell.verdict.exhausted().is_some() => {
                        // Cut short by budget/cancellation: still a recheck,
                        // but a bigger budget might prove independence.
                        "RECHECK?"
                    }
                    _ => "RECHECK",
                };
                write!(f, "{mark:>12}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Matrix analysis on precompiled rows/columns under a shared budget. The
/// wall-clock deadline is global to the whole matrix (a deadline bounds the
/// *call*, not each cell); the count caps apply per cell. A cancelled run
/// still returns every cell: cells that never ran report
/// `Unknown { exhausted: Some(Cancelled) }`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn analyze_matrix_governed(
    fds: &[(&str, &Fd)],
    classes: &[(&str, &UpdateClass)],
    schema_auto: Option<&HedgeAutomaton>,
    pa_fds: &[Arc<PatternAutomaton>],
    pa_us: &[Arc<PatternAutomaton>],
    limits: &RunLimits,
    cancel: Option<&CancelToken>,
    trace: &TraceHandle,
    compile_nanos: u64,
) -> IndependenceMatrix {
    let partition = GuardPartition::from_automata(
        pa_fds
            .iter()
            .chain(pa_us.iter())
            .map(|pa| &pa.automaton)
            .chain(schema_auto),
    );
    // Flatten every row, column, and the schema into their arena/CSR forms
    // once; cells borrow the compiled triple pieces instead of recompiling.
    let universal;
    let schema_sym = match schema_auto {
        Some(s) => s,
        None => {
            universal = HedgeAutomaton::universal();
            &universal
        }
    };
    let compiled = fds.first().map(|(_, fd)| {
        let al = fd.template().alphabet();
        (
            pa_fds
                .iter()
                .map(|pa| CompiledAutomaton::compile(&pa.automaton, &partition, al))
                .collect::<Vec<_>>(),
            pa_us
                .iter()
                .map(|pa| CompiledAutomaton::compile(&pa.automaton, &partition, al))
                .collect::<Vec<_>>(),
            CompiledAutomaton::compile(schema_sym, &partition, al),
        )
    });
    let interner = CellInterner::new();
    // One deadline for the whole matrix, captured before the first cell.
    let deadline_at = Budget::new(limits).deadline_at();
    let pairs: Vec<(usize, usize)> = (0..fds.len())
        .flat_map(|i| (0..classes.len()).map(move |j| (i, j)))
        .collect();
    let mut cells = parallel_map(&pairs, |&(i, j)| {
        // Cells over the identical compiled pair (the Analyzer dedups
        // repeated FDs/classes to the same Arc) share one engine run.
        let slot = interner.slot((
            Arc::as_ptr(&pa_fds[i]) as usize,
            Arc::as_ptr(&pa_us[j]) as usize,
        ));
        let mut ran = false;
        let entry = slot.get_or_init(|| {
            ran = true;
            let alphabet = fds[i].1.template().alphabet().clone();
            let _span = if trace.is_enabled() {
                Some(trace.span(
                    SpanKind::MatrixCell,
                    &format!("{} × {}", fds[i].0, classes[j].0),
                ))
            } else {
                None
            };
            let mut budget = Budget::new(limits)
                .with_deadline_at(deadline_at)
                .with_trace(trace.clone());
            if let Some(c) = cancel {
                budget = budget.with_cancel(c.clone());
            }
            let analysis = check_independence_governed(
                &alphabet,
                &pa_fds[i],
                &pa_us[j],
                classes[j].1,
                schema_auto,
                Some(&partition),
                compiled.as_ref().map(|(cf, cu, cs)| CompiledTriple {
                    f: &cf[i],
                    u: &cu[j],
                    s: cs,
                }),
                budget,
                0,
            );
            CellEntry { fd: i, analysis }
        });
        if ran {
            let a = entry.analysis.clone();
            MatrixCell {
                fd: i,
                class: j,
                verdict: a.verdict,
                automaton_size: a.total_states,
                explored_states: a.explored_states,
                metrics: a.metrics,
                provenance: CellProvenance::Computed,
            }
        } else {
            let mut b = Budget::new(limits).with_trace(trace.clone());
            b.on_verdict_reused();
            MatrixCell {
                fd: i,
                class: j,
                verdict: entry.analysis.verdict.clone(),
                automaton_size: entry.analysis.total_states,
                explored_states: entry.analysis.explored_states,
                metrics: b.into_metrics(),
                provenance: CellProvenance::ReusedFrom { fd: entry.fd },
            }
        }
    });
    // Attribute the shared compile time to the first cell so the matrix
    // totals stay faithful without double counting.
    if let Some(first) = cells.first_mut() {
        first.metrics.compile_nanos += compile_nanos;
    }
    IndependenceMatrix {
        fd_names: fds.iter().map(|(n, _)| n.to_string()).collect(),
        class_names: classes.iter().map(|(n, _)| n.to_string()).collect(),
        cells,
    }
}

/// Subsumption-aware variant of [`analyze_matrix_governed`]: rows dropped
/// by the `minimization` are materialized as [`CellProvenance::ImpliedRow`]
/// cells without running the engine; kept rows run column-parallel in
/// descending containment-degree order, and within each column a verdict
/// flows along [`paths_subsume`] in the sound direction only —
/// `Independent` from container to contained, a *completed* dependent
/// verdict (`exhausted: None`, witness and all) from contained to
/// container. Budget-exhausted `Unknown`s never propagate. `pa_kept` is
/// parallel to `minimization.kept`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn analyze_matrix_pruned_governed(
    fds: &[(&str, &Fd)],
    classes: &[(&str, &UpdateClass)],
    schema_auto: Option<&HedgeAutomaton>,
    minimization: &Minimization,
    pa_kept: &[Arc<PatternAutomaton>],
    pa_us: &[Arc<PatternAutomaton>],
    limits: &RunLimits,
    cancel: Option<&CancelToken>,
    trace: &TraceHandle,
    compile_nanos: u64,
) -> IndependenceMatrix {
    let kept = &minimization.kept;
    debug_assert_eq!(kept.len(), pa_kept.len());
    let ncols = classes.len();
    let partition = GuardPartition::from_automata(
        pa_kept
            .iter()
            .chain(pa_us.iter())
            .map(|pa| &pa.automaton)
            .chain(schema_auto),
    );
    // Shared arena/CSR compiled forms and realized-cell interner, as in
    // `analyze_matrix_governed`.
    let universal;
    let schema_sym = match schema_auto {
        Some(s) => s,
        None => {
            universal = HedgeAutomaton::universal();
            &universal
        }
    };
    let compiled = fds.first().map(|(_, fd)| {
        let al = fd.template().alphabet();
        (
            pa_kept
                .iter()
                .map(|pa| CompiledAutomaton::compile(&pa.automaton, &partition, al))
                .collect::<Vec<_>>(),
            pa_us
                .iter()
                .map(|pa| CompiledAutomaton::compile(&pa.automaton, &partition, al))
                .collect::<Vec<_>>(),
            CompiledAutomaton::compile(schema_sym, &partition, al),
        )
    });
    let interner = CellInterner::new();
    let deadline_at = Budget::new(limits).deadline_at();

    // Path skeletons of the kept rows, for containment tests.
    let paths: Vec<Option<FdPaths>> = kept.iter().map(|&i| fd_paths(fds[i].1)).collect();
    let contains = |r: usize, q: usize| match (&paths[r], &paths[q]) {
        (Some(pr), Some(pq)) => paths_subsume(pr, pq),
        _ => false,
    };
    // Rows that contain many others run first: their `Independent`
    // verdicts then cover the contained rows. (The dependent direction
    // flows the other way and benefits from the reverse order; with one
    // order to pick, independence — the common verdict in a well-designed
    // FD set — wins.)
    let mut order: Vec<usize> = (0..kept.len()).collect();
    let degree: Vec<usize> = (0..kept.len())
        .map(|r| {
            (0..kept.len())
                .filter(|&q| q != r && contains(r, q))
                .count()
        })
        .collect();
    order.sort_by_key(|&r| std::cmp::Reverse(degree[r]));

    // Engine-computed verdicts so far, per column, for rows with a path
    // skeleton (only those can subsume or be subsumed).
    let mut computed: Vec<Vec<(usize, Verdict)>> = vec![Vec::new(); ncols];
    let mut row_cells: Vec<Option<Vec<MatrixCell>>> = vec![None; kept.len()];
    let cols: Vec<usize> = (0..ncols).collect();
    for &r in &order {
        let fd_idx = kept[r];
        let alphabet = fds[fd_idx].1.template().alphabet().clone();
        let cells: Vec<MatrixCell> = parallel_map(&cols, |&j| {
            // Try to reuse a verdict from an already-computed row of this
            // column before paying for an engine run.
            if paths[r].is_some() {
                for (q, v) in &computed[j] {
                    let reuse = match v {
                        Verdict::Independent if contains(*q, r) => Some(Verdict::Independent),
                        Verdict::Unknown {
                            exhausted: None, ..
                        } if contains(r, *q) => Some(v.clone()),
                        _ => None,
                    };
                    if let Some(verdict) = reuse {
                        let mut b = Budget::new(limits).with_trace(trace.clone());
                        b.on_verdict_reused();
                        return MatrixCell {
                            fd: fd_idx,
                            class: j,
                            verdict,
                            automaton_size: 0,
                            explored_states: 0,
                            metrics: b.into_metrics(),
                            provenance: CellProvenance::ReusedFrom { fd: kept[*q] },
                        };
                    }
                }
            }
            // Identical compiled pairs share one engine run via the
            // interner, exactly as in the unpruned driver.
            let slot = interner.slot((
                Arc::as_ptr(&pa_kept[r]) as usize,
                Arc::as_ptr(&pa_us[j]) as usize,
            ));
            let mut ran = false;
            let entry = slot.get_or_init(|| {
                ran = true;
                let _span = if trace.is_enabled() {
                    Some(trace.span(
                        SpanKind::MatrixCell,
                        &format!("{} × {}", fds[fd_idx].0, classes[j].0),
                    ))
                } else {
                    None
                };
                let mut budget = Budget::new(limits)
                    .with_deadline_at(deadline_at)
                    .with_trace(trace.clone());
                if let Some(c) = cancel {
                    budget = budget.with_cancel(c.clone());
                }
                let analysis = check_independence_governed(
                    &alphabet,
                    &pa_kept[r],
                    &pa_us[j],
                    classes[j].1,
                    schema_auto,
                    Some(&partition),
                    compiled.as_ref().map(|(cf, cu, cs)| CompiledTriple {
                        f: &cf[r],
                        u: &cu[j],
                        s: cs,
                    }),
                    budget,
                    0,
                );
                CellEntry {
                    fd: fd_idx,
                    analysis,
                }
            });
            if ran {
                let a = entry.analysis.clone();
                MatrixCell {
                    fd: fd_idx,
                    class: j,
                    verdict: a.verdict,
                    automaton_size: a.total_states,
                    explored_states: a.explored_states,
                    metrics: a.metrics,
                    provenance: CellProvenance::Computed,
                }
            } else {
                let mut b = Budget::new(limits).with_trace(trace.clone());
                b.on_verdict_reused();
                MatrixCell {
                    fd: fd_idx,
                    class: j,
                    verdict: entry.analysis.verdict.clone(),
                    automaton_size: entry.analysis.total_states,
                    explored_states: entry.analysis.explored_states,
                    metrics: b.into_metrics(),
                    provenance: CellProvenance::ReusedFrom { fd: entry.fd },
                }
            }
        });
        if paths[r].is_some() {
            for cell in &cells {
                if cell.provenance == CellProvenance::Computed {
                    computed[cell.class].push((r, cell.verdict.clone()));
                }
            }
        }
        row_cells[r] = Some(cells);
    }

    // Assemble the full matrix: kept rows in place, implied rows as
    // engine-free cells carrying their provenance.
    let by_of: std::collections::HashMap<usize, &[usize]> = minimization
        .dropped
        .iter()
        .map(|d| (d.index, d.by.as_slice()))
        .collect();
    let mut kept_slot: Vec<Option<Vec<MatrixCell>>> = vec![None; fds.len()];
    for (slot, &i) in kept.iter().enumerate() {
        kept_slot[i] = row_cells[slot].take();
    }
    let mut cells = Vec::with_capacity(fds.len() * ncols);
    for (i, slot) in kept_slot.into_iter().enumerate() {
        match slot {
            Some(row) => cells.extend(row),
            None => {
                let by: Vec<usize> = by_of.get(&i).map(|b| b.to_vec()).unwrap_or_default();
                for j in 0..ncols {
                    cells.push(MatrixCell {
                        fd: i,
                        class: j,
                        // Placeholder, not a criterion verdict: see
                        // `CellProvenance::ImpliedRow`.
                        verdict: Verdict::Unknown {
                            witness: None,
                            exhausted: None,
                        },
                        automaton_size: 0,
                        explored_states: 0,
                        metrics: RunMetrics::default(),
                        provenance: CellProvenance::ImpliedRow { by: by.clone() },
                    });
                }
            }
        }
    }
    if let Some(first) = cells.first_mut() {
        first.metrics.compile_nanos += compile_nanos;
    }
    IndependenceMatrix {
        fd_names: fds.iter().map(|(n, _)| n.to_string()).collect(),
        class_names: classes.iter().map(|(n, _)| n.to_string()).collect(),
        cells,
    }
}

/// The matrix on freshly compiled inputs under an unlimited budget
/// (in-crate test form; external callers go through
/// [`crate::Analyzer::matrix`]).
#[cfg(test)]
pub(crate) fn analyze_matrix_internal(
    fds: &[(&str, &Fd)],
    classes: &[(&str, &UpdateClass)],
    schema: Option<&regtree_hedge::Schema>,
) -> IndependenceMatrix {
    let compile = regtree_runtime::Stopwatch::start();
    let schema_auto = schema.map(|s| s.compiled());
    let pa_fds: Vec<_> = fds
        .iter()
        .map(|(_, fd)| Arc::new(regtree_pattern::compile_pattern(fd.pattern(), true)))
        .collect();
    let pa_us: Vec<_> = classes
        .iter()
        .map(|(_, class)| Arc::new(regtree_pattern::compile_pattern(class.pattern(), false)))
        .collect();
    let compile_nanos = compile.elapsed_nanos();
    analyze_matrix_governed(
        fds,
        classes,
        schema_auto.as_deref(),
        &pa_fds,
        &pa_us,
        &RunLimits::UNLIMITED,
        None,
        &TraceHandle::disabled(),
        compile_nanos,
    )
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::fd::FdBuilder;
    use crate::update::update_class_from_edges;
    use regtree_alphabet::Alphabet;

    fn setup() -> (Vec<Fd>, Vec<UpdateClass>) {
        let a = Alphabet::new();
        let fd_price = FdBuilder::new(a.clone())
            .context("catalog")
            .condition("item/sku")
            .target("item/price")
            .build()
            .unwrap();
        let fd_name = FdBuilder::new(a.clone())
            .context("catalog")
            .condition("item/sku")
            .target("item/name")
            .build()
            .unwrap();
        let restock = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
        let reprice = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
        (vec![fd_price, fd_name], vec![restock, reprice])
    }

    #[test]
    fn matrix_verdicts() {
        let (fds, classes) = setup();
        let m = analyze_matrix_internal(
            &[("price", &fds[0]), ("name", &fds[1])],
            &[("restock", &classes[0]), ("reprice", &classes[1])],
            None,
        );
        // stock updates never touch either FD.
        assert!(m.independent(0, 0));
        assert!(m.independent(1, 0));
        // price updates hit the price FD's target region…
        assert!(!m.independent(0, 1));
        // …but not the name FD.
        assert!(m.independent(1, 1));
        assert_eq!(m.independent_count(), 3);
        assert_eq!(m.fds_to_recheck(1), vec![0]);
        assert!(m.fds_to_recheck(0).is_empty());
    }

    #[test]
    fn matrix_display_table() {
        let (fds, classes) = setup();
        let m = analyze_matrix_internal(
            &[("price", &fds[0])],
            &[("restock", &classes[0]), ("reprice", &classes[1])],
            None,
        );
        let rendered = m.to_string();
        assert!(rendered.contains("indep"), "{rendered}");
        assert!(rendered.contains("RECHECK"), "{rendered}");
        assert!(rendered.contains("price"), "{rendered}");
    }

    #[test]
    fn cells_carry_sizes() {
        let (fds, classes) = setup();
        let m = analyze_matrix_internal(&[("p", &fds[0])], &[("r", &classes[0])], None);
        assert!(m.cell(0, 0).automaton_size > 0);
        assert!(m.cell(0, 0).explored_states > 0);
        assert!(m.cell(0, 0).explored_states <= m.cell(0, 0).automaton_size);
        assert_eq!(m.cell(0, 0).fd, 0);
        assert_eq!(m.cell(0, 0).class, 0);
    }

    #[test]
    fn cell_indexing_is_row_major() {
        let (fds, classes) = setup();
        let m = analyze_matrix_internal(
            &[("price", &fds[0]), ("name", &fds[1])],
            &[("restock", &classes[0]), ("reprice", &classes[1])],
            None,
        );
        assert_eq!(m.cells.len(), 4);
        for i in 0..2 {
            for j in 0..2 {
                let cell = m.cell(i, j);
                assert_eq!((cell.fd, cell.class), (i, j));
                // Row-major layout: cells[i * ncols + j].
                assert_eq!((m.cells[i * 2 + j].fd, m.cells[i * 2 + j].class), (i, j));
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = analyze_matrix_internal(&[], &[], None);
        assert!(m.cells.is_empty());
        assert!(m.fd_names.is_empty());
        assert_eq!(m.independent_count(), 0);
        // Display of an empty matrix must not panic.
        let rendered = m.to_string();
        assert!(rendered.ends_with('\n'));
        // No rows and no columns also means nothing to recheck.
        assert!(m.fds_to_recheck(0).is_empty());
    }

    #[test]
    fn pruned_matrix_reuses_independent_verdicts_downward() {
        use crate::analyzer::Analyzer;
        use crate::pathfd::PathFd;
        let a = Alphabet::new();
        // `wide` marks the whole subtree at c/e; `narrow` a sub-region of
        // it. An update class away from both: `wide` computes Independent,
        // `narrow` reuses it.
        let wide = PathFd::parse(&a, "/s : c/e/d -> c/e")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        let narrow = PathFd::parse(&a, "/s : c/e/d -> c/e/r")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        let other = update_class_from_edges(&a, &["s/x/y"]).unwrap();
        let an = Analyzer::builder().build();
        let m = an.matrix_pruned(
            &[("wide", &wide), ("narrow", &narrow)],
            &[("other", &other)],
        );
        assert!(m.independent(0, 0));
        assert!(m.independent(1, 0));
        assert_eq!(m.cell(0, 0).provenance, CellProvenance::Computed);
        assert_eq!(
            m.cell(1, 0).provenance,
            CellProvenance::ReusedFrom { fd: 0 }
        );
        assert_eq!(m.reused_count(), 1);
        assert_eq!(m.computed_count(), 1);
        assert_eq!(m.cell(1, 0).metrics.verdicts_reused, 1);
        // Display marks the reused verdict.
        assert!(m.to_string().contains("indep*"), "{m}");
    }

    #[test]
    fn pruned_matrix_agrees_with_unpruned_on_computed_cells() {
        use crate::analyzer::Analyzer;
        let (fds, classes) = setup();
        let named_fds = [("price", &fds[0]), ("name", &fds[1])];
        let named_classes = [("restock", &classes[0]), ("reprice", &classes[1])];
        let an = Analyzer::builder().build();
        let plain = an.matrix(&named_fds, &named_classes);
        let pruned = an.matrix_pruned(&named_fds, &named_classes);
        assert_eq!(plain.cells.len(), pruned.cells.len());
        for (p, q) in plain.cells.iter().zip(&pruned.cells) {
            assert_eq!((p.fd, p.class), (q.fd, q.class));
            if q.provenance == CellProvenance::Computed {
                assert_eq!(
                    p.verdict.is_independent(),
                    q.verdict.is_independent(),
                    "cell ({}, {})",
                    p.fd,
                    p.class
                );
            }
        }
    }

    #[test]
    fn implied_rows_are_not_reported_for_recheck() {
        use crate::analyzer::Analyzer;
        use crate::pathfd::PathFd;
        let a = Alphabet::new();
        // fd 1 is fd 0 weakened with an extra condition: implied, dropped.
        // A reprice update hits both FDs' region; only the implier (which
        // is what actually gets re-verified) may be reported.
        let strong = PathFd::parse(&a, "/catalog : item/sku -> item/price")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        let weak = PathFd::parse(&a, "/catalog : item/sku, item/name -> item/price")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        let reprice = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
        let restock = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
        let an = Analyzer::builder().build();
        let m = an.matrix_pruned(
            &[("strong", &strong), ("weak", &weak)],
            &[("reprice", &reprice), ("restock", &restock)],
        );
        assert_eq!(m.implied_row_count(), 1);
        // Regression: the dropped row must never show up as a recheck —
        // its implier was rechecked, which re-establishes it.
        assert_eq!(m.fds_to_recheck(0), vec![0]);
        assert!(m.fds_to_recheck(1).is_empty());
        assert_eq!(m.recheck_count(), 1);
        // …but it is not claimed independent either.
        assert!(!m.independent(1, 0));
        assert!(!m.independent(1, 1));
        assert_eq!(
            m.cell(1, 0).provenance,
            CellProvenance::ImpliedRow { by: vec![0] }
        );
        // Display renders the dropped row distinctly.
        assert!(m.to_string().contains("implied"), "{m}");
    }

    #[test]
    fn exhausted_verdicts_never_propagate() {
        use crate::analyzer::Analyzer;
        use crate::pathfd::PathFd;
        use regtree_runtime::RunLimits;
        let a = Alphabet::new();
        let wide = PathFd::parse(&a, "/s : c/e/d -> c/e")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        let narrow = PathFd::parse(&a, "/s : c/e/d -> c/e/r")
            .unwrap()
            .to_fd(&a)
            .unwrap();
        let other = update_class_from_edges(&a, &["s/x/y"]).unwrap();
        // A one-state cap exhausts every engine run: no verdict may be
        // reused from a cut-short row.
        let an = Analyzer::builder()
            .limits(RunLimits::default().with_max_states(1))
            .build();
        let m = an.matrix_pruned(
            &[("wide", &wide), ("narrow", &narrow)],
            &[("other", &other)],
        );
        for cell in &m.cells {
            assert_ne!(
                std::mem::discriminant(&cell.provenance),
                std::mem::discriminant(&CellProvenance::ReusedFrom { fd: 0 }),
                "exhausted verdict was reused: {cell:?}"
            );
        }
        assert_eq!(m.exhausted_count(), 2);
    }

    #[test]
    fn empty_rows_with_columns() {
        let (_, classes) = setup();
        let m = analyze_matrix_internal(&[], &[("restock", &classes[0])], None);
        assert!(m.cells.is_empty());
        assert_eq!(m.class_names.len(), 1);
        assert!(m.fds_to_recheck(0).is_empty());
    }
}
