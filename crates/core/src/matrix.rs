//! Batch independence analysis.
//!
//! The practical deployment the paper motivates (and \[14\] addresses
//! document-side) maintains a *set* of functional dependencies under a
//! *set* of update classes. [`analyze_matrix`] runs the criterion for every
//! pair and summarizes which FDs need re-verification after which update
//! classes — the static complement of a validator's scheduling table.
//!
//! The matrix amortizes everything shareable across cells: the schema
//! automaton is compiled once, each FD row and update-class column is
//! compiled to its pattern automaton once, and a single
//! [`GuardPartition`] of label minterms serves every cell's guard
//! intersections. Cells then run the lazy on-the-fly emptiness engine
//! (`crate::lazy_ic`) on scoped worker threads
//! ([`regtree_pattern::parallel_map`]).

use std::fmt;
use std::sync::Arc;

use regtree_hedge::{GuardPartition, HedgeAutomaton, Schema};
use regtree_pattern::{compile_pattern, parallel_map, PatternAutomaton};
use regtree_runtime::{
    Budget, CancelToken, RunLimits, RunMetrics, SpanKind, Stopwatch, TraceHandle,
};

use crate::fd::Fd;
use crate::independence::{check_independence_governed, Verdict};
use crate::update::UpdateClass;

/// One cell of the analysis matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// FD index (row).
    pub fd: usize,
    /// Update-class index (column).
    pub class: usize,
    /// The criterion's verdict.
    pub verdict: Verdict,
    /// State count of the full product the criterion ranges over.
    pub automaton_size: usize,
    /// Product states the lazy engine actually explored.
    pub explored_states: usize,
    /// Work counters and wall time of this cell's run.
    pub metrics: RunMetrics,
}

/// The full matrix plus aggregate statistics.
#[derive(Clone, Debug)]
pub struct IndependenceMatrix {
    /// Row labels (FD names).
    pub fd_names: Vec<String>,
    /// Column labels (class names).
    pub class_names: Vec<String>,
    /// All cells, row-major.
    pub cells: Vec<MatrixCell>,
}

impl IndependenceMatrix {
    /// The cell for `(fd, class)`.
    pub fn cell(&self, fd: usize, class: usize) -> &MatrixCell {
        &self.cells[fd * self.class_names.len() + class]
    }

    /// Is the pair provably independent?
    pub fn independent(&self, fd: usize, class: usize) -> bool {
        self.cell(fd, class).verdict.is_independent()
    }

    /// Number of provably independent pairs.
    pub fn independent_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict.is_independent())
            .count()
    }

    /// For an update class: the FDs that must be re-verified after an
    /// update of that class. Every non-`Independent` row counts — including
    /// `Unknown` cells whose run was cancelled or exhausted its budget
    /// (only a proof of independence may skip re-verification).
    pub fn fds_to_recheck(&self, class: usize) -> Vec<usize> {
        (0..self.fd_names.len())
            .filter(|&fd| !self.independent(fd, class))
            .collect()
    }

    /// Number of `Unknown` cells whose run was cut short (budget or
    /// cancellation) rather than decided. These are sound to treat as
    /// "recheck", but re-running them with a larger budget may still prove
    /// independence.
    pub fn exhausted_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict.exhausted().is_some())
            .count()
    }

    /// Number of cells that must be rechecked (every non-independent cell,
    /// exhausted ones included).
    pub fn recheck_count(&self) -> usize {
        self.cells.len() - self.independent_count()
    }
}

impl fmt::Display for IndependenceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self
            .fd_names
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(4)
            .max(4);
        write!(f, "{:w$}", "", w = w + 2)?;
        for c in &self.class_names {
            write!(f, "{c:>12}")?;
        }
        writeln!(f)?;
        for (i, name) in self.fd_names.iter().enumerate() {
            write!(f, "{name:<w$}  ", w = w)?;
            for j in 0..self.class_names.len() {
                let cell = self.cell(i, j);
                let mark = if cell.verdict.is_independent() {
                    "indep"
                } else if cell.verdict.exhausted().is_some() {
                    // Cut short by budget/cancellation: still a recheck, but
                    // a bigger budget might prove independence.
                    "RECHECK?"
                } else {
                    "RECHECK"
                };
                write!(f, "{mark:>12}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Matrix analysis on precompiled rows/columns under a shared budget. The
/// wall-clock deadline is global to the whole matrix (a deadline bounds the
/// *call*, not each cell); the count caps apply per cell. A cancelled run
/// still returns every cell: cells that never ran report
/// `Unknown { exhausted: Some(Cancelled) }`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn analyze_matrix_governed(
    fds: &[(&str, &Fd)],
    classes: &[(&str, &UpdateClass)],
    schema_auto: Option<&HedgeAutomaton>,
    pa_fds: &[Arc<PatternAutomaton>],
    pa_us: &[Arc<PatternAutomaton>],
    limits: &RunLimits,
    cancel: Option<&CancelToken>,
    trace: &TraceHandle,
    compile_nanos: u64,
) -> IndependenceMatrix {
    let partition = GuardPartition::from_automata(
        pa_fds
            .iter()
            .chain(pa_us.iter())
            .map(|pa| &pa.automaton)
            .chain(schema_auto),
    );
    // One deadline for the whole matrix, captured before the first cell.
    let deadline_at = Budget::new(limits).deadline_at();
    let pairs: Vec<(usize, usize)> = (0..fds.len())
        .flat_map(|i| (0..classes.len()).map(move |j| (i, j)))
        .collect();
    let mut cells = parallel_map(&pairs, |&(i, j)| {
        let alphabet = fds[i].1.template().alphabet().clone();
        let _span = if trace.is_enabled() {
            Some(trace.span(
                SpanKind::MatrixCell,
                &format!("{} × {}", fds[i].0, classes[j].0),
            ))
        } else {
            None
        };
        let mut budget = Budget::new(limits)
            .with_deadline_at(deadline_at)
            .with_trace(trace.clone());
        if let Some(c) = cancel {
            budget = budget.with_cancel(c.clone());
        }
        check_independence_governed(
            &alphabet,
            &pa_fds[i],
            &pa_us[j],
            classes[j].1,
            schema_auto,
            Some(&partition),
            budget,
            0,
        )
    });
    // Attribute the shared compile time to the first cell so the matrix
    // totals stay faithful without double counting.
    if let Some(first) = cells.first_mut() {
        first.metrics.compile_nanos += compile_nanos;
    }
    IndependenceMatrix {
        fd_names: fds.iter().map(|(n, _)| n.to_string()).collect(),
        class_names: classes.iter().map(|(n, _)| n.to_string()).collect(),
        cells: cells
            .into_iter()
            .zip(&pairs)
            .map(|(a, &(i, j))| MatrixCell {
                fd: i,
                class: j,
                verdict: a.verdict,
                automaton_size: a.total_states,
                explored_states: a.explored_states,
                metrics: a.metrics,
            })
            .collect(),
    }
}

/// Non-deprecated internal form of [`analyze_matrix`] (unlimited budget).
pub(crate) fn analyze_matrix_internal(
    fds: &[(&str, &Fd)],
    classes: &[(&str, &UpdateClass)],
    schema: Option<&Schema>,
) -> IndependenceMatrix {
    let compile = Stopwatch::start();
    let schema_auto = schema.map(|s| s.compile());
    let pa_fds: Vec<_> = fds
        .iter()
        .map(|(_, fd)| Arc::new(compile_pattern(fd.pattern(), true)))
        .collect();
    let pa_us: Vec<_> = classes
        .iter()
        .map(|(_, class)| Arc::new(compile_pattern(class.pattern(), false)))
        .collect();
    let compile_nanos = compile.elapsed_nanos();
    analyze_matrix_governed(
        fds,
        classes,
        schema_auto.as_ref(),
        &pa_fds,
        &pa_us,
        &RunLimits::UNLIMITED,
        None,
        &TraceHandle::disabled(),
        compile_nanos,
    )
}

/// Runs the criterion for every (FD, class) pair.
///
/// Shared work — schema compilation, pattern compilation per row/column, and
/// the guard minterm partition — happens once up front; the cells themselves
/// run in parallel on scoped worker threads.
#[deprecated(
    since = "0.1.0",
    note = "use Analyzer::matrix, which caches compiled automata and supports budgets and cancellation"
)]
pub fn analyze_matrix(
    fds: &[(&str, &Fd)],
    classes: &[(&str, &UpdateClass)],
    schema: Option<&Schema>,
) -> IndependenceMatrix {
    analyze_matrix_internal(fds, classes, schema)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the deprecated wrapper stays covered by tests

    use super::*;
    use crate::fd::FdBuilder;
    use crate::update::update_class_from_edges;
    use regtree_alphabet::Alphabet;

    fn setup() -> (Vec<Fd>, Vec<UpdateClass>) {
        let a = Alphabet::new();
        let fd_price = FdBuilder::new(a.clone())
            .context("catalog")
            .condition("item/sku")
            .target("item/price")
            .build()
            .unwrap();
        let fd_name = FdBuilder::new(a.clone())
            .context("catalog")
            .condition("item/sku")
            .target("item/name")
            .build()
            .unwrap();
        let restock = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
        let reprice = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
        (vec![fd_price, fd_name], vec![restock, reprice])
    }

    #[test]
    fn matrix_verdicts() {
        let (fds, classes) = setup();
        let m = analyze_matrix(
            &[("price", &fds[0]), ("name", &fds[1])],
            &[("restock", &classes[0]), ("reprice", &classes[1])],
            None,
        );
        // stock updates never touch either FD.
        assert!(m.independent(0, 0));
        assert!(m.independent(1, 0));
        // price updates hit the price FD's target region…
        assert!(!m.independent(0, 1));
        // …but not the name FD.
        assert!(m.independent(1, 1));
        assert_eq!(m.independent_count(), 3);
        assert_eq!(m.fds_to_recheck(1), vec![0]);
        assert!(m.fds_to_recheck(0).is_empty());
    }

    #[test]
    fn matrix_display_table() {
        let (fds, classes) = setup();
        let m = analyze_matrix(
            &[("price", &fds[0])],
            &[("restock", &classes[0]), ("reprice", &classes[1])],
            None,
        );
        let rendered = m.to_string();
        assert!(rendered.contains("indep"), "{rendered}");
        assert!(rendered.contains("RECHECK"), "{rendered}");
        assert!(rendered.contains("price"), "{rendered}");
    }

    #[test]
    fn cells_carry_sizes() {
        let (fds, classes) = setup();
        let m = analyze_matrix(&[("p", &fds[0])], &[("r", &classes[0])], None);
        assert!(m.cell(0, 0).automaton_size > 0);
        assert!(m.cell(0, 0).explored_states > 0);
        assert!(m.cell(0, 0).explored_states <= m.cell(0, 0).automaton_size);
        assert_eq!(m.cell(0, 0).fd, 0);
        assert_eq!(m.cell(0, 0).class, 0);
    }

    #[test]
    fn cell_indexing_is_row_major() {
        let (fds, classes) = setup();
        let m = analyze_matrix(
            &[("price", &fds[0]), ("name", &fds[1])],
            &[("restock", &classes[0]), ("reprice", &classes[1])],
            None,
        );
        assert_eq!(m.cells.len(), 4);
        for i in 0..2 {
            for j in 0..2 {
                let cell = m.cell(i, j);
                assert_eq!((cell.fd, cell.class), (i, j));
                // Row-major layout: cells[i * ncols + j].
                assert_eq!((m.cells[i * 2 + j].fd, m.cells[i * 2 + j].class), (i, j));
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = analyze_matrix(&[], &[], None);
        assert!(m.cells.is_empty());
        assert!(m.fd_names.is_empty());
        assert_eq!(m.independent_count(), 0);
        // Display of an empty matrix must not panic.
        let rendered = m.to_string();
        assert!(rendered.ends_with('\n'));
        // No rows and no columns also means nothing to recheck.
        assert!(m.fds_to_recheck(0).is_empty());
    }

    #[test]
    fn empty_rows_with_columns() {
        let (_, classes) = setup();
        let m = analyze_matrix(&[], &[("restock", &classes[0])], None);
        assert!(m.cells.is_empty());
        assert_eq!(m.class_names.len(), 1);
        assert!(m.fds_to_recheck(0).is_empty());
    }
}
