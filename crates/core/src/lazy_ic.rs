//! Lazy, on-the-fly emptiness of the IC product.
//!
//! The eager pipeline ([`crate::independence::check_independence_eager`])
//! materializes the full FD×U×bit automaton, takes a second eager product
//! with the schema automaton, and only then runs the emptiness fixpoint —
//! paying for every product state and every horizontal product transition
//! whether or not it is reachable. This module explores the same product
//! *bottom-up from realizable firings only*, over the arena/CSR compiled
//! form of the three automata ([`CompiledAutomaton`]):
//!
//! * product states `(f, u, bit, s)` are interned the first time they are
//!   realized — in a dense index table when the full product fits, a hash
//!   map above that — so the unreachable bulk of the
//!   `O(aU·aFD·|Σ|·|AS|·|U|·|FD|)` state space is never touched;
//! * guards are pre-compiled into packed minterm masks over the
//!   [`GuardPartition`] classes, so every guard conjunction of the setup is
//!   a word-parallel `&` (exact, because the partition covers the guards —
//!   see [`regtree_hedge::partition`]); the symbolic `LabelGuard` never
//!   appears on the hot path;
//! * guard-compatible transition triples `(t_FD, t_U, t_S)` are enumerated
//!   over the set bits of the pair mask against the schema's per-class CSR
//!   candidate lists rather than per symbol;
//! * each triple keeps an incremental frontier of horizontal-NFA state
//!   tuples `(s_f, s_u, s_s, seen)` that advances as new product states
//!   realize — no horizontal product automaton is ever built, and no NFA is
//!   re-simulated from scratch. Scheduling is demand-driven: a triple
//!   registers which `f` tree states its frontier has symbol edges on, and
//!   a newly realized letter wakes exactly the triples watching its `f`
//!   component (instead of round-robin scans over every triple);
//! * the search stops the moment an accepting root firing with the update
//!   bit set appears, reconstructing a witness document from the recorded
//!   firings.
//!
//! Verdicts coincide with the eager path: the frontier's `seen` flag is the
//! OR of consumed letters' bits and the accepting bit is `local | seen`,
//! which is exactly the union of the three `BitMode` transition families of
//! the eager construction. `tests/ic_lazy_parity.rs` checks the equivalence
//! on randomized inputs.

use std::collections::HashMap;

use regtree_alphabet::{Alphabet, LabelKind, Symbol};
use regtree_automata::StateId;
use regtree_hedge::{
    iter_classes, CompiledAutomaton, GuardPartition, HedgeAutomaton, TreeState, ANY_LETTER,
};
use regtree_pattern::PatternAutomaton;
use regtree_runtime::{Budget, Resource, SpanKind};
use regtree_xml::{Document, TreeSpec};

use crate::independence::Verdict;
use crate::update::UpdateClass;

/// Verdict plus exploration statistics of one lazy emptiness run.
pub(crate) struct LazyOutcome {
    /// The verdict (with witness on `Unknown`).
    pub verdict: Verdict,
    /// Product states actually interned during the search.
    pub explored_states: usize,
    /// States of the full (never materialized) product: `|FD|·|U|·2·|A_S|`.
    pub total_states: usize,
}

/// The compiled forms of the three automata of one IC check, borrowed so
/// matrix drivers can compile once per automaton and share across cells.
/// All three must be compiled against the *same* [`GuardPartition`] that is
/// passed to [`lazy_independence`].
pub(crate) struct CompiledTriple<'a> {
    /// The FD pattern automaton (compiled with marking).
    pub f: &'a CompiledAutomaton,
    /// The update pattern automaton.
    pub u: &'a CompiledAutomaton,
    /// The schema automaton (or the compiled universal automaton).
    pub s: &'a CompiledAutomaton,
}

/// A product tree state `(f, u, bit, s)`, interned on first realization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    f: TreeState,
    u: TreeState,
    bit: u8,
    s: TreeState,
}

/// A frontier state of one transition triple's horizontal product:
/// NFA states of the three components plus the OR of consumed letters' bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct FState {
    sf: StateId,
    su: StateId,
    ss: StateId,
    seen: u8,
}

type LetterId = u32;

/// First-reach back-pointer of a frontier state: `(consumed letter,
/// predecessor)`, letter `None` for ε-moves; `None` at the start tuple.
type Pred = Option<(Option<LetterId>, u32)>;

/// Above this many product states the interner falls back to a hash map;
/// below it, a dense `u32` index table (256 KiB worst case — L2-resident)
/// makes every membership probe a single array load, far cheaper than
/// hashing a 16-byte key. The search probes the table (pump done-checks,
/// realization dedup) far more often than it fills it.
const DENSE_TABLE_LIMIT: usize = 1 << 16;

/// Sentinel in the dense table: the key is not interned.
const NO_ID: u32 = u32::MAX;

/// Interner of realized product states: dense-indexed when the full product
/// is small enough, hash-keyed otherwise. Both backings persist in the
/// per-thread [`Workspace`] between runs; the dense slab keeps the
/// invariant "every slot is [`NO_ID`]" across calls (see [`Self::reset`]),
/// so re-preparing it never re-memsets the whole slab.
#[derive(Default)]
struct StateTable {
    dense: Vec<u32>,
    sparse: HashMap<Key, LetterId>,
    dense_mode: bool,
    nu: usize,
    ns: usize,
}

impl StateTable {
    /// Sizes the table for a run over `total` product states.
    fn prepare(&mut self, nu: usize, ns: usize, total: usize) {
        self.nu = nu;
        self.ns = ns;
        self.dense_mode = total <= DENSE_TABLE_LIMIT;
        if self.dense_mode && self.dense.len() < total {
            self.dense.resize(total, NO_ID);
        }
    }

    fn idx(&self, k: Key) -> usize {
        ((k.f as usize * self.nu + k.u as usize) * 2 + k.bit as usize) * self.ns + k.s as usize
    }

    fn contains(&self, k: Key) -> bool {
        if self.dense_mode {
            self.dense[self.idx(k)] != NO_ID
        } else {
            self.sparse.contains_key(&k)
        }
    }

    fn insert(&mut self, k: Key, id: LetterId) {
        if self.dense_mode {
            let i = self.idx(k);
            self.dense[i] = id;
        } else {
            self.sparse.insert(k, id);
        }
    }

    /// Clears exactly the slots the run filled (`letters` holds every
    /// inserted key), restoring the all-[`NO_ID`] invariant without
    /// touching the untouched bulk of the slab.
    fn reset(&mut self, letters: &[Key]) {
        if self.dense_mode {
            for &k in letters {
                let i = self.idx(k);
                self.dense[i] = NO_ID;
            }
        } else {
            self.sparse.clear();
        }
    }
}

/// The three compiled automata of the running check, threaded through the
/// hot functions so sims stay plain data. Frontier NFA states ([`FState`])
/// are *global* horizontal ids into these arenas.
#[derive(Clone, Copy)]
struct Autos<'a> {
    cf: &'a CompiledAutomaton,
    cu: &'a CompiledAutomaton,
    cs: &'a CompiledAutomaton,
}

/// Incremental frontier of one guard-compatible transition triple.
struct Sim {
    /// Start of this triple's guard mask in the triple-mask arena.
    mask_row: usize,
    tf_target: TreeState,
    tu_target: TreeState,
    ts_target: TreeState,
    /// This node is an updated node inside the FD region.
    local: bool,
    /// The guard only admits leaf labels: only the empty child word applies.
    leaf_only: bool,
    /// Accepting at the document root: all three targets final/accepting and
    /// the guard mask admits the reserved `/` label's class.
    root_final: bool,
    /// Frontier states with their first-reach back-pointers, deduplicated
    /// by linear scan: frontiers stay small (bounded by the realized
    /// portion of `|hf|·|hu|·|hs|·2`), so scanning beats hash-map churn —
    /// and one flat vec means one allocation per sim, not one per field.
    states: Vec<(FState, Pred)>,
    /// Expansion watermark: `states[..expanded]` have been ε-closed and
    /// replayed; the rest are fresh.
    expanded: u32,
    dead: bool,
}

/// Sentinel "no entry" index in the intrusive linked-list arenas.
const NONE: u32 = u32::MAX;

/// Per-sim wildcard flags in [`Shared::any_flags`]: the frontier has a
/// wildcard edge on the `f` / `u` / `s` component.
const F_ANY: u8 = 1;
const U_ANY: u8 = 2;
const S_ANY: u8 = 4;

/// Interner of realized product states, their firings, and the demand-driven
/// scheduling state (watcher lists + dirty queue).
struct Shared<'b> {
    letters: Vec<Key>,
    table: StateTable,
    /// Per letter: the `(sim, frontier state)` acceptance that realized it.
    firings: Vec<(u32, u32)>,
    /// First accepting root firing `(sim, frontier state)`.
    root_hit: Option<(u32, u32)>,
    /// Cooperative resource governor; counters are cheap per-event integer
    /// compares, the deadline/cancel poll is amortized inside the budget.
    budget: &'b mut Budget,
    /// First exhausted resource: the search unwinds as soon as it is set
    /// (treated exactly like `root_hit` by the fixpoint loops).
    exhausted: Option<Resource>,
    /// Number of FD-side tree states (`f` components of letters).
    nf: usize,
    /// Number of update-side and schema-side tree states.
    nu: usize,
    ns: usize,
    /// Word offsets of the component sections inside one sim's combined
    /// wants row: `f` bits at 0, `u` bits at `wf`, `s` bits at `wf + wu`;
    /// `stride = wf + wu + ws` is the full row width, so one resize per
    /// sim grows all three bitsets at once.
    wf: usize,
    wu: usize,
    stride: usize,
    /// Per-sim wants bitsets over the three components' tree states: the
    /// union of the frontier's symbol edges, one combined row per sim. A
    /// letter is offered — and, crucially, a quiescent sim is *woken* —
    /// only when all three of the letter's components have a consuming
    /// edge somewhere in the frontier. The `f` side alone is a weak filter
    /// whenever the FD pattern descends by wildcard; with a schema the `s`
    /// side is usually the selective one, and on deep update chains the
    /// `u` side is.
    wants: Vec<u64>,
    /// Per-sim wildcard-edge flags ([`F_ANY`] | [`U_ANY`] | [`S_ANY`]).
    any_flags: Vec<u8>,
    /// Per-sim queues of delivered-but-unoffered letters. [`Self::realize`]
    /// pushes a new letter to exactly the sims whose frontier can consume
    /// it on all three components; `pump` drains them. Exact delivery
    /// replaces a per-sim cursor walk over the whole letter sequence.
    pending: Vec<Vec<LetterId>>,
    /// Intrusive per-component letter indexes: `lhead_*[state]` is the most
    /// recently realized letter with that component, `lnext_*[letter]`
    /// chains to the previous one ([`NONE`] ends a chain). A fresh frontier
    /// state replays only the letters its most selective non-wildcard
    /// component has symbol edges on; flat arenas mean realizing a letter
    /// costs three pushes and no per-state allocation.
    lhead_f: Vec<u32>,
    lnext_f: Vec<u32>,
    lhead_u: Vec<u32>,
    lnext_u: Vec<u32>,
    lhead_s: Vec<u32>,
    lnext_s: Vec<u32>,
    /// Scratch buffer of replay candidates (see [`expand`]).
    replay_buf: Vec<LetterId>,
    /// Intrusive waiting lists: `whead[f]` heads a chain of `(sim, next)`
    /// links in `wlink` — the sims with a symbol edge on `f` tree state
    /// `f`. A realized letter wakes exactly these (modulo the wants veto).
    whead: Vec<u32>,
    wlink: Vec<(u32, u32)>,
    /// Sims with a wildcard `f` edge: every letter wakes them.
    watchers_any: Vec<u32>,
    /// Sims with pending work, deduplicated by `in_dirty`.
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
}

/// Per-thread reusable scratch of the lazy engine: every flat structure a
/// run fills is kept here between calls — cleared, with capacity (and the
/// dense-table invariant) intact — so repeated analyses (matrix sweeps,
/// benchmark loops, server workloads) stop paying allocation, deallocation
/// and memset costs on every call.
#[derive(Default)]
struct Workspace {
    table: StateTable,
    letters: Vec<Key>,
    firings: Vec<(u32, u32)>,
    wants: Vec<u64>,
    any_flags: Vec<u8>,
    pending: Vec<Vec<LetterId>>,
    lhead_f: Vec<u32>,
    lnext_f: Vec<u32>,
    lhead_u: Vec<u32>,
    lnext_u: Vec<u32>,
    lhead_s: Vec<u32>,
    lnext_s: Vec<u32>,
    replay_buf: Vec<LetterId>,
    whead: Vec<u32>,
    wlink: Vec<(u32, u32)>,
    watchers_any: Vec<u32>,
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
    sims: Vec<Sim>,
    /// Recycled `Sim::states` vectors (the only per-sim heap block).
    spare_states: Vec<Vec<(FState, Pred)>>,
    tri_masks: Vec<u64>,
    /// Schema-candidate dedup stamps; valid across runs because
    /// `generation` only grows (reset together when it nears wrap-around).
    stamp: Vec<u32>,
    generation: u32,
    fu: Vec<u64>,
    cand: Vec<u32>,
    /// Compiled universal automaton from the last no-schema run, keyed by
    /// the partition class count it was compiled against.
    uni_compiled: Option<(usize, CompiledAutomaton)>,
}

thread_local! {
    static WORKSPACE: std::cell::RefCell<Workspace> =
        std::cell::RefCell::new(Workspace::default());
}

impl Shared<'_> {
    fn realize(&mut self, key: Key, si: u32, fi: u32) {
        if self.table.contains(key) {
            return;
        }
        if let Err(r) = self.budget.on_state() {
            self.exhausted.get_or_insert(r);
            return;
        }
        let id = self.letters.len() as LetterId;
        self.table.insert(key, id);
        self.letters.push(key);
        self.firings.push((si, fi));
        self.lnext_f.push(self.lhead_f[key.f as usize]);
        self.lhead_f[key.f as usize] = id;
        self.lnext_u.push(self.lhead_u[key.u as usize]);
        self.lhead_u[key.u as usize] = id;
        self.lnext_s.push(self.lhead_s[key.s as usize]);
        self.lhead_s[key.s as usize] = id;
        // Deliver to exactly the sims that can consume this letter — on all
        // three components, not just `f`: a useless delivery costs a queue
        // round-trip and an offer walk, which dwarfs the bitset probes.
        let mut cur = self.whead[key.f as usize];
        while cur != NONE {
            let (w, next) = self.wlink[cur as usize];
            if self.wants(w, key) {
                self.pending[w as usize].push(id);
                self.mark_dirty(w);
            }
            cur = next;
        }
        for i in 0..self.watchers_any.len() {
            let w = self.watchers_any[i];
            // A sim with both symbol and wildcard `f` states may already
            // have been delivered to by the loop above.
            if self.pending[w as usize].last() != Some(&id) && self.wants(w, key) {
                self.pending[w as usize].push(id);
                self.mark_dirty(w);
            }
        }
    }

    fn mark(dirty: &mut Vec<u32>, in_dirty: &mut [bool], si: u32) {
        if !in_dirty[si as usize] {
            in_dirty[si as usize] = true;
            dirty.push(si);
        }
    }

    fn mark_dirty(&mut self, si: u32) {
        let Shared {
            dirty, in_dirty, ..
        } = self;
        Self::mark(dirty, in_dirty, si);
    }

    /// Is bit `i` set in the bitset starting at `row` of `arena`?
    fn want_bit(arena: &[u64], row: usize, i: TreeState) -> bool {
        let i = i as usize;
        arena[row + i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Does sim `si`'s frontier have a consuming edge on every component of
    /// `key`? Letters failing this on any side yield no successors.
    fn wants(&self, si: u32, key: Key) -> bool {
        let s = si as usize;
        let fl = self.any_flags[s];
        let row = s * self.stride;
        (fl & F_ANY != 0 || Self::want_bit(&self.wants, row, key.f))
            && (fl & U_ANY != 0 || Self::want_bit(&self.wants, row + self.wf, key.u))
            && (fl & S_ANY != 0 || Self::want_bit(&self.wants, row + self.wf + self.wu, key.s))
    }

    /// Has the search hit a root firing or run out of budget?
    fn stop(&self) -> bool {
        self.root_hit.is_some() || self.exhausted.is_some()
    }
}

/// Interns a frontier state, checking acceptance of all three components.
fn add_fstate(
    si: u32,
    autos: Autos<'_>,
    sim: &mut Sim,
    shared: &mut Shared,
    st: FState,
    pred: Option<(Option<LetterId>, u32)>,
) {
    if sim.states.iter().any(|&(s, _)| s == st) {
        return;
    }
    if let Err(r) = shared.budget.on_frontier_push() {
        shared.exhausted.get_or_insert(r);
        return;
    }
    let id = sim.states.len() as u32;
    sim.states.push((st, pred));
    // Register the letters this state's `f` component has symbol edges on.
    // Letters naming states the FD automaton does not have (sentinel
    // fillers) can never realize and are not registered.
    let steps = autos.cf.h_step_from(st.sf);
    let has_any = steps.last().is_some_and(|&(a, _)| a == ANY_LETTER);
    if has_any && shared.any_flags[si as usize] & F_ANY == 0 {
        shared.any_flags[si as usize] |= F_ANY;
        shared.watchers_any.push(si);
    }
    let row = si as usize * shared.stride;
    for &(a, _) in steps {
        let ai = a as usize;
        if ai < shared.nf {
            let w = row + ai / 64;
            let b = 1u64 << (ai % 64);
            if shared.wants[w] & b == 0 {
                shared.wants[w] |= b;
                shared.wlink.push((si, shared.whead[ai]));
                shared.whead[ai] = (shared.wlink.len() - 1) as u32;
            }
        }
    }
    // The `u` and `s` sides get wants bits but no watcher lists: waking is
    // driven by `f` alone, the extra bitsets veto wakes and offers.
    let urow = autos.cu.h_step_from(st.su);
    if urow.last().is_some_and(|&(a, _)| a == ANY_LETTER) {
        shared.any_flags[si as usize] |= U_ANY;
    }
    let u_off = row + shared.wf;
    for &(a, _) in urow {
        let ai = a as usize;
        if ai < shared.nu {
            shared.wants[u_off + ai / 64] |= 1u64 << (ai % 64);
        }
    }
    let srow = autos.cs.h_step_from(st.ss);
    if srow.last().is_some_and(|&(a, _)| a == ANY_LETTER) {
        shared.any_flags[si as usize] |= S_ANY;
    }
    let s_off = u_off + shared.wu;
    for &(a, _) in srow {
        let ai = a as usize;
        if ai < shared.ns {
            shared.wants[s_off + ai / 64] |= 1u64 << (ai % 64);
        }
    }
    if autos.cf.h_is_accept(st.sf) && autos.cu.h_is_accept(st.su) && autos.cs.h_is_accept(st.ss) {
        let bit = u8::from(sim.local) | st.seen;
        shared.realize(
            Key {
                f: sim.tf_target,
                u: sim.tu_target,
                bit,
                s: sim.ts_target,
            },
            si,
            id,
        );
        if sim.root_final && bit == 1 && shared.root_hit.is_none() {
            shared.root_hit = Some((si, id));
        }
    }
}

/// Offers realized letter `li` to frontier state `xi`: one fused scan per
/// component (symbol edges matching the letter's component, then wildcard
/// entries, which carry [`ANY_LETTER`] and match everything).
fn try_letter(
    si: u32,
    autos: Autos<'_>,
    sim: &mut Sim,
    shared: &mut Shared,
    xi: u32,
    li: LetterId,
) {
    let x = sim.states[xi as usize].0;
    let key = shared.letters[li as usize];
    shared.budget.on_transition();
    let seen2 = x.seen | key.bit;
    let frow = autos.cf.h_step_from(x.sf);
    let urow = autos.cu.h_step_from(x.su);
    let srow = autos.cs.h_step_from(x.ss);
    for &(af, tf2) in frow {
        if af != key.f && af != ANY_LETTER {
            continue;
        }
        for &(au, tu2) in urow {
            if au != key.u && au != ANY_LETTER {
                continue;
            }
            for &(a_s, ts2) in srow {
                if a_s != key.s && a_s != ANY_LETTER {
                    continue;
                }
                add_fstate(
                    si,
                    autos,
                    sim,
                    shared,
                    FState {
                        sf: tf2,
                        su: tu2,
                        ss: ts2,
                        seen: seen2,
                    },
                    Some((Some(li), xi)),
                );
            }
        }
    }
}

/// Expands one fresh frontier state: ε-moves of each component, then every
/// already-realized letter this state can consume (letters still queued in
/// the sim's pending list are skipped — the drain will offer them to the
/// whole frontier, this state included).
fn expand(si: u32, autos: Autos<'_>, sim: &mut Sim, shared: &mut Shared, xi: u32) {
    let x = sim.states[xi as usize].0;
    for &t in autos.cf.h_eps_from(x.sf) {
        add_fstate(
            si,
            autos,
            sim,
            shared,
            FState { sf: t, ..x },
            Some((None, xi)),
        );
    }
    for &t in autos.cu.h_eps_from(x.su) {
        add_fstate(
            si,
            autos,
            sim,
            shared,
            FState { su: t, ..x },
            Some((None, xi)),
        );
    }
    for &t in autos.cs.h_eps_from(x.ss) {
        add_fstate(
            si,
            autos,
            sim,
            shared,
            FState { ss: t, ..x },
            Some((None, xi)),
        );
    }
    if !sim.leaf_only {
        // Replay only the already-realized letters this state can consume
        // on every component: letters it has no edge on would yield no
        // successors. Candidates come from the letter index of the first
        // non-wildcard component (full scan only when all three are
        // wildcards); letters realized during the replay arrive via
        // pending instead — the snapshots below exclude them.
        let frow = autos.cf.h_step_from(x.sf);
        let f_any = frow.last().is_some_and(|&(a, _)| a == ANY_LETTER);
        let urow = autos.cu.h_step_from(x.su);
        let u_any = urow.last().is_some_and(|&(a, _)| a == ANY_LETTER);
        let srow = autos.cs.h_step_from(x.ss);
        let s_any = srow.last().is_some_and(|&(a, _)| a == ANY_LETTER);
        let mut buf = std::mem::take(&mut shared.replay_buf);
        buf.clear();
        if f_any && u_any && s_any {
            buf.extend(0..shared.letters.len() as LetterId);
        } else {
            let (row, head, next) = if !s_any {
                (srow, &shared.lhead_s, &shared.lnext_s)
            } else if !u_any {
                (urow, &shared.lhead_u, &shared.lnext_u)
            } else {
                (frow, &shared.lhead_f, &shared.lnext_f)
            };
            for (i, &(a, _)) in row.iter().enumerate() {
                // Rows may repeat a letter (several targets); index once.
                // Sentinel letters outside the automaton never realize.
                if (a as usize) >= head.len() || row[..i].iter().any(|&(l, _)| l == a) {
                    continue;
                }
                let mut cur = head[a as usize];
                while cur != NONE {
                    buf.push(cur);
                    cur = next[cur as usize];
                }
            }
        }
        for &li in &buf {
            let k = shared.letters[li as usize];
            if (f_any || frow.iter().any(|&(a, _)| a == k.f))
                && (u_any || urow.iter().any(|&(a, _)| a == k.u))
                && (s_any || srow.iter().any(|&(a, _)| a == k.s))
                && !shared.pending[si as usize].contains(&li)
            {
                try_letter(si, autos, sim, shared, xi, li);
                if shared.stop() {
                    break;
                }
            }
        }
        shared.replay_buf = buf;
    }
}

/// Drains a sim's pending work: fresh frontier states, then realized letters
/// not yet offered to the settled frontier. On exit (absent an early stop)
/// the sim is quiescent; it runs again only when the dirty queue wakes it.
fn pump(si: u32, autos: Autos<'_>, sim: &mut Sim, shared: &mut Shared) {
    if sim.dead {
        return;
    }
    if !sim.root_final {
        // All keys the triple can ever realize exist: nothing left to learn.
        let done = [u8::from(sim.local), 1].iter().all(|&bit| {
            shared.table.contains(Key {
                f: sim.tf_target,
                u: sim.tu_target,
                bit,
                s: sim.ts_target,
            })
        });
        if done {
            sim.dead = true;
            return;
        }
    }
    loop {
        if shared.stop() {
            return;
        }
        if (sim.expanded as usize) < sim.states.len() {
            let xi = sim.expanded;
            sim.expanded += 1;
            expand(si, autos, sim, shared, xi);
        } else if let Some(li) = shared.pending[si as usize].pop() {
            if sim.leaf_only {
                continue;
            }
            // Offer the letter to the settled frontier — it is small (and
            // `try_letter` rejects a non-consuming state on its first row
            // scan), so a direct walk beats maintaining a per-sim edge
            // index. States added mid-walk are fresh and replay the letter
            // during their own expansion (it is already out of `pending`,
            // so the replay does not skip it).
            let ne = sim.states.len() as u32;
            for xi in 0..ne {
                try_letter(si, autos, sim, shared, xi, li);
                if shared.stop() {
                    return;
                }
            }
        } else {
            break;
        }
    }
    if sim.leaf_only {
        // ε-closure of the start tuple has been checked; leaves never gain
        // children, so the frontier is complete.
        sim.dead = true;
    }
}

/// Reconstructs the consumed-letter word of the pred chain ending at `fi`.
fn word_of(sim: &Sim, fi: u32) -> Vec<LetterId> {
    let mut word = Vec::new();
    let mut cur = fi;
    while let Some((letter, prev)) = sim.states[cur as usize].1 {
        if let Some(l) = letter {
            word.push(l);
        }
        cur = prev;
    }
    word.reverse();
    word
}

/// Everything witness reconstruction needs to turn guard masks back into
/// concrete labels.
struct WitnessEnv<'w> {
    alphabet: &'w Alphabet,
    part: &'w GuardPartition,
    masks: &'w [u64],
    words: usize,
}

impl WitnessEnv<'_> {
    fn label_of(&self, sim: &Sim) -> Symbol {
        let m = &self.masks[sim.mask_row..sim.mask_row + self.words];
        self.part.witness_label_for_mask(m, self.alphabet)
    }
}

/// Builds the witness subtree realizing `letter`. Terminates because every
/// letter in a firing's word was realized strictly earlier.
fn spec_of(env: &WitnessEnv, sims: &[Sim], shared: &Shared, letter: LetterId) -> TreeSpec {
    let (si, fi) = shared.firings[letter as usize];
    let sim = &sims[si as usize];
    let label = env.label_of(sim);
    match env.alphabet.kind(label) {
        LabelKind::Element => {
            let children = word_of(sim, fi)
                .into_iter()
                .map(|l| spec_of(env, sims, shared, l))
                .collect();
            TreeSpec::elem(label, children)
        }
        LabelKind::Attribute => TreeSpec::attr(label, "w"),
        LabelKind::Text => TreeSpec::text("w"),
    }
}

fn build_witness(env: &WitnessEnv, sims: &[Sim], shared: &Shared, root: (u32, u32)) -> Document {
    let mut doc = Document::new(env.alphabet.clone());
    for li in word_of(&sims[root.0 as usize], root.1) {
        let spec = spec_of(env, sims, shared, li);
        let (parent, pos) = (doc.root(), doc.children(doc.root()).len());
        regtree_xml::insert_child(&mut doc, parent, pos, &spec)
            .expect("witness specs are well-formed");
    }
    debug_assert!(doc.check_well_formed().is_ok());
    doc
}

/// Runs the lazy on-the-fly IC emptiness check.
///
/// `pa_fd` must be compiled with marking, `pa_u` without; `schema` is the
/// compiled schema automaton (`None` falls back to the universal automaton,
/// which is language-preserving). `partition` lets callers share the guard
/// minterms across many cells; it must cover the three automata (as
/// [`GuardPartition::from_automata`] over a superset of them guarantees),
/// and when absent it is derived from them. `compiled` lets matrix drivers
/// share the arena/CSR compiled forms across cells; it must have been
/// compiled against `partition`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lazy_independence(
    alphabet: &Alphabet,
    pa_fd: &PatternAutomaton,
    pa_u: &PatternAutomaton,
    class: &UpdateClass,
    schema: Option<&HedgeAutomaton>,
    partition: Option<&GuardPartition>,
    compiled: Option<CompiledTriple<'_>>,
    budget: &mut Budget,
) -> LazyOutcome {
    // The universal automaton is input-independent; build it once per
    // process instead of per call (no-schema calls are the common case in
    // matrix sweeps).
    static UNIVERSAL: std::sync::OnceLock<HedgeAutomaton> = std::sync::OnceLock::new();
    let a_s = match schema {
        Some(s) => s,
        None => UNIVERSAL.get_or_init(HedgeAutomaton::universal),
    };
    let af = &pa_fd.automaton;
    let au = &pa_u.automaton;
    let owned_partition;
    let part = match partition {
        Some(p) => p,
        None => {
            owned_partition = GuardPartition::from_automata([af, au, a_s]);
            &owned_partition
        }
    };
    // Borrow the per-thread scratch: every container below starts empty but
    // retains the capacity (and dense-table state) of previous runs.
    let mut ws = WORKSPACE.with(|w| std::mem::take(&mut *w.borrow_mut()));
    let mut uni_cache = ws.uni_compiled.take();
    let owned_pair;
    let mut owned_cs: Option<CompiledAutomaton> = None;
    let (cf, cu, cs) = match compiled {
        Some(t) => (t.f, t.u, t.s),
        None => {
            owned_pair = (
                CompiledAutomaton::compile(af, part, alphabet),
                CompiledAutomaton::compile(au, part, alphabet),
            );
            // The universal automaton's compiled form depends only on the
            // partition's class count, so no-schema calls can reuse the copy
            // stashed in the workspace by the previous run.
            owned_cs = Some(match (schema, uni_cache.take()) {
                (None, Some((n, c))) if n == part.num_classes() => c,
                _ => CompiledAutomaton::compile(a_s, part, alphabet),
            });
            (
                &owned_pair.0,
                &owned_pair.1,
                owned_cs.as_ref().expect("just set"),
            )
        }
    };
    let nf = cf.num_states();
    let nu = cu.num_states();
    let ns = cs.num_states();
    let total_states = nf * nu * 2 * ns;
    let words = part.mask_words();
    debug_assert_eq!(
        cf.mask_words(),
        words,
        "triple compiled against another partition"
    );
    let elem_mask = part.element_classes_mask(alphabet);
    let root_class = part.class_of(Alphabet::ROOT);

    let selected = class.pattern().selected();
    let mut sims = std::mem::take(&mut ws.sims);
    let mut spare_states = std::mem::take(&mut ws.spare_states);
    // Triple guard masks, one `words` row per sim.
    let mut tri_masks = std::mem::take(&mut ws.tri_masks);
    let mut table = std::mem::take(&mut ws.table);
    table.prepare(nu, ns, total_states);
    let prep_heads = |v: &mut Vec<u32>, n: usize| {
        v.clear();
        v.resize(n, NONE);
    };
    prep_heads(&mut ws.lhead_f, nf);
    prep_heads(&mut ws.lhead_u, nu);
    prep_heads(&mut ws.lhead_s, ns);
    prep_heads(&mut ws.whead, nf);
    let mut shared = Shared {
        letters: std::mem::take(&mut ws.letters),
        table,
        firings: std::mem::take(&mut ws.firings),
        root_hit: None,
        budget,
        exhausted: None,
        nf,
        nu,
        ns,
        wf: nf.div_ceil(64).max(1),
        wu: nu.div_ceil(64).max(1),
        stride: nf.div_ceil(64).max(1) + nu.div_ceil(64).max(1) + ns.div_ceil(64).max(1),
        wants: std::mem::take(&mut ws.wants),
        any_flags: std::mem::take(&mut ws.any_flags),
        pending: std::mem::take(&mut ws.pending),
        lhead_f: std::mem::take(&mut ws.lhead_f),
        lnext_f: std::mem::take(&mut ws.lnext_f),
        lhead_u: std::mem::take(&mut ws.lhead_u),
        lnext_u: std::mem::take(&mut ws.lnext_u),
        lhead_s: std::mem::take(&mut ws.lhead_s),
        lnext_s: std::mem::take(&mut ws.lnext_s),
        replay_buf: std::mem::take(&mut ws.replay_buf),
        whead: std::mem::take(&mut ws.whead),
        wlink: std::mem::take(&mut ws.wlink),
        watchers_any: std::mem::take(&mut ws.watchers_any),
        dirty: std::mem::take(&mut ws.dirty),
        in_dirty: std::mem::take(&mut ws.in_dirty),
    };
    let autos = Autos { cf, cu, cs };
    // Dedup stamp over schema-transition candidates per (tf, tu) pair. The
    // stamps persist across runs because the generation counter only grows;
    // both reset together long before it can wrap.
    let mut stamp = std::mem::take(&mut ws.stamp);
    if stamp.len() < cs.num_transitions() {
        stamp.resize(cs.num_transitions(), 0);
    }
    let mut generation: u32 = ws.generation;
    if generation > u32::MAX / 2 {
        stamp.fill(0);
        generation = 0;
    }
    let mut fu = std::mem::take(&mut ws.fu);
    fu.clear();
    fu.resize(words, 0);
    let mut cand = std::mem::take(&mut ws.cand);

    'setup: for fi in 0..cf.num_transitions() {
        if let Err(r) = shared.budget.checkpoint() {
            shared.exhausted.get_or_insert(r);
            break 'setup;
        }
        let tf_target = cf.target(fi);
        let in_region = pa_fd.in_region(tf_target);
        for ui in 0..cu.num_transitions() {
            let mf = cf.mask(fi);
            let mu = cu.mask(ui);
            let mut any = 0u64;
            for w in 0..words {
                let v = mf[w] & mu[w];
                fu[w] = v;
                any |= v;
            }
            if any == 0 {
                continue;
            }
            shared.budget.on_guard_intersection();
            let tu_target = cu.target(ui);
            let updated_here = pa_u
                .endpoint_of(tu_target)
                .map(|w| selected.contains(&w))
                .unwrap_or(false);
            let local = updated_here && in_region;
            generation += 1;
            cand.clear();
            for c in iter_classes(&fu) {
                for &ti in cs.guard_class_candidates(c) {
                    if stamp[ti as usize] != generation {
                        stamp[ti as usize] = generation;
                        cand.push(ti);
                    }
                }
            }
            for &ti in cs.wildcard_transitions() {
                if stamp[ti as usize] != generation {
                    stamp[ti as usize] = generation;
                    cand.push(ti);
                }
            }
            for &cand_ti in &cand {
                let ti = cand_ti as usize;
                shared.budget.on_guard_intersection();
                let ms = cs.mask(ti);
                let row = tri_masks.len();
                let mut nz = 0u64;
                for w in 0..words {
                    let v = fu[w] & ms[w];
                    nz |= v;
                    tri_masks.push(v);
                }
                if nz == 0 {
                    tri_masks.truncate(row);
                    continue;
                }
                let ts_target = cs.target(ti);
                let tri = &tri_masks[row..row + words];
                let root_final = tf_target == pa_fd.acc
                    && tu_target == pa_u.acc
                    && cs.is_final(ts_target)
                    && tri[root_class / 64] & (1u64 << (root_class % 64)) != 0;
                let leaf_only = tri.iter().zip(&elem_mask).all(|(a, b)| a & b == 0);
                let si = sims.len() as u32;
                shared.wants.resize(shared.wants.len() + shared.stride, 0);
                shared.any_flags.push(0);
                if (si as usize) >= shared.pending.len() {
                    shared.pending.push(Vec::new());
                }
                shared.in_dirty.push(false);
                sims.push(Sim {
                    mask_row: row,
                    tf_target,
                    tu_target,
                    ts_target,
                    local,
                    leaf_only,
                    root_final,
                    states: spare_states.pop().unwrap_or_default(),
                    expanded: 0,
                    dead: false,
                });
                let sim = sims.last_mut().unwrap();
                let start = FState {
                    sf: cf.horizontal_start(fi),
                    su: cu.horizontal_start(ui),
                    ss: cs.horizontal_start(ti),
                    seen: 0,
                };
                add_fstate(si, autos, sim, &mut shared, start, None);
                shared.mark_dirty(si);
            }
        }
    }

    // Drain the dirty queue until every sim is quiescent (fixpoint), a root
    // firing accepts (early exit), or the budget runs out (graceful abort).
    // A sim re-enters the queue only when a letter it watches realizes.
    let trace = shared.budget.trace().clone();
    let fixpoint_span = trace.span(SpanKind::EmptinessFixpoint, "lazy product");
    while let Some(si) = shared.dirty.pop() {
        shared.in_dirty[si as usize] = false;
        if shared.stop() {
            break;
        }
        pump(si, autos, &mut sims[si as usize], &mut shared);
    }
    drop(fixpoint_span);

    let verdict = match (shared.root_hit, shared.exhausted) {
        // A root hit is a definite answer even under an exhausted budget.
        (Some(root), _) => {
            let env = WitnessEnv {
                alphabet,
                part,
                masks: &tri_masks,
                words,
            };
            Verdict::Unknown {
                witness: Some(Box::new(build_witness(&env, &sims, &shared, root))),
                exhausted: None,
            }
        }
        (None, Some(r)) => Verdict::Unknown {
            witness: None,
            exhausted: Some(r),
        },
        (None, None) => Verdict::Independent,
    };
    let explored_states = shared.letters.len();

    // Return the scratch to the thread-local workspace: cleared (restoring
    // the dense-table invariant via `reset`), capacities intact.
    shared.table.reset(&shared.letters);
    let clear = |mut v: Vec<u32>| {
        v.clear();
        v
    };
    for v in &mut shared.pending {
        v.clear();
    }
    for mut sim in sims.drain(..) {
        sim.states.clear();
        spare_states.push(std::mem::take(&mut sim.states));
    }
    shared.letters.clear();
    shared.firings.clear();
    shared.wants.clear();
    shared.any_flags.clear();
    shared.wlink.clear();
    shared.in_dirty.clear();
    tri_masks.clear();
    cand.clear();
    WORKSPACE.with(|w| {
        let mut ws = w.borrow_mut();
        *ws = Workspace {
            table: shared.table,
            letters: shared.letters,
            firings: shared.firings,
            wants: shared.wants,
            any_flags: shared.any_flags,
            pending: shared.pending,
            lhead_f: shared.lhead_f,
            lnext_f: clear(shared.lnext_f),
            lhead_u: shared.lhead_u,
            lnext_u: clear(shared.lnext_u),
            lhead_s: shared.lhead_s,
            lnext_s: clear(shared.lnext_s),
            replay_buf: shared.replay_buf,
            whead: shared.whead,
            wlink: shared.wlink,
            watchers_any: clear(shared.watchers_any),
            dirty: clear(shared.dirty),
            in_dirty: shared.in_dirty,
            sims,
            spare_states,
            tri_masks,
            stamp,
            generation,
            fu,
            cand,
            // Stash the compiled universal automaton for the next no-schema
            // call (a schema run's `owned_cs` is the schema, not cacheable).
            uni_compiled: match (schema, owned_cs) {
                (None, Some(c)) => Some((part.num_classes(), c)),
                _ => uni_cache,
            },
        };
    });

    LazyOutcome {
        verdict,
        explored_states,
        total_states,
    }
}
