//! Lazy, on-the-fly emptiness of the IC product.
//!
//! The eager pipeline ([`crate::independence::check_independence_eager`])
//! materializes the full FD×U×bit automaton, takes a second eager product
//! with the schema automaton, and only then runs the emptiness fixpoint —
//! paying for every product state and every horizontal product transition
//! whether or not it is reachable. This module explores the same product
//! *bottom-up from realizable firings only*:
//!
//! * product states `(f, u, bit, s)` are interned the first time they are
//!   realized, so the unreachable bulk of the
//!   `O(aU·aFD·|Σ|·|AS|·|U|·|FD|)` state space is never touched;
//! * guard-compatible transition triples `(t_FD, t_U, t_S)` are enumerated
//!   over label-partition classes ([`GuardPartition`] minterms of the
//!   `Is`/`Any`/`AnyExcept` guards) rather than per symbol;
//! * each triple keeps an incremental frontier of horizontal-NFA state
//!   tuples `(s_f, s_u, s_s, seen)` that advances as new product states
//!   realize — no horizontal product automaton is ever built, and no NFA is
//!   re-simulated from scratch;
//! * the search stops the moment an accepting root firing with the update
//!   bit set appears, reconstructing a witness document from the recorded
//!   firings.
//!
//! Verdicts coincide with the eager path: the frontier's `seen` flag is the
//! OR of consumed letters' bits and the accepting bit is `local | seen`,
//! which is exactly the union of the three `BitMode` transition families of
//! the eager construction. `tests/ic_lazy_parity.rs` checks the equivalence
//! on randomized inputs.

use std::collections::HashMap;

use regtree_alphabet::{Alphabet, LabelKind};
use regtree_automata::{Nfa, NfaLabel, StateId};
use regtree_hedge::{witness_label, GuardPartition, HedgeAutomaton, LabelGuard, TreeState};
use regtree_pattern::PatternAutomaton;
use regtree_runtime::{Budget, Resource, SpanKind};
use regtree_xml::{Document, TreeSpec};

use crate::independence::Verdict;
use crate::update::UpdateClass;

/// Verdict plus exploration statistics of one lazy emptiness run.
pub(crate) struct LazyOutcome {
    /// The verdict (with witness on `Unknown`).
    pub verdict: Verdict,
    /// Product states actually interned during the search.
    pub explored_states: usize,
    /// States of the full (never materialized) product: `|FD|·|U|·2·|A_S|`.
    pub total_states: usize,
}

/// A product tree state `(f, u, bit, s)`, interned on first realization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    f: TreeState,
    u: TreeState,
    bit: u8,
    s: TreeState,
}

/// A frontier state of one transition triple's horizontal product:
/// NFA states of the three components plus the OR of consumed letters' bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct FState {
    sf: StateId,
    su: StateId,
    ss: StateId,
    seen: u8,
}

type LetterId = u32;

/// Incremental frontier of one guard-compatible transition triple.
struct Sim<'a> {
    hf: &'a Nfa,
    hu: &'a Nfa,
    hs: &'a Nfa,
    guard: LabelGuard,
    tf_target: TreeState,
    tu_target: TreeState,
    ts_target: TreeState,
    /// This node is an updated node inside the FD region.
    local: bool,
    /// The guard only admits leaf labels: only the empty child word applies.
    leaf_only: bool,
    /// Accepting at the document root: all three targets final/accepting and
    /// the guard matches the reserved `/` label.
    root_final: bool,
    /// Frontier states, deduplicated by linear scan: frontiers stay small
    /// (bounded by the realized portion of `|hf|·|hu|·|hs|·2`), so scanning
    /// beats per-sim hash-map churn.
    states: Vec<FState>,
    /// First-reach back-pointer per frontier state: `(consumed letter,
    /// predecessor)`, letter `None` for ε-moves; `None` at the start tuple.
    pred: Vec<Option<(Option<LetterId>, u32)>>,
    /// Interned-but-unexpanded frontier states.
    fresh: Vec<u32>,
    /// Realized letters already offered to the settled frontier.
    cursor: usize,
    /// `f`-letters some frontier state has a `Sym` edge on (letter skip
    /// filter; new states always replay all past letters, so skipping is
    /// sound).
    wants_f: Vec<u32>,
    wants_any: bool,
    dead: bool,
}

/// Interner of realized product states and their firings.
struct Shared<'b> {
    letters: Vec<Key>,
    ids: HashMap<Key, LetterId>,
    /// Per letter: the `(sim, frontier state)` acceptance that realized it.
    firings: Vec<(u32, u32)>,
    /// First accepting root firing `(sim, frontier state)`.
    root_hit: Option<(u32, u32)>,
    /// Cooperative resource governor; counters are cheap per-event integer
    /// compares, the deadline/cancel poll is amortized inside the budget.
    budget: &'b mut Budget,
    /// First exhausted resource: the search unwinds as soon as it is set
    /// (treated exactly like `root_hit` by the fixpoint loops).
    exhausted: Option<Resource>,
}

impl Shared<'_> {
    fn realize(&mut self, key: Key, si: u32, fi: u32) {
        if self.ids.contains_key(&key) {
            return;
        }
        if let Err(r) = self.budget.on_state() {
            self.exhausted.get_or_insert(r);
            return;
        }
        let id = self.letters.len() as LetterId;
        self.ids.insert(key, id);
        self.letters.push(key);
        self.firings.push((si, fi));
    }

    /// Has the search hit a root firing or run out of budget?
    fn stop(&self) -> bool {
        self.root_hit.is_some() || self.exhausted.is_some()
    }
}

/// Interns a frontier state, checking acceptance of all three components.
fn add_fstate(
    si: u32,
    sim: &mut Sim,
    shared: &mut Shared,
    st: FState,
    pred: Option<(Option<LetterId>, u32)>,
) {
    if sim.states.contains(&st) {
        return;
    }
    if let Err(r) = shared.budget.on_frontier_push() {
        shared.exhausted.get_or_insert(r);
        return;
    }
    let id = sim.states.len() as u32;
    sim.states.push(st);
    sim.pred.push(pred);
    sim.fresh.push(id);
    for &(l, _) in sim.hf.transitions_from(st.sf) {
        match l {
            NfaLabel::Sym(a) => {
                if !sim.wants_f.contains(&a) {
                    sim.wants_f.push(a);
                }
            }
            NfaLabel::Any => sim.wants_any = true,
            NfaLabel::Eps => {}
        }
    }
    if sim.hf.is_accept(st.sf) && sim.hu.is_accept(st.su) && sim.hs.is_accept(st.ss) {
        let bit = u8::from(sim.local) | st.seen;
        shared.realize(
            Key {
                f: sim.tf_target,
                u: sim.tu_target,
                bit,
                s: sim.ts_target,
            },
            si,
            id,
        );
        if sim.root_final && bit == 1 && shared.root_hit.is_none() {
            shared.root_hit = Some((si, id));
        }
    }
}

/// Offers realized letter `li` to frontier state `xi`.
fn try_letter(si: u32, sim: &mut Sim, shared: &mut Shared, xi: u32, li: LetterId) {
    let x = sim.states[xi as usize];
    let key = shared.letters[li as usize];
    shared.budget.on_transition();
    let seen2 = x.seen | key.bit;
    let (hf, hu, hs) = (sim.hf, sim.hu, sim.hs);
    for &(lf, tf2) in hf.transitions_from(x.sf) {
        let okf = match lf {
            NfaLabel::Eps => continue,
            NfaLabel::Sym(a) => a == key.f,
            NfaLabel::Any => true,
        };
        if !okf {
            continue;
        }
        for &(lu, tu2) in hu.transitions_from(x.su) {
            let oku = match lu {
                NfaLabel::Eps => continue,
                NfaLabel::Sym(a) => a == key.u,
                NfaLabel::Any => true,
            };
            if !oku {
                continue;
            }
            for &(ls, ts2) in hs.transitions_from(x.ss) {
                let oks = match ls {
                    NfaLabel::Eps => continue,
                    NfaLabel::Sym(a) => a == key.s,
                    NfaLabel::Any => true,
                };
                if !oks {
                    continue;
                }
                add_fstate(
                    si,
                    sim,
                    shared,
                    FState {
                        sf: tf2,
                        su: tu2,
                        ss: ts2,
                        seen: seen2,
                    },
                    Some((Some(li), xi)),
                );
            }
        }
    }
}

/// Expands one fresh frontier state: ε-moves of each component, then every
/// realized letter the settled frontier has already consumed.
fn expand(si: u32, sim: &mut Sim, shared: &mut Shared, xi: u32) {
    let x = sim.states[xi as usize];
    let (hf, hu, hs) = (sim.hf, sim.hu, sim.hs);
    for &(l, t) in hf.transitions_from(x.sf) {
        if l == NfaLabel::Eps {
            add_fstate(si, sim, shared, FState { sf: t, ..x }, Some((None, xi)));
        }
    }
    for &(l, t) in hu.transitions_from(x.su) {
        if l == NfaLabel::Eps {
            add_fstate(si, sim, shared, FState { su: t, ..x }, Some((None, xi)));
        }
    }
    for &(l, t) in hs.transitions_from(x.ss) {
        if l == NfaLabel::Eps {
            add_fstate(si, sim, shared, FState { ss: t, ..x }, Some((None, xi)));
        }
    }
    if !sim.leaf_only {
        for li in 0..sim.cursor {
            try_letter(si, sim, shared, xi, li as LetterId);
            if shared.stop() {
                return;
            }
        }
    }
}

/// Drains a sim's pending work: fresh frontier states and newly realized
/// letters. Returns whether anything advanced.
fn pump(si: u32, sim: &mut Sim, shared: &mut Shared) -> bool {
    if sim.dead {
        return false;
    }
    if !sim.root_final {
        // All keys the triple can ever realize exist: nothing left to learn.
        let done = [u8::from(sim.local), 1].iter().all(|&bit| {
            shared.ids.contains_key(&Key {
                f: sim.tf_target,
                u: sim.tu_target,
                bit,
                s: sim.ts_target,
            })
        });
        if done {
            sim.dead = true;
            return false;
        }
    }
    let mut progress = false;
    loop {
        if shared.stop() {
            return true;
        }
        if let Some(xi) = sim.fresh.pop() {
            progress = true;
            expand(si, sim, shared, xi);
        } else if !sim.leaf_only && sim.cursor < shared.letters.len() {
            let li = sim.cursor as LetterId;
            sim.cursor += 1;
            progress = true;
            let key = shared.letters[li as usize];
            if !sim.wants_any && !sim.wants_f.contains(&key.f) {
                continue;
            }
            let settled = sim.states.len() as u32;
            for xi in 0..settled {
                try_letter(si, sim, shared, xi, li);
                if shared.stop() {
                    return true;
                }
            }
        } else {
            break;
        }
    }
    if sim.leaf_only {
        // ε-closure of the start tuple has been checked; leaves never gain
        // children, so the frontier is complete.
        sim.dead = true;
    }
    progress
}

/// Reconstructs the consumed-letter word of the pred chain ending at `fi`.
fn word_of(sim: &Sim, fi: u32) -> Vec<LetterId> {
    let mut word = Vec::new();
    let mut cur = fi;
    while let Some((letter, prev)) = sim.pred[cur as usize] {
        if let Some(l) = letter {
            word.push(l);
        }
        cur = prev;
    }
    word.reverse();
    word
}

/// Builds the witness subtree realizing `letter`. Terminates because every
/// letter in a firing's word was realized strictly earlier.
fn spec_of(alphabet: &Alphabet, sims: &[Sim], shared: &Shared, letter: LetterId) -> TreeSpec {
    let (si, fi) = shared.firings[letter as usize];
    let sim = &sims[si as usize];
    let label = witness_label(&sim.guard, alphabet);
    match alphabet.kind(label) {
        LabelKind::Element => {
            let children = word_of(sim, fi)
                .into_iter()
                .map(|l| spec_of(alphabet, sims, shared, l))
                .collect();
            TreeSpec::elem(label, children)
        }
        LabelKind::Attribute => TreeSpec::attr(label, "w"),
        LabelKind::Text => TreeSpec::text("w"),
    }
}

fn build_witness(alphabet: &Alphabet, sims: &[Sim], shared: &Shared, root: (u32, u32)) -> Document {
    let mut doc = Document::new(alphabet.clone());
    for li in word_of(&sims[root.0 as usize], root.1) {
        let spec = spec_of(alphabet, sims, shared, li);
        let (parent, pos) = (doc.root(), doc.children(doc.root()).len());
        regtree_xml::insert_child(&mut doc, parent, pos, &spec)
            .expect("witness specs are well-formed");
    }
    debug_assert!(doc.check_well_formed().is_ok());
    doc
}

/// Runs the lazy on-the-fly IC emptiness check.
///
/// `pa_fd` must be compiled with marking, `pa_u` without; `schema` is the
/// compiled schema automaton (`None` falls back to the universal automaton,
/// which is language-preserving). `partition` lets callers share the guard
/// minterms across many cells; when absent it is derived from the three
/// automata.
pub(crate) fn lazy_independence(
    alphabet: &Alphabet,
    pa_fd: &PatternAutomaton,
    pa_u: &PatternAutomaton,
    class: &UpdateClass,
    schema: Option<&HedgeAutomaton>,
    partition: Option<&GuardPartition>,
    budget: &mut Budget,
) -> LazyOutcome {
    let universal;
    let a_s = match schema {
        Some(s) => s,
        None => {
            universal = HedgeAutomaton::universal();
            &universal
        }
    };
    let af = &pa_fd.automaton;
    let au = &pa_u.automaton;
    let owned_partition;
    let part = match partition {
        Some(p) => p,
        None => {
            owned_partition = GuardPartition::from_automata([af, au, a_s]);
            &owned_partition
        }
    };
    let total_states = af.num_states() * au.num_states() * 2 * a_s.num_states();

    // Index schema transitions by guard class: `Is` guards land in their
    // symbol's class bucket, wildcard-ish guards are always candidates.
    let mut s_by_class: Vec<Vec<usize>> = vec![Vec::new(); part.num_classes()];
    let mut s_wild: Vec<usize> = Vec::new();
    for (i, ts) in a_s.transitions().iter().enumerate() {
        match &ts.guard {
            LabelGuard::Is(sym) => s_by_class[part.class_of(*sym)].push(i),
            LabelGuard::Any | LabelGuard::AnyExcept(_) => s_wild.push(i),
        }
    }
    let masks_f: Vec<_> = af
        .transitions()
        .iter()
        .map(|t| part.mask(&t.guard))
        .collect();
    let masks_u: Vec<_> = au
        .transitions()
        .iter()
        .map(|t| part.mask(&t.guard))
        .collect();

    let selected = class.pattern().selected();
    let mut sims: Vec<Sim> = Vec::new();
    let mut shared = Shared {
        letters: Vec::new(),
        ids: HashMap::new(),
        firings: Vec::new(),
        root_hit: None,
        budget,
        exhausted: None,
    };
    // Dedup stamp over schema-transition candidates per (tf, tu) pair.
    let mut stamp: Vec<u32> = vec![0; a_s.transitions().len()];
    let mut generation: u32 = 0;

    'setup: for (fi, tf) in af.transitions().iter().enumerate() {
        let in_region = pa_fd.in_region(tf.target);
        for (ui, tu) in au.transitions().iter().enumerate() {
            if let Err(r) = shared.budget.checkpoint() {
                shared.exhausted.get_or_insert(r);
                break 'setup;
            }
            if !masks_f[fi].intersects(&masks_u[ui]) {
                continue;
            }
            shared.budget.on_guard_intersection();
            let Some(g_fu) = tf.guard.intersect(&tu.guard) else {
                continue;
            };
            let updated_here = pa_u
                .endpoint_of(tu.target)
                .map(|w| selected.contains(&w))
                .unwrap_or(false);
            let local = updated_here && in_region;
            generation += 1;
            let candidates = masks_f[fi]
                .classes()
                .filter(|&c| masks_u[ui].admits(c))
                .flat_map(|c| s_by_class[c].iter().copied())
                .chain(s_wild.iter().copied());
            for si_idx in candidates {
                if stamp[si_idx] == generation {
                    continue;
                }
                stamp[si_idx] = generation;
                let ts = &a_s.transitions()[si_idx];
                shared.budget.on_guard_intersection();
                let Some(guard) = g_fu.intersect(&ts.guard) else {
                    continue;
                };
                let root_final = tf.target == pa_fd.acc
                    && tu.target == pa_u.acc
                    && a_s.finals().contains(&ts.target)
                    && guard.matches(Alphabet::ROOT);
                let leaf_only = guard.forces_leaf(alphabet);
                let si = sims.len() as u32;
                sims.push(Sim {
                    hf: &tf.horizontal,
                    hu: &tu.horizontal,
                    hs: &ts.horizontal,
                    guard,
                    tf_target: tf.target,
                    tu_target: tu.target,
                    ts_target: ts.target,
                    local,
                    leaf_only,
                    root_final,
                    states: Vec::new(),
                    pred: Vec::new(),
                    fresh: Vec::new(),
                    cursor: 0,
                    wants_f: Vec::new(),
                    wants_any: false,
                    dead: false,
                });
                let sim = sims.last_mut().unwrap();
                let start = FState {
                    sf: sim.hf.start(),
                    su: sim.hu.start(),
                    ss: sim.hs.start(),
                    seen: 0,
                };
                add_fstate(si, sim, &mut shared, start, None);
            }
        }
    }

    // Round-robin the sims until no frontier advances (fixpoint), a root
    // firing accepts (early exit), or the budget runs out (graceful abort).
    let trace = shared.budget.trace().clone();
    let fixpoint_span = trace.span(SpanKind::EmptinessFixpoint, "lazy product");
    let mut round_progress = true;
    while round_progress && !shared.stop() {
        round_progress = false;
        for (si, sim) in sims.iter_mut().enumerate() {
            round_progress |= pump(si as u32, sim, &mut shared);
            if shared.stop() {
                break;
            }
        }
    }
    drop(fixpoint_span);

    let verdict = match (shared.root_hit, shared.exhausted) {
        // A root hit is a definite answer even under an exhausted budget.
        (Some(root), _) => Verdict::Unknown {
            witness: Some(Box::new(build_witness(alphabet, &sims, &shared, root))),
            exhausted: None,
        },
        (None, Some(r)) => Verdict::Unknown {
            witness: None,
            exhausted: Some(r),
        },
        (None, None) => Verdict::Independent,
    };
    LazyOutcome {
        verdict,
        explored_states: shared.letters.len(),
        total_states,
    }
}
