//! XML functional dependencies as regular tree patterns (Definition 4).
//!
//! An FD is `(FD, c)` where `FD = (T, (p1[E1], …, pn[En], q[E(n+1)]))` is a
//! regular tree pattern whose selected nodes carry equality types, and `c` is
//! a template node that is an ancestor of every selected node: the *context*
//! under which the dependency must hold.

use std::fmt;

use regtree_pattern::{RegularTreePattern, Template, TemplateNodeId};

/// Equality type of a condition/target node (Definition 3 notation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EqualityType {
    /// `=V`: value equality of the rooted subtrees.
    Value,
    /// `=N`: node identity.
    Node,
}

/// An XML functional dependency `fd = (FD, c)`.
#[derive(Clone, Debug)]
pub struct Fd {
    pattern: RegularTreePattern,
    context: TemplateNodeId,
    equality: Vec<EqualityType>,
}

/// Error raised constructing an FD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdError {
    /// The equality-type vector must match the selected tuple length.
    EqualityArityMismatch {
        /// Number of selected nodes.
        selected: usize,
        /// Number of equality types supplied.
        equalities: usize,
    },
    /// The context must be an ancestor (or the node itself) of every
    /// condition/target node.
    ContextNotAncestor(TemplateNodeId),
    /// An FD needs at least a target node.
    NoTarget,
    /// [`FdBuilder::build`] was called without a context edge.
    MissingContext,
    /// [`FdBuilder::build`] was called without a target edge.
    MissingTarget,
}

impl fmt::Display for FdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdError::EqualityArityMismatch {
                selected,
                equalities,
            } => write!(
                f,
                "equality types ({equalities}) must match selected nodes ({selected})"
            ),
            FdError::ContextNotAncestor(n) => {
                write!(f, "context is not an ancestor of selected node n{}", n.0)
            }
            FdError::NoTarget => write!(f, "an FD needs at least one selected node (the target)"),
            FdError::MissingContext => write!(f, "the builder needs a context edge"),
            FdError::MissingTarget => write!(f, "the builder needs a target edge"),
        }
    }
}

impl std::error::Error for FdError {}

impl Fd {
    /// Creates an FD. The selected tuple of `pattern` is read as
    /// `(p1, …, pn, q)`: conditions followed by the target; `equality`
    /// supplies one equality type per selected node.
    pub fn new(
        pattern: RegularTreePattern,
        context: TemplateNodeId,
        equality: Vec<EqualityType>,
    ) -> Result<Fd, FdError> {
        if pattern.selected().is_empty() {
            return Err(FdError::NoTarget);
        }
        if equality.len() != pattern.selected().len() {
            return Err(FdError::EqualityArityMismatch {
                selected: pattern.selected().len(),
                equalities: equality.len(),
            });
        }
        for &s in pattern.selected() {
            if !pattern.template().is_ancestor_or_self(context, s) {
                return Err(FdError::ContextNotAncestor(s));
            }
        }
        Ok(Fd {
            pattern,
            context,
            equality,
        })
    }

    /// Creates an FD with all-default (`V`) equality types, the common case
    /// (“when omitted, the equality types are set by default to V”).
    pub fn with_default_equality(
        pattern: RegularTreePattern,
        context: TemplateNodeId,
    ) -> Result<Fd, FdError> {
        let n = pattern.selected().len();
        Fd::new(pattern, context, vec![EqualityType::Value; n])
    }

    /// The underlying pattern `FD`.
    pub fn pattern(&self) -> &RegularTreePattern {
        &self.pattern
    }

    /// The template of `FD`.
    pub fn template(&self) -> &Template {
        self.pattern.template()
    }

    /// The context node `c`.
    pub fn context(&self) -> TemplateNodeId {
        self.context
    }

    /// Condition nodes `p1..pn` (all selected nodes but the last).
    pub fn conditions(&self) -> &[TemplateNodeId] {
        let sel = self.pattern.selected();
        &sel[..sel.len() - 1]
    }

    /// The target node `q` (the last selected node).
    pub fn target(&self) -> TemplateNodeId {
        *self.pattern.selected().last().expect("nonempty")
    }

    /// Equality types, aligned with `conditions() ++ [target()]`.
    pub fn equality(&self) -> &[EqualityType] {
        &self.equality
    }

    /// Equality type of the target.
    pub fn target_equality(&self) -> EqualityType {
        *self.equality.last().expect("nonempty")
    }

    /// The size `|FD|` used in the paper's complexity bounds.
    pub fn size(&self) -> usize {
        self.pattern.size()
    }

    /// Human-readable rendering: the template sketch annotated with the
    /// context/condition/target roles and equality types.
    pub fn describe(&self) -> String {
        let mut out = self.pattern.template().sketch();
        out.push_str(&format!("context: n{}\n", self.context.0));
        for (i, (&p, eq)) in self
            .conditions()
            .iter()
            .zip(self.equality.iter())
            .enumerate()
        {
            out.push_str(&format!(
                "condition p{}: n{} [{}]\n",
                i + 1,
                p.0,
                eq_str(*eq)
            ));
        }
        out.push_str(&format!(
            "target q: n{} [{}]\n",
            self.target().0,
            eq_str(self.target_equality())
        ));
        out
    }
}

fn eq_str(eq: EqualityType) -> &'static str {
    match eq {
        EqualityType::Value => "V",
        EqualityType::Node => "N",
    }
}

/// Convenience builder for the common “context, conditions, target” FD shape.
///
/// ```
/// use regtree_core::fd::FdBuilder;
/// use regtree_alphabet::Alphabet;
///
/// let a = Alphabet::new();
/// // fd1 of the paper: same discipline + same mark ⇒ same rank.
/// let fd = FdBuilder::new(a.clone())
///     .context("session")
///     .condition("candidate/exam/discipline")
///     .condition("candidate/exam/mark")
///     .target("candidate/exam/rank")
///     .build()
///     .unwrap();
/// assert_eq!(fd.conditions().len(), 2);
/// ```
///
/// Each condition/target string is one edge expression from the context
/// node; richer templates (shared prefixes, extra structural leaves…) are
/// built directly with [`Template`].
#[derive(Debug)]
pub struct FdBuilder {
    alphabet: regtree_alphabet::Alphabet,
    context_edge: Option<String>,
    conditions: Vec<(String, EqualityType)>,
    target: Option<(String, EqualityType)>,
}

impl FdBuilder {
    /// Starts a builder over `alphabet`.
    pub fn new(alphabet: regtree_alphabet::Alphabet) -> FdBuilder {
        FdBuilder {
            alphabet,
            context_edge: None,
            conditions: Vec::new(),
            target: None,
        }
    }

    /// Sets the edge expression from the template root to the context node.
    pub fn context(mut self, edge: &str) -> Self {
        self.context_edge = Some(edge.to_string());
        self
    }

    /// Adds a condition with value equality.
    pub fn condition(self, edge: &str) -> Self {
        self.condition_with(edge, EqualityType::Value)
    }

    /// Adds a condition with an explicit equality type.
    pub fn condition_with(mut self, edge: &str, eq: EqualityType) -> Self {
        self.conditions.push((edge.to_string(), eq));
        self
    }

    /// Sets the target with value equality.
    pub fn target(self, edge: &str) -> Self {
        self.target_with(edge, EqualityType::Value)
    }

    /// Sets the target with an explicit equality type.
    pub fn target_with(mut self, edge: &str, eq: EqualityType) -> Self {
        self.target = Some((edge.to_string(), eq));
        self
    }

    /// Builds the FD.
    ///
    /// When the context and every condition/target are *simple label paths*
    /// (`a/b/c`), the paper's longest-common-prefix factorization is applied
    /// (Section 3.2) so that, e.g., `candidate/exam/discipline` and
    /// `candidate/exam/mark` share one `candidate/exam` template node — the
    /// Figure 4 shape. Without factorization, sibling edges would be forced
    /// into *disjoint* subtrees by Definition 2(b), changing the semantics.
    /// Edges using regex operators skip factorization and become separate
    /// sibling branches (disjoint-subtree semantics).
    ///
    /// Errors surface as the unified [`enum@crate::Error`] ([`FdError`],
    /// template, pattern, and path-FD errors each keep their own variant).
    pub fn build(self) -> Result<Fd, crate::Error> {
        // Try the factorized (path-formalism) construction first.
        if let Some(fd) = self.try_factorized()? {
            return Ok(fd);
        }
        let mut template = Template::new(self.alphabet.clone());
        let context_edge = self.context_edge.clone().ok_or(FdError::MissingContext)?;
        let context = template.add_child_str(template.root(), &context_edge)?;
        let mut selected = Vec::new();
        let mut equality = Vec::new();
        for (edge, eq) in &self.conditions {
            let n = template.add_child_str(context, edge)?;
            selected.push(n);
            equality.push(*eq);
        }
        let (target_edge, target_eq) = self.target.ok_or(FdError::MissingTarget)?;
        let q = template.add_child_str(context, &target_edge)?;
        selected.push(q);
        equality.push(target_eq);
        let pattern = RegularTreePattern::new(template, selected)?;
        Ok(Fd::new(pattern, context, equality)?)
    }

    /// The factorized construction, when every edge is a simple label path.
    fn try_factorized(&self) -> Result<Option<Fd>, crate::Error> {
        let Some(ctx_src) = &self.context_edge else {
            return Err(FdError::MissingContext.into());
        };
        let Some((target_src, target_eq)) = &self.target else {
            return Err(FdError::MissingTarget.into());
        };
        let Some(context) = simple_word(&self.alphabet, ctx_src) else {
            return Ok(None);
        };
        let Some(target_word) = simple_word(&self.alphabet, target_src) else {
            return Ok(None);
        };
        let mut conditions = Vec::with_capacity(self.conditions.len());
        for (src, eq) in &self.conditions {
            match simple_word(&self.alphabet, src) {
                Some(w) => conditions.push((w, *eq)),
                None => return Ok(None),
            }
        }
        let pfd = crate::pathfd::PathFd {
            context,
            conditions,
            target: (target_word, *target_eq),
        };
        pfd.to_fd(&self.alphabet).map(Some)
    }
}

/// Parses `s` as a simple label path (`a/b/c`), or `None` when it uses
/// regex syntax.
fn simple_word(
    alphabet: &regtree_alphabet::Alphabet,
    s: &str,
) -> Option<Vec<regtree_alphabet::Symbol>> {
    let mut out = Vec::new();
    for seg in s.split('/') {
        let seg = seg.trim();
        if seg.is_empty()
            || !seg
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '@' | '#'))
            || seg == "_"
        {
            return None;
        }
        out.push(alphabet.intern(seg));
    }
    (!out.is_empty()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_alphabet::Alphabet;

    #[test]
    fn builder_constructs_fd1_shape() {
        let a = Alphabet::new();
        let fd = FdBuilder::new(a)
            .context("session")
            .condition("candidate/exam/discipline")
            .condition("candidate/exam/mark")
            .target("candidate/exam/rank")
            .build()
            .unwrap();
        assert_eq!(fd.conditions().len(), 2);
        assert_eq!(fd.equality().len(), 3);
        assert_eq!(fd.target_equality(), EqualityType::Value);
        assert!(fd.template().is_ancestor(fd.context(), fd.target()));
    }

    #[test]
    fn node_equality_targets() {
        let a = Alphabet::new();
        let fd = FdBuilder::new(a)
            .context("session/candidate")
            .condition("exam/date")
            .condition("exam/discipline")
            .target_with("exam", EqualityType::Node)
            .build()
            .unwrap();
        assert_eq!(fd.target_equality(), EqualityType::Node);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "s").unwrap();
        let p = t.add_child_str(c, "x").unwrap();
        let pat = RegularTreePattern::new(t, vec![p]).unwrap();
        assert!(matches!(
            Fd::new(pat, c, vec![]),
            Err(FdError::EqualityArityMismatch { .. })
        ));
    }

    #[test]
    fn context_must_dominate_selected() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "s").unwrap();
        let other = t.add_child_str(t.root(), "u").unwrap();
        let p = t.add_child_str(other, "x").unwrap();
        let pat = RegularTreePattern::new(t, vec![p]).unwrap();
        assert!(matches!(
            Fd::new(pat, c, vec![EqualityType::Value]),
            Err(FdError::ContextNotAncestor(_))
        ));
    }

    #[test]
    fn missing_pieces_in_builder() {
        let a = Alphabet::new();
        assert!(matches!(
            FdBuilder::new(a.clone()).target("x").build(),
            Err(crate::Error::Fd(FdError::MissingContext))
        ));
        assert!(matches!(
            FdBuilder::new(a).context("s").build(),
            Err(crate::Error::Fd(FdError::MissingTarget))
        ));
    }

    #[test]
    fn describe_renders_roles() {
        let a = Alphabet::new();
        let fd = FdBuilder::new(a)
            .context("session/candidate")
            .condition("exam/@date")
            .target_with("exam", EqualityType::Node)
            .build()
            .unwrap();
        let d = fd.describe();
        assert!(d.contains("context:"), "{d}");
        assert!(d.contains("condition p1:"), "{d}");
        assert!(d.contains("[N]"), "{d}");
        assert!(d.contains("(root)"), "{d}");
    }

    #[test]
    fn size_is_pattern_size() {
        let a = Alphabet::new();
        let fd = FdBuilder::new(a).context("s").target("x").build().unwrap();
        assert_eq!(fd.size(), fd.pattern().size());
    }
}
