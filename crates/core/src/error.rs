//! The unified error type of `regtree-core`.
//!
//! Each subsystem keeps its precise error enum ([`FdError`],
//! [`UpdateClassError`], [`ApplyError`], [`PathFdError`]); this module adds
//! the umbrella [`Error`] that `?` can funnel them all into, so application
//! code (the CLI, services embedding the [`crate::Analyzer`]) handles one
//! type. The wrapped error stays reachable through
//! [`std::error::Error::source`] and the variant payload.

use std::fmt;

use regtree_hedge::ValidationError;
use regtree_pattern::lang::ParseError;
use regtree_pattern::{PatternError, TemplateError};

use crate::fd::FdError;
use crate::pathfd::PathFdError;
use crate::update::{ApplyError, UpdateClassError};

/// Any error raised by `regtree-core` construction or update application.
///
/// Marked `#[non_exhaustive]`: future subsystems may add variants without a
/// breaking release, so matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Constructing a functional dependency failed.
    Fd(FdError),
    /// Constructing an update class failed.
    UpdateClass(UpdateClassError),
    /// Applying a concrete update failed.
    Apply(ApplyError),
    /// Parsing or translating a path FD failed.
    PathFd(PathFdError),
    /// Parsing textual pattern-language input failed
    /// ([`crate::parse_fd`]); carries the byte offset and expected set.
    PatternText(ParseError),
    /// Building a pattern template failed (bad edge expression).
    Template(TemplateError),
    /// Assembling a regular tree pattern failed (bad selected tuple).
    Pattern(PatternError),
    /// A schema-requiring entry point was called on an [`crate::Analyzer`]
    /// built without a schema ([`crate::Analyzer::try_schema`],
    /// [`crate::Analyzer::validate`]).
    NoSchema,
    /// A document failed schema validation.
    Validation(ValidationError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Fd(e) => write!(f, "functional dependency: {e}"),
            Error::UpdateClass(e) => write!(f, "update class: {e}"),
            Error::Apply(e) => write!(f, "update application: {e}"),
            Error::PathFd(e) => write!(f, "path FD: {e}"),
            Error::PatternText(e) => write!(f, "{e}"),
            Error::Template(e) => write!(f, "template: {e}"),
            Error::Pattern(e) => write!(f, "pattern: {e}"),
            Error::NoSchema => write!(f, "analyzer was built without a schema"),
            Error::Validation(e) => write!(f, "schema validation: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Fd(e) => Some(e),
            Error::UpdateClass(e) => Some(e),
            Error::Apply(e) => Some(e),
            Error::PathFd(e) => Some(e),
            Error::PatternText(e) => Some(e),
            Error::Template(e) => Some(e),
            Error::Pattern(e) => Some(e),
            Error::NoSchema => None,
            Error::Validation(e) => Some(e),
        }
    }
}

impl From<ValidationError> for Error {
    fn from(e: ValidationError) -> Error {
        Error::Validation(e)
    }
}

impl From<FdError> for Error {
    fn from(e: FdError) -> Error {
        Error::Fd(e)
    }
}

impl From<UpdateClassError> for Error {
    fn from(e: UpdateClassError) -> Error {
        Error::UpdateClass(e)
    }
}

impl From<ApplyError> for Error {
    fn from(e: ApplyError) -> Error {
        Error::Apply(e)
    }
}

impl From<PathFdError> for Error {
    fn from(e: PathFdError) -> Error {
        Error::PathFd(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::PatternText(e)
    }
}

impl From<TemplateError> for Error {
    fn from(e: TemplateError) -> Error {
        Error::Template(e)
    }
}

impl From<PatternError> for Error {
    fn from(e: PatternError) -> Error {
        Error::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_preserved() {
        use std::error::Error as _;
        let e: Error = FdError::NoTarget.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("functional dependency"));
        let e: Error = PathFdError {
            message: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("bad"));
        assert!(e.source().unwrap().to_string().contains("bad"));
    }

    #[test]
    fn question_mark_funnels_subsystem_errors() {
        fn build() -> Result<(), Error> {
            let failed: Result<(), FdError> = Err(FdError::NoTarget);
            failed?;
            Ok(())
        }
        assert!(matches!(build(), Err(Error::Fd(FdError::NoTarget))));
    }
}
